//! E3 bench: the `sst`/strongest-invariant fixpoint of eqs. (1)/(3),
//! scaling with state-space size and with the chain length (number of
//! Kleene iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpt_state::{Predicate, StateSpace};
use kpt_transformers::{sp_union, sst_with_stats, DetTransition, FnTransformer};

fn counter_space(n: u64) -> std::sync::Arc<StateSpace> {
    StateSpace::builder().nat_var("i", n).unwrap().build().unwrap()
}

/// A long-chain program: i := i + 1 (long fixpoint chain, one state/step).
fn bench_long_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("si_fixpoint/long_chain");
    group.sample_size(20);
    for n in [1u64 << 8, 1 << 10, 1 << 12] {
        let space = counter_space(n);
        let t = DetTransition::from_fn(&space, move |i| if i + 1 < n { i + 1 } else { i });
        let sp = FnTransformer::new(&space, "SP", move |p: &Predicate| {
            sp_union(std::slice::from_ref(&t), p)
        });
        let init = Predicate::from_indices(&space, [0]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sst_with_stats(&sp, &init))
        });
    }
    group.finish();
}

/// A wide program: 8 statements over a product space, short chain.
fn bench_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("si_fixpoint/wide");
    group.sample_size(20);
    for bits in [10u32, 14, 16] {
        let mut b = StateSpace::builder();
        for i in 0..bits {
            b = b.bool_var(&format!("b{i}")).unwrap();
        }
        let space = b.build().unwrap();
        let stmts: Vec<DetTransition> = (0..8u64)
            .map(|k| {
                let v = space.var(&format!("b{k}")).unwrap();
                let sp2 = std::sync::Arc::clone(&space);
                DetTransition::from_fn(&space, move |s| sp2.with_value(s, v, 1))
            })
            .collect();
        let sp = FnTransformer::new(&space, "SP", move |p: &Predicate| sp_union(&stmts, p));
        let init = Predicate::from_indices(&space, [0]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}states", space.num_states())),
            &bits,
            |b, _| b.iter(|| sst_with_stats(&sp, &init)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_long_chain, bench_wide);
criterion_main!(benches);
