//! Decoding predicate members into human-readable witness states.
//!
//! The observability layer's [`kpt_obs::Verdict`]s attach concrete states
//! to failed obligations. The state space owns the variable names and
//! domains, so the decoding lives here: [`witness_state`] turns one state
//! index into a named assignment, [`witnesses`] samples the members of a
//! predicate (typically the violation set `reachable ∧ ¬p`).

use crate::predicate::Predicate;
use crate::space::StateSpace;
use kpt_obs::WitnessState;

/// Decode one state of `space` into a [`WitnessState`] with one
/// `(variable, rendered value)` pair per variable, in declaration order.
#[must_use]
pub fn witness_state(space: &StateSpace, state: u64) -> WitnessState {
    WitnessState {
        index: state,
        assignment: space
            .vars()
            .map(|v| {
                let name = space.name(v).to_owned();
                let value = space.domain(v).render(space.value(state, v));
                (name, value)
            })
            .collect(),
    }
}

/// Up to `limit` members of `p`, decoded. The enumeration order is the
/// state-index order, so the sample is deterministic.
#[must_use]
pub fn witnesses(p: &Predicate, limit: usize) -> Vec<WitnessState> {
    p.iter()
        .take(limit)
        .map(|s| witness_state(p.space(), s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::StateSpace;

    #[test]
    fn decodes_named_assignments() {
        let space = StateSpace::builder()
            .bool_var("b")
            .unwrap()
            .nat_var("i", 3)
            .unwrap()
            .build()
            .unwrap();
        let b = space.var("b").unwrap();
        let p = Predicate::var_is_true(&space, b);
        let ws = witnesses(&p, 10);
        assert_eq!(ws.len() as u64, p.count());
        for w in &ws {
            assert_eq!(w.assignment[0], ("b".to_string(), "true".to_string()));
            assert_eq!(w.assignment[1].0, "i");
        }
        let rendered = ws[0].render();
        assert!(rendered.contains("b=true"), "{rendered}");
    }
}
