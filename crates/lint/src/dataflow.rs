//! Depth 3 — BDD-free dataflow checks (`KPT010`-`KPT012`).
//!
//! Three analyses over the elaborated program, all linear or near-linear
//! in the statement count and entirely independent of the symbolic
//! engine:
//!
//! * **`KPT010` interval abstract interpretation.** Each variable gets an
//!   interval of domain codes, seeded from the init states and closed
//!   under every statement whose (knowledge-erased) guard is not
//!   *definitely* false under the current box, with widening to the full
//!   domain after a few rounds. The resulting box contains every state of
//!   the erased program's strongest invariant, so a guard that is
//!   definitely false over the box is unsatisfiable under `SI` — the
//!   statement is dead, and the symbolic `KPT007` verdict must agree
//!   (`KPT010 ⊑ KPT007`, pinned by the differential fuzz campaign).
//! * **`KPT011` knowledge-guard dependency cycles.** The read/write
//!   dependency graph over statements (edge `s → t` iff `t` reads a
//!   variable `s` writes) is condensed into strongly connected
//!   components; a knowledge-guarded statement sitting on a cyclic
//!   component that also rewrites its knowledge subject is the Figure-1
//!   circularity, detected syntactically where `KPT009` needs a symbolic
//!   fixpoint.
//! * **`KPT012` unimplementable knowledge.** Process `i`'s *reachable
//!   information* starts at its view `V_i` and closes under dataflow
//!   (variables feeding statements that write into the closure) and init
//!   correlation (variables whose initial values are correlated with the
//!   closure). A top-level `K{i}(φ)` guard whose body mentions a variable
//!   outside that closure tests knowledge process `i` can never acquire —
//!   the static shadow of the view-soundness theorem (§3, eq. 13).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use kpt_logic::{CmpOp, Expr, Formula};
use kpt_state::{StateSpace, VarId};
use kpt_unity::{Guard, Program, Statement};

use crate::erase::{erase_knowledge, expr_idents, top_level_knowledge};
use crate::symbolic::{collect_formula_vars, guard_reads};
use crate::{Diagnostic, DiagnosticCode};

/// Above this many states the init box is not enumerated (full domains
/// are assumed) and the `KPT012` init-correlation rule is skipped.
const MAX_SCAN_STATES: u64 = 1 << 20;
/// At most this many init states are enumerated for the init box and the
/// correlation rule; more and both degrade conservatively.
const MAX_INIT_SAMPLES: usize = 1 << 12;
/// At most this many states of a `Guard::Pred` are tested against the box.
const MAX_PRED_SAMPLES: usize = 1 << 12;
/// Interval growth after this many fixpoint rounds jumps straight to the
/// full domain (counted in `lint.dataflow.widenings`).
const WIDEN_AFTER_ROUNDS: usize = 3;
/// Domains larger than this are not enumerated by quantifier evaluation.
const MAX_QUANT_DOMAIN: u64 = 64;

/// Run the dataflow checks. Assumes the declaration and view passes found
/// no errors (the orchestrator skips this pass otherwise).
pub fn check(program: &Program, diags: &mut Vec<Diagnostic>) {
    check_intervals(program, diags);
    check_dependency_cycles(program, diags);
    check_reachable_information(program, diags);
}

// ---------------------------------------------------------------------
// KPT010 — interval abstract interpretation
// ---------------------------------------------------------------------

/// A closed interval of domain codes, `lo <= hi`.
type Itv = (i64, i64);

fn full_interval(space: &StateSpace, v: VarId) -> Itv {
    (0, space.domain(v).size() as i64 - 1)
}

fn union(a: Itv, b: Itv) -> Itv {
    (a.0.min(b.0), a.1.max(b.1))
}

/// Three-valued truth over the interval box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

struct IntervalEnv<'a> {
    space: &'a Arc<StateSpace>,
    /// Per-variable interval, indexed by `VarId` order.
    boxes: Vec<Itv>,
    /// Quantifier bindings pinning a variable to a single value, shadowing
    /// its box (innermost last).
    pinned: Vec<(VarId, i64)>,
}

impl IntervalEnv<'_> {
    fn interval(&self, v: VarId) -> Itv {
        for (pv, val) in self.pinned.iter().rev() {
            if *pv == v {
                return (*val, *val);
            }
        }
        self.boxes[var_index(self.space, v)]
    }

    /// Whether the explicit state lies inside the box (pins ignored —
    /// only used for `Guard::Pred`, which has no quantifier context).
    fn contains_state(&self, state: u64) -> bool {
        self.space.vars().all(|v| {
            let (lo, hi) = self.boxes[var_index(self.space, v)];
            let val = self.space.value(state, v) as i64;
            lo <= val && val <= hi
        })
    }
}

fn var_index(_space: &StateSpace, v: VarId) -> usize {
    v.index()
}

/// Interval of an expression; `None` when an identifier does not resolve
/// as a parameter or variable (the enum-label fallback is context
/// dependent and handled by the callers).
fn expr_interval(env: &IntervalEnv<'_>, params: &HashMap<String, i64>, e: &Expr) -> Option<Itv> {
    match e {
        Expr::Const(n) => Some((*n, *n)),
        Expr::Ident(name) => {
            if let Some(&c) = params.get(name.as_str()) {
                return Some((c, c));
            }
            env.space.var(name).ok().map(|v| env.interval(v))
        }
        Expr::Add(a, b) => {
            let (al, ah) = expr_interval(env, params, a)?;
            let (bl, bh) = expr_interval(env, params, b)?;
            Some((al.saturating_add(bl), ah.saturating_add(bh)))
        }
        Expr::Sub(a, b) => {
            let (al, ah) = expr_interval(env, params, a)?;
            let (bl, bh) = expr_interval(env, params, b)?;
            Some((al.saturating_sub(bh), ah.saturating_sub(bl)))
        }
    }
}

/// One side of a comparison, with the evaluator's enum-label fallback: a
/// bare unresolved identifier may be a label of the *peer* variable's
/// domain.
fn cmp_side_interval(
    env: &IntervalEnv<'_>,
    params: &HashMap<String, i64>,
    e: &Expr,
    peer: &Expr,
) -> Option<Itv> {
    if let Some(itv) = expr_interval(env, params, e) {
        return Some(itv);
    }
    if let (Expr::Ident(label), Expr::Ident(peer_name)) = (e, peer) {
        if !params.contains_key(label.as_str()) {
            if let Ok(pv) = env.space.var(peer_name) {
                if let Some(code) = env.space.domain(pv).label_code(label) {
                    return Some((code as i64, code as i64));
                }
            }
        }
    }
    None
}

fn cmp_tri(op: CmpOp, a: Itv, b: Itv) -> Tri {
    let (al, ah) = a;
    let (bl, bh) = b;
    match op {
        CmpOp::Eq => {
            if ah < bl || bh < al {
                Tri::False
            } else if al == ah && bl == bh && al == bl {
                Tri::True
            } else {
                Tri::Unknown
            }
        }
        CmpOp::Ne => cmp_tri(CmpOp::Eq, a, b).not(),
        CmpOp::Lt => {
            if ah < bl {
                Tri::True
            } else if al >= bh {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        CmpOp::Le => {
            if ah <= bl {
                Tri::True
            } else if al > bh {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        CmpOp::Gt => cmp_tri(CmpOp::Le, a, b).not(),
        CmpOp::Ge => cmp_tri(CmpOp::Lt, a, b).not(),
    }
}

/// Three-valued evaluation of a knowledge-free formula over the box.
/// `False` means *definitely* false at every state of the box — the only
/// judgement the dead-guard check acts on; `Unknown` is always sound.
fn formula_tri(env: &mut IntervalEnv<'_>, params: &HashMap<String, i64>, f: &Formula) -> Tri {
    match f {
        Formula::Const(b) => {
            if *b {
                Tri::True
            } else {
                Tri::False
            }
        }
        Formula::BoolVar(name) => {
            if let Some(&c) = params.get(name.as_str()) {
                return if c != 0 { Tri::True } else { Tri::False };
            }
            match env.space.var(name) {
                Ok(v) => {
                    let (lo, hi) = env.interval(v);
                    if hi <= 0 {
                        Tri::False
                    } else if lo >= 1 {
                        Tri::True
                    } else {
                        Tri::Unknown
                    }
                }
                Err(_) => Tri::Unknown,
            }
        }
        Formula::Cmp(op, a, b) => {
            let (Some(ia), Some(ib)) = (
                cmp_side_interval(env, params, a, b),
                cmp_side_interval(env, params, b, a),
            ) else {
                return Tri::Unknown;
            };
            cmp_tri(*op, ia, ib)
        }
        Formula::Not(g) => formula_tri(env, params, g).not(),
        Formula::And(a, b) => formula_tri(env, params, a).and(formula_tri(env, params, b)),
        Formula::Or(a, b) => formula_tri(env, params, a).or(formula_tri(env, params, b)),
        Formula::Implies(a, b) => formula_tri(env, params, a)
            .not()
            .or(formula_tri(env, params, b)),
        Formula::Iff(a, b) => {
            let (ta, tb) = (formula_tri(env, params, a), formula_tri(env, params, b));
            match (ta, tb) {
                (Tri::Unknown, _) | (_, Tri::Unknown) => Tri::Unknown,
                (a, b) if a == b => Tri::True,
                _ => Tri::False,
            }
        }
        Formula::Forall(name, body) | Formula::Exists(name, body) => {
            let Ok(v) = env.space.var(name) else {
                return Tri::Unknown;
            };
            let size = env.space.domain(v).size();
            if size > MAX_QUANT_DOMAIN {
                return Tri::Unknown;
            }
            let exists = matches!(f, Formula::Exists(..));
            let mut acc = if exists { Tri::False } else { Tri::True };
            for val in 0..size {
                env.pinned.push((v, val as i64));
                let t = formula_tri(env, params, body);
                env.pinned.pop();
                acc = if exists { acc.or(t) } else { acc.and(t) };
            }
            acc
        }
        // The guard is knowledge-erased before evaluation; a stray
        // modality is treated conservatively.
        Formula::Knows(..) => Tri::Unknown,
    }
}

/// Three-valued enabledness of a statement's knowledge-erased guard.
fn guard_tri(env: &mut IntervalEnv<'_>, stmt: &Statement) -> Tri {
    match stmt.guard() {
        Guard::Always => Tri::True,
        Guard::Pred(p) => {
            if p.is_false() {
                return Tri::False;
            }
            if p.count() > MAX_PRED_SAMPLES as u64 {
                return Tri::Unknown;
            }
            if p.iter().any(|s| env.contains_state(s)) {
                Tri::Unknown
            } else {
                Tri::False
            }
        }
        Guard::Formula(f) => {
            let erased = erase_knowledge(f, true).simplify();
            formula_tri(env, stmt.params(), &erased)
        }
    }
}

/// Narrow the box to the states that can satisfy the statement's guard —
/// the abstract-interpretation guard filter. Without it `i < 3 → i := i+1`
/// computes `i+1` over the whole box and never converges below the full
/// domain. Only refinements that are sound for *every* satisfying state
/// are applied: top-level conjuncts comparing a variable against an
/// expression (using the expression's own interval bound), boolean-variable
/// literals, and full enumeration of small explicit predicates.
fn narrow_by_guard(env: &mut IntervalEnv<'_>, stmt: &Statement) {
    match stmt.guard() {
        Guard::Always => {}
        Guard::Pred(p) => {
            if p.is_false() || p.count() > MAX_PRED_SAMPLES as u64 {
                return;
            }
            let mut refined: Vec<Option<Itv>> = vec![None; env.boxes.len()];
            for s in p.iter().filter(|&s| env.contains_state(s)) {
                for v in env.space.vars() {
                    let val = env.space.value(s, v) as i64;
                    let i = var_index(env.space, v);
                    refined[i] = Some(match refined[i] {
                        None => (val, val),
                        Some(b) => union(b, (val, val)),
                    });
                }
            }
            for (i, r) in refined.into_iter().enumerate() {
                // `None` means no predicate state inside the box; the
                // caller has already judged the guard non-False, so keep
                // the box rather than fabricate an empty interval.
                if let Some(r) = r {
                    env.boxes[i] = r;
                }
            }
        }
        Guard::Formula(f) => {
            let erased = erase_knowledge(f, true).simplify();
            narrow_formula(env, stmt.params(), &erased);
        }
    }
}

fn narrow_formula(env: &mut IntervalEnv<'_>, params: &HashMap<String, i64>, f: &Formula) {
    match f {
        Formula::And(a, b) => {
            narrow_formula(env, params, a);
            narrow_formula(env, params, b);
        }
        Formula::BoolVar(name) if !params.contains_key(name.as_str()) => {
            if let Ok(v) = env.space.var(name) {
                let i = var_index(env.space, v);
                env.boxes[i].0 = env.boxes[i].0.max(1);
            }
        }
        Formula::Not(g) => {
            if let Formula::BoolVar(name) = &**g {
                if params.contains_key(name.as_str()) {
                    return;
                }
                if let Ok(v) = env.space.var(name) {
                    let i = var_index(env.space, v);
                    env.boxes[i].1 = env.boxes[i].1.min(0);
                }
            }
        }
        Formula::Cmp(op, a, b) => {
            narrow_cmp(env, params, *op, a, b);
            narrow_cmp(env, params, op.flip(), b, a);
        }
        _ => {}
    }
}

/// Refine `x`'s box from a satisfied `x op e` conjunct. Sound even when
/// `e` mentions `x` itself: from `x < e` and `e ≤ hi(e)` follows
/// `x ≤ hi(e) - 1` at every satisfying state.
fn narrow_cmp(
    env: &mut IntervalEnv<'_>,
    params: &HashMap<String, i64>,
    op: CmpOp,
    x: &Expr,
    e: &Expr,
) {
    let Expr::Ident(name) = x else { return };
    if params.contains_key(name.as_str()) {
        return;
    }
    let Ok(v) = env.space.var(name) else { return };
    let Some((el, eh)) = cmp_side_interval(env, params, e, x) else {
        return;
    };
    let i = var_index(env.space, v);
    let (lo, hi) = env.boxes[i];
    let refined = match op {
        CmpOp::Eq => (lo.max(el), hi.min(eh)),
        CmpOp::Ne => (lo, hi),
        CmpOp::Lt => (lo, hi.min(eh.saturating_sub(1))),
        CmpOp::Le => (lo, hi.min(eh)),
        CmpOp::Gt => (lo.max(el.saturating_add(1)), hi),
        CmpOp::Ge => (lo.max(el), hi),
    };
    // A refinement that empties the interval means the caller's
    // non-False judgement and ours disagree at the boundary; keep the
    // wider box — over-approximation is always sound.
    if refined.0 <= refined.1 {
        env.boxes[i] = refined;
    }
}

/// The interval an assignment's right-hand side can take, mirroring the
/// compiler's bare-identifier enum-label fallback for the target domain.
fn assign_rhs_interval(
    env: &IntervalEnv<'_>,
    stmt: &Statement,
    target: VarId,
    rhs: &Expr,
) -> Option<Itv> {
    if let Some(itv) = expr_interval(env, stmt.params(), rhs) {
        return Some(itv);
    }
    if let Expr::Ident(label) = rhs {
        if let Some(code) = env.space.domain(target).label_code(label) {
            return Some((code as i64, code as i64));
        }
    }
    None
}

/// Seed the box from the init states (full domains on oversized spaces).
fn init_env<'a>(program: &Program, space: &'a Arc<StateSpace>) -> IntervalEnv<'a> {
    let full: Vec<Itv> = space.vars().map(|v| full_interval(space, v)).collect();
    let init = program.init();
    let boxes = if space.num_states() > MAX_SCAN_STATES
        || init.count() > MAX_INIT_SAMPLES as u64
        || init.is_false()
    {
        full
    } else {
        let mut boxes: Vec<Option<Itv>> = vec![None; full.len()];
        for state in init.iter() {
            for (i, v) in space.vars().enumerate() {
                let val = space.value(state, v) as i64;
                boxes[i] = Some(match boxes[i] {
                    None => (val, val),
                    Some(b) => union(b, (val, val)),
                });
            }
        }
        boxes
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or(full[i]))
            .collect()
    };
    IntervalEnv {
        space,
        boxes,
        pinned: Vec::new(),
    }
}

/// `KPT010`: fixpoint the box over every may-firing statement, then flag
/// the guards that are definitely false at the fixpoint.
fn check_intervals(program: &Program, diags: &mut Vec<Diagnostic>) {
    let space = program.space();
    let mut env = init_env(program, space);
    let full: Vec<Itv> = space.vars().map(|v| full_interval(space, v)).collect();

    let mut round = 0usize;
    loop {
        round += 1;
        let mut changed = false;
        for stmt in program.statements() {
            if guard_tri(&mut env, stmt) == Tri::False {
                continue;
            }
            if stmt.update_fn().is_some() {
                // Opaque update: anything may be written anywhere.
                for (i, f) in full.iter().enumerate() {
                    if env.boxes[i] != *f {
                        env.boxes[i] = *f;
                        changed = true;
                    }
                }
                continue;
            }
            // Right-hand sides see the guard-filtered pre-state; the
            // union target stays the unfiltered box (guard-failing states
            // keep their old values).
            let saved = env.boxes.clone();
            narrow_by_guard(&mut env, stmt);
            let written_itvs: Vec<(usize, Itv)> = stmt
                .assignments()
                .iter()
                .filter_map(|(target, rhs)| {
                    let var = space.var(target).ok()?;
                    let i = var_index(space, var);
                    let written = assign_rhs_interval(&env, stmt, var, rhs).unwrap_or(full[i]);
                    // Whatever the runtime does with an out-of-domain
                    // value, the stored code stays inside the domain.
                    let written = (written.0.max(full[i].0), written.1.min(full[i].1));
                    Some(if written.0 > written.1 {
                        (i, full[i])
                    } else {
                        (i, written)
                    })
                })
                .collect();
            env.boxes = saved;
            for (i, written) in written_itvs {
                let mut new = union(env.boxes[i], written);
                if new != env.boxes[i] {
                    if round > WIDEN_AFTER_ROUNDS {
                        kpt_obs::counter!("lint.dataflow.widenings").incr();
                        new = full[i];
                    }
                    env.boxes[i] = new;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for stmt in program.statements() {
        if matches!(stmt.guard(), Guard::Always) {
            continue;
        }
        if guard_tri(&mut env, stmt) == Tri::False {
            let involved: BTreeSet<VarId> = guard_reads(space, stmt);
            let boxes = involved
                .iter()
                .map(|&v| {
                    let (lo, hi) = env.boxes[var_index(space, v)];
                    format!("`{}` ∈ [{lo}, {hi}]", space.name(v))
                })
                .collect::<Vec<_>>()
                .join(", ");
            diags.push(Diagnostic::on_guard(
                DiagnosticCode::IntervalDeadGuard,
                stmt.name(),
                format!(
                    "interval analysis proves the guard false over every reachable \
                     value box ({boxes}) — dead code, confirmed without the \
                     symbolic engine"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// KPT011 — knowledge-guard dependency cycles
// ---------------------------------------------------------------------

/// Every variable a statement reads: its guard (knowledge bodies
/// included) plus its assignment right-hand sides.
fn stmt_reads(space: &Arc<StateSpace>, stmt: &Statement) -> BTreeSet<VarId> {
    let mut out = guard_reads(space, stmt);
    let mut ids = BTreeSet::new();
    for (_, rhs) in stmt.assignments() {
        expr_idents(rhs, &mut ids);
    }
    for n in ids {
        if !stmt.params().contains_key(&n) {
            if let Ok(v) = space.var(&n) {
                out.insert(v);
            }
        }
    }
    out
}

/// The variables a statement writes through explicit assignments. Opaque
/// `update_with` statements report no writes: guessing would fabricate
/// dependency edges and false Figure-1 cycles.
fn stmt_writes(space: &Arc<StateSpace>, stmt: &Statement) -> BTreeSet<VarId> {
    if stmt.update_fn().is_some() {
        return BTreeSet::new();
    }
    stmt.assignments()
        .iter()
        .filter_map(|(v, _)| space.var(v).ok())
        .collect()
}

/// Tarjan's strongly-connected components over the statement dependency
/// graph, returned as a component id per statement (ids are otherwise
/// arbitrary but deterministic).
fn sccs(adj: &[Vec<usize>]) -> Vec<usize> {
    struct State<'g> {
        adj: &'g [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        comp: Vec<usize>,
        ncomp: usize,
    }
    fn visit(st: &mut State<'_>, v: usize) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &st.adj[v] {
            match st.index[w] {
                None => {
                    visit(st, w);
                    st.low[v] = st.low[v].min(st.low[w]);
                }
                Some(wi) if st.on_stack[w] => st.low[v] = st.low[v].min(wi),
                Some(_) => {}
            }
        }
        if st.low[v] == st.index[v].expect("set above") {
            loop {
                let w = st.stack.pop().expect("stack non-empty");
                st.on_stack[w] = false;
                st.comp[w] = st.ncomp;
                if w == v {
                    break;
                }
            }
            st.ncomp += 1;
        }
    }
    let n = adj.len();
    let mut st = State {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        comp: vec![0; n],
        ncomp: 0,
    };
    for v in 0..n {
        if st.index[v].is_none() {
            visit(&mut st, v);
        }
    }
    st.comp
}

/// `KPT011`: a knowledge-guarded statement on a cyclic SCC of the
/// dependency graph whose members rewrite the guard's knowledge subject.
fn check_dependency_cycles(program: &Program, diags: &mut Vec<Diagnostic>) {
    let space = program.space();
    let stmts: Vec<&Statement> = program.statements().iter().collect();
    let reads: Vec<BTreeSet<VarId>> = stmts.iter().map(|s| stmt_reads(space, s)).collect();
    let writes: Vec<BTreeSet<VarId>> = stmts.iter().map(|s| stmt_writes(space, s)).collect();

    // Edge s → t iff t reads something s writes.
    let adj: Vec<Vec<usize>> = (0..stmts.len())
        .map(|i| {
            (0..stmts.len())
                .filter(|&j| !writes[i].is_disjoint(&reads[j]))
                .collect()
        })
        .collect();
    let comp = sccs(&adj);

    let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (i, &c) in comp.iter().enumerate() {
        comp_members[c].push(i);
    }
    let cyclic: Vec<bool> = comp_members
        .iter()
        .map(|members| members.len() > 1 || members.iter().any(|&i| adj[i].contains(&i)))
        .collect();
    for members in &comp_members {
        kpt_obs::histogram!("lint.dataflow.scc_size").record(members.len() as u64);
    }
    kpt_obs::counter!("lint.dataflow.cyclic_sccs")
        .add(cyclic.iter().filter(|&&c| c).count() as u64);

    for (idx, stmt) in stmts.iter().enumerate() {
        let Guard::Formula(f) = stmt.guard() else {
            continue;
        };
        if !cyclic[comp[idx]] {
            continue;
        }
        let mut tops = Vec::new();
        top_level_knowledge(f, &mut tops);
        for (agent, body) in &tops {
            let mut subject: BTreeSet<VarId> = BTreeSet::new();
            collect_formula_vars(space, body, &mut subject);
            if subject.is_empty() {
                continue;
            }
            let rewriter = comp_members[comp[idx]]
                .iter()
                .find(|&&m| !writes[m].is_disjoint(&subject));
            if let Some(&m) = rewriter {
                diags.push(Diagnostic::on_guard(
                    DiagnosticCode::KnowledgeDependencyCycle,
                    stmt.name(),
                    format!(
                        "guard tests `K{{{agent}}}` on a dependency cycle of {} \
                         statement(s) in which `{}` rewrites the guard's subject \
                         variables — the syntactic Figure-1 circularity \
                         (cf. KPT009 for the symbolic confirmation)",
                        comp_members[comp[idx]].len(),
                        stmts[m].name(),
                    ),
                ));
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// KPT012 — unimplementable knowledge
// ---------------------------------------------------------------------

/// `KPT012`: close each guarding process's view under dataflow and init
/// correlation; a `K{i}(φ)` body mentioning a variable outside the
/// closure is knowledge process `i` can never acquire.
fn check_reachable_information(program: &Program, diags: &mut Vec<Diagnostic>) {
    let space = program.space();
    if space.num_states() > MAX_SCAN_STATES {
        // The correlation rule cannot run; rather than flag on a
        // truncated closure, stay silent on oversized spaces.
        return;
    }
    let init_states: Vec<u64> = program.init().iter().take(MAX_INIT_SAMPLES + 1).collect();
    if init_states.len() > MAX_INIT_SAMPLES {
        return;
    }

    let stmts: Vec<&Statement> = program.statements().iter().collect();
    // Conservatism points the other way here than in KPT011: the closure
    // must *over*-approximate information flow, so an opaque `update_with`
    // statement — whose reads and writes are invisible — is modelled as
    // touching every variable. One such statement makes every closure
    // total and the pass silent, which is the sound degradation.
    let all_vars: BTreeSet<VarId> = space.vars().collect();
    let (reads, writes): (Vec<BTreeSet<VarId>>, Vec<BTreeSet<VarId>>) = stmts
        .iter()
        .map(|s| {
            if s.update_fn().is_some() {
                (all_vars.clone(), all_vars.clone())
            } else {
                (stmt_reads(space, s), stmt_writes(space, s))
            }
        })
        .unzip();

    let mut closures: HashMap<&str, BTreeSet<VarId>> = HashMap::new();
    for process in program.processes() {
        let mut reach: BTreeSet<VarId> = process.view().iter().collect();
        loop {
            let before = reach.len();
            // Dataflow rule: whatever feeds a statement writing into the
            // closure becomes observable through those writes.
            for (i, w) in writes.iter().enumerate() {
                if !w.is_disjoint(&reach) {
                    reach.extend(reads[i].iter().copied());
                }
            }
            // Init-correlation rule: a variable whose initial value is
            // correlated with an observable one is partially revealed by
            // the very first observation.
            let outside: Vec<VarId> = space.vars().filter(|v| !reach.contains(v)).collect();
            for w in outside {
                if reach.iter().any(|&v| correlated(space, &init_states, v, w)) {
                    reach.insert(w);
                }
            }
            if reach.len() == before {
                break;
            }
        }
        closures.insert(process.name(), reach);
    }

    for stmt in &stmts {
        let Guard::Formula(f) = stmt.guard() else {
            continue;
        };
        let mut tops = Vec::new();
        top_level_knowledge(f, &mut tops);
        let mut flagged: BTreeSet<&str> = BTreeSet::new();
        for (agent, body) in &tops {
            let Some(reach) = closures.get(agent.as_str()) else {
                continue; // undeclared process: KPT006's finding
            };
            if !flagged.insert(agent.as_str()) {
                continue;
            }
            let mut subject: BTreeSet<VarId> = BTreeSet::new();
            collect_formula_vars(space, body, &mut subject);
            let hidden: Vec<&str> = subject
                .iter()
                .filter(|v| !reach.contains(v))
                .map(|&v| space.name(v))
                .collect();
            if !hidden.is_empty() {
                diags.push(Diagnostic::on_guard(
                    DiagnosticCode::UnimplementableKnowledge,
                    stmt.name(),
                    format!(
                        "guard tests `K{{{agent}}}` over {} which no flow of \
                         information reaches process `{agent}`'s view — the \
                         knowledge can never be established, so the statement \
                         can never fire",
                        hidden
                            .iter()
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                ));
            }
        }
    }
}

/// Whether `v` and `w` are value-correlated in the initial states: the
/// observed `(v, w)` pairs are not the full product of their value sets.
fn correlated(space: &Arc<StateSpace>, init_states: &[u64], v: VarId, w: VarId) -> bool {
    let mut vs: BTreeSet<u64> = BTreeSet::new();
    let mut ws: BTreeSet<u64> = BTreeSet::new();
    let mut pairs: BTreeSet<(u64, u64)> = BTreeSet::new();
    for &s in init_states {
        let (a, b) = (space.value(s, v), space.value(s, w));
        vs.insert(a);
        ws.insert(b);
        pairs.insert((a, b));
    }
    (pairs.len() as u64) < (vs.len() as u64) * (ws.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_state::StateSpace;
    use kpt_unity::Program;

    fn lint_df(program: &Program) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(program, &mut diags);
        diags
    }

    #[test]
    fn interval_union_and_cmp_logic() {
        assert_eq!(union((0, 1), (3, 4)), (0, 4));
        assert_eq!(cmp_tri(CmpOp::Eq, (0, 1), (2, 3)), Tri::False);
        assert_eq!(cmp_tri(CmpOp::Eq, (2, 2), (2, 2)), Tri::True);
        assert_eq!(cmp_tri(CmpOp::Lt, (0, 1), (2, 3)), Tri::True);
        assert_eq!(cmp_tri(CmpOp::Ge, (0, 1), (2, 3)), Tri::False);
        assert_eq!(cmp_tri(CmpOp::Ne, (0, 3), (2, 3)), Tri::Unknown);
    }

    #[test]
    fn kpt010_finds_an_unreachable_counter_value() {
        let space = StateSpace::builder()
            .nat_var("i", 8)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("dead", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(
                kpt_unity::Statement::new("step")
                    .guard_str("i < 3")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .statement(
                kpt_unity::Statement::new("never")
                    .guard_str("i = 7")
                    .unwrap()
                    .assign_str("i", "0")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let diags = lint_df(&program);
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == DiagnosticCode::IntervalDeadGuard)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].statement.as_deref(), Some("never"));
        assert!(
            dead[0].message.contains("`i` ∈ [0, 3]"),
            "{}",
            dead[0].message
        );
    }

    #[test]
    fn tarjan_matches_hand_computed_components() {
        // 0 → 1 → 2 → 0 is one cycle; 3 → 4 a chain.
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![]];
        let comp = sccs(&adj);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }
}
