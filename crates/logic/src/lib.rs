//! # kpt-logic: the formula notation of extended UNITY
//!
//! A syntactic layer over the semantic predicates of [`kpt_state`]: an AST
//! ([`Formula`], [`Expr`]), a parser for a concrete UNITY-ish syntax
//! ([`parse_formula`]), a round-tripping pretty-printer, and an evaluator
//! ([`EvalContext`]) that maps formulas to exact [`kpt_state::Predicate`]s.
//!
//! The paper (§5) extends UNITY so that *knowledge predicates may appear in
//! guards*; accordingly the formula language includes the knowledge modality
//! `K{i}(φ)`. The knowledge semantics itself (the paper's eq. 13) lives in
//! `kpt-core` and is plugged in via [`EvalContext::with_knowledge`], keeping
//! this crate purely syntactic.
//!
//! ## Concrete syntax
//!
//! ```text
//! ~φ   φ /\ ψ   φ \/ ψ   φ => ψ   φ <=> ψ        (also ! && ||)
//! e = e'   e != e'   e < e'   e <= e'   e > e'   e >= e'
//! e ::= n | ident | e + e | e - e
//! K{S}(φ)                 knowledge modality, the paper's K_S φ
//! forall v :: φ           quantification over a *program variable*
//! exists v :: φ
//! ```
//!
//! Rigid parameters (the paper's free variables like `k` in property (35))
//! are bound with [`EvalContext::with_param`], or instantiated over a range
//! with [`Formula::forall_range`] / [`Formula::exists_range`].
//!
//! ## Example
//!
//! ```
//! use kpt_logic::{parse_formula, EvalContext};
//! use kpt_state::StateSpace;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = StateSpace::builder()
//!     .nat_var("i", 4)?
//!     .enum_var("z", ["bot", "ack"])?
//!     .build()?;
//! // The guard of the Sender's second statement in Figure 4 of the paper:
//! let guard = parse_formula("z = ack /\\ i + 1 < 4")?;
//! let ctx = EvalContext::new(&space);
//! let p = ctx.eval(&guard)?;
//! assert_eq!(p.count(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod display;
mod error;
mod eval;
mod parser;
pub mod surface;

pub use ast::{CmpOp, Expr, Formula};
pub use error::{render_span, EvalError, ParseError};
pub use eval::{EvalContext, KnowledgeFn};
pub use parser::{parse_expr, parse_formula};
pub use surface::{
    parse_program_ast, DeclAst, DomainAst, ProcessAst, ProgramAst, Span, StatementAst,
};
