//! Symbolic-backend summary: benches the ROBDD engine against the explicit
//! bitset backend, demonstrates the `SearchTooLarge` escape hatch, runs a
//! strongest-invariant fixpoint over a 2^32-state space no bitset sweep
//! could enumerate, and compares the scaled engine (garbage collection,
//! dynamic sifting, partitioned relations with early quantification)
//! against the grow-only fixed-order monolithic baseline. Writes
//! `BENCH_bdd.json` plus scaling tables on stdout.
//!
//! Usage: `cargo run --release -p kpt-bench --bin bdd_summary`
//! (`KPT_BENCH_JSON` overrides the output path, `KPT_BENCH_FAST=1` runs a
//! shorter smoke configuration).

use std::sync::Arc;
use std::time::Instant;

use kpt_bdd::{
    symbolic_sst_bounded, symbolic_sst_with_stats, symbolic_strongest_invariant, BddConfig,
    BddError, BddSpace, GcPolicy, ReorderPolicy, SymbolicKbp, SymbolicOutcome, SymbolicPredicate,
    SymbolicTransition,
};
use kpt_core::{CoreError, Kbp};
use kpt_seqtrans::{ModelOptions, StandardModel, SymbolicStandard};
use kpt_state::{Predicate, StateSpace};
use kpt_testkit::Criterion;
use kpt_transformers::sst_frontier_with_stats;
use kpt_unity::{Program, Statement};

fn space_with_vars(nvars: usize, dom: u64) -> Arc<StateSpace> {
    let mut b = StateSpace::builder();
    for i in 0..nvars {
        b = b.nat_var(&format!("v{i}"), dom).unwrap();
    }
    b.build().unwrap()
}

/// Core boolean/quantifier/transformer ops, symbolic vs explicit, over the
/// same 65536-state space the kernel report uses.
fn op_cases(c: &mut Criterion) {
    let space = space_with_vars(8, 4);
    let ep = Predicate::from_fn(&space, |s| s % 5 != 0);
    let eq = Predicate::from_fn(&space, |s| s % 3 == 1);
    let bdd = BddSpace::new(&space);
    let sp = SymbolicPredicate::from_explicit(&bdd, &ep);
    let sq = SymbolicPredicate::from_explicit(&bdd, &eq);
    let all = space.all_vars();

    let mut group = c.benchmark_group("bdd_ops");
    group.bench_function("symbolic_and/65536states", |b| b.iter(|| sp.and(&sq)));
    group.bench_function("explicit_and/65536states", |b| b.iter(|| ep.and(&eq)));
    group.bench_function("symbolic_forall_all/65536states", |b| {
        b.iter(|| sp.forall_vars(all))
    });
    group.bench_function("explicit_forall_all/65536states", |b| {
        b.iter(|| kpt_state::forall_set(&ep, all))
    });

    // sp/wp of a deterministic increment on the first variable.
    let v0 = space.var("v0").unwrap();
    let sp_arc = Arc::clone(&space);
    let det = kpt_transformers::DetTransition::from_fn(&space, move |s| {
        let x = sp_arc.value(s, v0);
        sp_arc.with_value(s, v0, (x + 1) % 4)
    });
    let sym_t = SymbolicTransition::from_det(&bdd, &det);
    group.bench_function("symbolic_sp/65536states", |b| b.iter(|| sym_t.sp(&sp)));
    group.bench_function("explicit_sp/65536states", |b| b.iter(|| det.sp(&ep)));
    group.bench_function("symbolic_wp/65536states", |b| b.iter(|| sym_t.wp(&sp)));
    group.bench_function("explicit_wp/65536states", |b| b.iter(|| det.wp(&ep)));
    group.finish();
}

/// Strongest invariants of the standard sequence-transmission model, both
/// backends, at growing instance sizes. Returns rows for the stdout table.
fn seqtrans_cases(c: &mut Criterion, fast: bool) -> Vec<(String, u64, usize, f64, f64)> {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("bdd_seqtrans");
    group.sample_size(10);
    let instances: &[(usize, usize)] = if fast { &[(2, 2)] } else { &[(2, 2), (2, 3)] };
    for &(a, l) in instances {
        let label = format!("a{a}l{l}");
        let model = StandardModel::build(a, l, ModelOptions::default()).unwrap();
        let compiled = model.compile().unwrap();
        let sym = SymbolicStandard::from_compiled(&model, &compiled);
        assert_eq!(
            &sym.si().to_explicit(),
            compiled.si(),
            "backends disagree on SI at {label}"
        );
        let init = sym.init().clone();
        let transitions = sym.transitions().to_vec();
        group.bench_function(format!("symbolic_si/{label}"), |b| {
            b.iter(|| symbolic_strongest_invariant(&transitions, &init))
        });
        let det = compiled.transitions().to_vec();
        let einit = compiled.init().clone();
        group.bench_function(format!("explicit_si/{label}"), |b| {
            b.iter(|| sst_frontier_with_stats(&det, &einit))
        });

        let t0 = Instant::now();
        let _ = symbolic_strongest_invariant(&transitions, &init);
        let sym_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let _ = sst_frontier_with_stats(&det, &einit);
        let exp_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push((
            label,
            model.space().num_states(),
            sym.si().node_count(),
            sym_ms,
            exp_ms,
        ));
    }
    group.finish();
    rows
}

/// The 159-free-state escape-hatch KBP (the `escape159` registry model).
fn escape_program() -> Program {
    let space = StateSpace::builder()
        .nat_var("i", 80)
        .unwrap()
        .bool_var("done")
        .unwrap()
        .build()
        .unwrap();
    Program::builder("bdd-escape", &space)
        .init_str("i = 0 && !done")
        .unwrap()
        .process("P", ["i"])
        .unwrap()
        .statement(
            Statement::new("inc")
                .guard_str("i < 79")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("finish")
                .guard_str("K{P}(i >= 40)")
                .unwrap()
                .assign_str("done", "1")
                .unwrap(),
        )
        .build()
        .unwrap()
}

/// A KBP with 159 free states: `solve_exhaustive` rejects it (the subset
/// mask is 64 bits wide), the symbolic iteration converges.
fn escape_hatch_case(c: &mut Criterion) {
    let program = escape_program();

    // The explicit exhaustive solver cannot touch this instance.
    let explicit = Kbp::new(program.clone());
    let free = explicit.program().init().negate().count();
    assert!(free >= 64, "instance must exceed the subset-mask width");
    match explicit.solve_exhaustive(u64::MAX) {
        Err(CoreError::SearchTooLarge { free_states, .. }) => {
            assert_eq!(free_states, free);
        }
        other => panic!("expected SearchTooLarge, got {other:?}"),
    }

    // The symbolic iteration converges and verifies.
    let sym = SymbolicKbp::from_program(&program).unwrap();
    let outcome = sym.solve_iterative(64).unwrap();
    let solution = match &outcome {
        SymbolicOutcome::Converged { solution, .. } => solution.clone(),
        other => panic!("expected convergence, got {other:?}"),
    };
    assert!(sym.is_solution(&solution).unwrap());
    println!(
        "escape hatch: {free} free states, exhaustive rejects, symbolic \
         converges to a {}-state solution ({} BDD nodes)",
        solution.count(),
        solution.node_count()
    );

    let mut group = c.benchmark_group("bdd_kbp");
    group.sample_size(10);
    group.bench_function("symbolic_solve/159free", |b| {
        b.iter(|| {
            SymbolicKbp::from_program(&program)
                .unwrap()
                .solve_iterative(64)
                .unwrap()
        })
    });
    group.finish();
}

/// SI over 2^32 states: 32 toggle statements reach the full boolean cube
/// from the all-zeros state. The explicit backend's bitset for one
/// predicate at this size is 512 MiB and every sweep visits 2^32 states;
/// the symbolic frontier finishes in milliseconds.
fn huge_space_case(c: &mut Criterion, fast: bool) {
    let nvars = if fast { 24 } else { 32 };
    let mut b = StateSpace::builder();
    for i in 0..nvars {
        b = b.bool_var(&format!("b{i}")).unwrap();
    }
    let space = b.build().unwrap();
    let bdd = BddSpace::new(&space);
    let transitions: Vec<SymbolicTransition> = (0..nvars)
        .map(|i| {
            let v = space.var(&format!("b{i}")).unwrap();
            SymbolicTransition::builder(&bdd)
                .assign(v, &[v], |x| 1 - x[0])
                .build()
                .unwrap()
        })
        .collect();
    let init = (0..nvars).fold(SymbolicPredicate::tt(&bdd), |acc, i| {
        let v = space.var(&format!("b{i}")).unwrap();
        acc.and(&SymbolicPredicate::var_eq(&bdd, v, 0))
    });
    let (si, stats) = symbolic_sst_with_stats(&init, &transitions);
    assert!(si.everywhere(), "toggles reach the full cube");
    assert_eq!(si.count(), space.num_states());
    println!(
        "huge space: SI over {} states in {} rounds, {} nodes",
        space.num_states(),
        stats.rounds,
        stats.nodes
    );
    let mut group = c.benchmark_group("bdd_scale");
    group.sample_size(10);
    group.bench_function(format!("symbolic_si_toggles/2e{nvars}states"), |b| {
        b.iter(|| symbolic_sst_with_stats(&init, &transitions))
    });
    group.finish();
}

/// Partitioned vs monolithic relations on registry models: the full
/// `sp`-driven reachability fixpoint (plus a `wp` sweep), on a fresh
/// space per sample so materialization and memo state are not shared.
/// The partitioned side consumes each statement as its conjunctive
/// partition with early quantification; the monolithic side first
/// materializes the single-BDD `ite(guard, update, identity)` relation the
/// PR-4 engine used and quantifies over that. Knowledge guards are
/// evaluated at the first protocol iterate in both.
fn partition_cases(c: &mut Criterion) -> Vec<(String, usize, usize, f64, f64)> {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("bdd_partition");
    group.sample_size(10);
    let models: Vec<(&str, Program)> = vec![
        (
            "muddy3",
            kpt_core::muddy_children_n(3)
                .expect("muddy3 builds")
                .program()
                .clone(),
        ),
        (
            "muddy4",
            kpt_core::muddy_children_n(4)
                .expect("muddy4 builds")
                .program()
                .clone(),
        ),
        ("escape159", escape_program()),
    ];
    // One pass: translate, optionally materialize monolithic relations,
    // run the reachability closure and a wp sweep over every statement.
    let run = |program: &Program, monolithic: bool| -> (u64, usize, usize, usize) {
        let sym = SymbolicKbp::from_program(program).expect("registry model translates");
        let x = sym.iterate(&sym.init()).expect("first iterate");
        let ts: Vec<SymbolicTransition> = program
            .statements()
            .iter()
            .map(|s| {
                let t = sym
                    .statement_transition(s.name(), &x)
                    .expect("statement translates");
                if monolithic {
                    t.monolithic()
                } else {
                    t
                }
            })
            .collect();
        let si = symbolic_strongest_invariant(&ts, &sym.init());
        for t in &ts {
            let _ = t.wp(&si);
        }
        let rel_nodes = ts.iter().map(SymbolicTransition::node_count).sum();
        let max_parts = ts
            .iter()
            .map(SymbolicTransition::num_parts)
            .max()
            .unwrap_or(1);
        (si.count(), si.node_count(), rel_nodes, max_parts)
    };
    for (name, program) in &models {
        // Same denotation: both forms must land on the same canonical SI,
        // and every per-statement sp/wp product must agree.
        {
            let sym = SymbolicKbp::from_program(program).expect("registry model translates");
            let x = sym.iterate(&sym.init()).expect("first iterate");
            for s in program.statements() {
                let p = sym
                    .statement_transition(s.name(), &x)
                    .expect("statement translates");
                let m = p.monolithic();
                assert_eq!(p.sp(&x), m.sp(&x), "{name}: partitioned sp diverges");
                assert_eq!(p.wp(&x), m.wp(&x), "{name}: partitioned wp diverges");
            }
        }
        let (pc, pn, _, max_parts) = run(program, false);
        let (mc, mn, mono_nodes, _) = run(program, true);
        assert_eq!((pc, pn), (mc, mn), "{name}: fixpoints diverge");

        group.bench_function(format!("partitioned_spwp/{name}"), |b| {
            b.iter(|| run(program, false))
        });
        group.bench_function(format!("monolithic_spwp/{name}"), |b| {
            b.iter(|| run(program, true))
        });
        let t0 = Instant::now();
        let _ = run(program, false);
        let part_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let _ = run(program, true);
        let mono_ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(((*name).to_owned(), max_parts, mono_nodes, part_ms, mono_ms));
    }
    group.finish();
    rows
}

/// The separated-pairs worst case for the declared order: `a0..a{n-1}`
/// then `b0..b{n-1}`, statement `i` taking pair `i` from `(0,0)` to
/// `(1,1)`. The reached set is the pairing `/\ (a_i <-> b_i)`, exponential
/// under the block order and linear once the pairs are interleaved — so
/// the grow-only fixed-order engine exhausts a node budget the sifting
/// engine finishes well inside.
fn pairs_model(
    npairs: usize,
    config: BddConfig,
) -> (
    Arc<StateSpace>,
    Arc<BddSpace>,
    SymbolicPredicate,
    Vec<SymbolicTransition>,
) {
    let mut b = StateSpace::builder();
    for i in 0..npairs {
        b = b.bool_var(&format!("a{i}")).unwrap();
    }
    for i in 0..npairs {
        b = b.bool_var(&format!("b{i}")).unwrap();
    }
    let space = b.build().unwrap();
    let bdd = BddSpace::with_config(&space, config);
    let transitions: Vec<SymbolicTransition> = (0..npairs)
        .map(|i| {
            let a = space.var(&format!("a{i}")).unwrap();
            let bv = space.var(&format!("b{i}")).unwrap();
            let guard =
                SymbolicPredicate::var_eq(&bdd, a, 0).and(&SymbolicPredicate::var_eq(&bdd, bv, 0));
            SymbolicTransition::builder(&bdd)
                .guard(&guard)
                .assign(a, &[], |_| 1)
                .assign(bv, &[], |_| 1)
                .build()
                .unwrap()
        })
        .collect();
    let init = (0..npairs).fold(SymbolicPredicate::tt(&bdd), |acc, i| {
        let a = space.var(&format!("a{i}")).unwrap();
        let bv = space.var(&format!("b{i}")).unwrap();
        acc.and(&SymbolicPredicate::var_eq(&bdd, a, 0))
            .and(&SymbolicPredicate::var_eq(&bdd, bv, 0))
    });
    (space, bdd, init, transitions)
}

/// Engine-configuration rows: the same strongest-invariant fixpoint under
/// the PR-4 baseline (grow-only, fixed order) and the scaled engine
/// (GC + sifting), plus the budgeted separated-pairs run where only the
/// sifting engine finishes.
fn engine_cases(c: &mut Criterion, fast: bool) {
    let npairs = if fast { 10 } else { 24 };
    let budget = if fast { 2_000 } else { 20_000 };
    let sift_config = BddConfig {
        gc: GcPolicy::OnGrowth {
            min_nodes: 1 << 12,
            dead_percent: 25,
        },
        reorder: ReorderPolicy::SiftOnGrowth {
            trigger_nodes: if fast { 512 } else { 2_048 },
            max_growth_percent: 20,
        },
    };

    // (a) The fixed-order grow-only engine exhausts the budget...
    let (_, _, init, transitions) = pairs_model(npairs, BddConfig::serial());
    let err = symbolic_sst_bounded(&init, &transitions, budget)
        .expect_err("fixed declaration order must exhaust the budget");
    let BddError::NodeBudgetExceeded { nodes, rounds, .. } = err else {
        panic!("expected NodeBudgetExceeded, got {err:?}");
    };
    println!(
        "separated pairs ({npairs} pairs, 2^{} states): fixed order exhausts \
         the {budget}-node budget after {rounds} rounds ({nodes} live)",
        2 * npairs
    );

    // ...(b) while GC + sifting finishes the same instance inside it.
    let (space, bdd, init, transitions) = pairs_model(npairs, sift_config);
    let (si, stats) =
        symbolic_sst_bounded(&init, &transitions, budget).expect("sifting engine stays in budget");
    assert_eq!(si.count(), 1u64 << npairs, "SI is the pairing set");
    println!(
        "separated pairs ({npairs} pairs, 2^{} states): GC+sifting finishes in \
         {} rounds, SI {} nodes, {} live ({} sift passes, {} sweeps)",
        2 * npairs,
        stats.rounds,
        stats.nodes,
        bdd.live_node_count(),
        bdd.reorder_stats().runs,
        bdd.gc_stats().runs,
    );
    assert!(
        bdd.reorder_stats().runs > 0,
        "the pairs instance must trigger sifting"
    );

    let mut group = c.benchmark_group("bdd_engine");
    group.sample_size(10);
    let states = 2 * npairs;
    group.bench_function(format!("symbolic_si_pairs_sifted/2e{states}states"), |b| {
        b.iter(|| {
            // A fresh space per sample: reordering carries over, so reuse
            // would measure the already-interleaved order.
            let (_, _, init, transitions) = pairs_model(npairs, sift_config);
            symbolic_sst_bounded(&init, &transitions, budget).expect("stays in budget")
        })
    });
    // The serial engine only completes the small instance without a budget.
    let small = if fast { 6 } else { 10 };
    group.bench_function(
        format!("symbolic_si_pairs_serial/2e{}states", 2 * small),
        |b| {
            b.iter(|| {
                let (_, _, init, transitions) = pairs_model(small, BddConfig::serial());
                symbolic_sst_with_stats(&init, &transitions)
            })
        },
    );
    group.finish();
    drop(space);
}

fn main() {
    let (config, fast) = kpt_bench::report_config("BENCH_bdd.json", 10, 20);
    let mut c = Criterion::with_config(config);
    op_cases(&mut c);
    let rows = seqtrans_cases(&mut c, fast);
    escape_hatch_case(&mut c);
    huge_space_case(&mut c, fast);
    let part_rows = partition_cases(&mut c);
    engine_cases(&mut c, fast);

    println!("\n== seqtrans SI scaling (one-shot, release) ==");
    println!(
        "{:<8} {:>12} {:>10} {:>14} {:>14}",
        "inst", "states", "SI nodes", "symbolic ms", "explicit ms"
    );
    for (label, states, nodes, sym_ms, exp_ms) in &rows {
        println!("{label:<8} {states:>12} {nodes:>10} {sym_ms:>14.3} {exp_ms:>14.3}");
    }

    println!("\n== partitioned vs monolithic sp/wp (one-shot, release) ==");
    println!(
        "{:<10} {:>6} {:>11} {:>15} {:>15}",
        "model", "parts", "mono nodes", "partitioned ms", "monolithic ms"
    );
    for (name, parts, nodes, part_ms, mono_ms) in &part_rows {
        println!("{name:<10} {parts:>6} {nodes:>11} {part_ms:>15.3} {mono_ms:>15.3}");
    }
    c.final_summary();
}
