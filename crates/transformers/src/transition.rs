//! Deterministic state transitions and their `sp`/`wp`/`wlp` transformers.
//!
//! UNITY statements are guarded, *deterministic*, terminating multiple
//! assignments, so a single statement denotes a total function on states
//! ([`DetTransition`]). Its strongest postcondition `sp` is the image and
//! its weakest precondition `wp` the preimage; since statements always
//! terminate, `wp = wlp` (§5 of the paper).
//!
//! The whole-program `SP` of eq. (26),
//! `SP.p ≡ (∃ s : s a statement : sp.s.p)`, is provided by [`sp_union`].

use std::sync::{Arc, OnceLock};

use kpt_state::{Predicate, StateSpace};

/// A total, deterministic transition function on a finite state space,
/// stored as a dense successor table, plus a lazily-built predecessor
/// adjacency in compressed-sparse-row form (used to make `wp` of a sparse
/// predicate a gather over only the relevant edges).
#[derive(Debug, Clone)]
pub struct DetTransition {
    space: Arc<StateSpace>,
    succ: Box<[u32]>,
    preds: OnceLock<PredCsr>,
}

/// Predecessor lists of every state, CSR-packed: the predecessors of `t`
/// are `data[offsets[t] .. offsets[t + 1]]`. Total size is exactly one
/// entry per state (each state has one successor).
#[derive(Debug, Clone)]
struct PredCsr {
    offsets: Box<[u64]>,
    data: Box<[u32]>,
}

impl DetTransition {
    /// Build from a successor function evaluated at every state.
    ///
    /// # Panics
    /// Panics if `f` returns an out-of-range successor.
    pub fn from_fn<F: FnMut(u64) -> u64>(space: &Arc<StateSpace>, mut f: F) -> Self {
        let n = space.num_states();
        let mut succ = Vec::with_capacity(n as usize);
        for s in 0..n {
            let t = f(s);
            assert!(t < n, "successor {t} of state {s} out of range");
            succ.push(t as u32);
        }
        DetTransition {
            space: Arc::clone(space),
            succ: succ.into_boxed_slice(),
            preds: OnceLock::new(),
        }
    }

    /// The identity transition (the semantics of a statement whose guard is
    /// false: "the execution of the statement has no effect").
    pub fn identity(space: &Arc<StateSpace>) -> Self {
        DetTransition::from_fn(space, |s| s)
    }

    /// The state space.
    pub fn space(&self) -> &Arc<StateSpace> {
        &self.space
    }

    /// Successor of a single state.
    #[inline]
    pub fn step(&self, state: u64) -> u64 {
        u64::from(self.succ[state as usize])
    }

    /// The predecessor CSR, built on first use and cached for the lifetime
    /// of the transition (counting sort over the successor table).
    fn csr(&self) -> &PredCsr {
        self.preds.get_or_init(|| {
            let n = self.succ.len();
            let mut offsets = vec![0u64; n + 1];
            for &t in self.succ.iter() {
                offsets[t as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut data = vec![0u32; n];
            for (s, &t) in self.succ.iter().enumerate() {
                let c = &mut cursor[t as usize];
                data[*c as usize] = s as u32;
                *c += 1;
            }
            PredCsr {
                offsets: offsets.into_boxed_slice(),
                data: data.into_boxed_slice(),
            }
        })
    }

    /// The states mapping onto `state` (builds the predecessor CSR on first
    /// call).
    pub fn predecessors(&self, state: u64) -> &[u32] {
        let csr = self.csr();
        let lo = csr.offsets[state as usize] as usize;
        let hi = csr.offsets[state as usize + 1] as usize;
        &csr.data[lo..hi]
    }

    /// Strongest postcondition: the exact image `{ t | ∃s ∈ p : s → t }`.
    /// Scatter over only the set bits of `p`.
    #[must_use]
    pub fn sp(&self, p: &Predicate) -> Predicate {
        let mut words = vec![0u64; p.as_words().len()];
        for s in p.iter() {
            let t = u64::from(self.succ[s as usize]);
            words[(t / 64) as usize] |= 1 << (t % 64);
        }
        Predicate::from_raw_words(&self.space, words)
    }

    /// Weakest (liberal) precondition: the exact preimage
    /// `{ s | step(s) ∈ p }`. Since the transition is total and
    /// deterministic, `wp = wlp`.
    ///
    /// A sparse `p` is answered through the predecessor CSR (work
    /// proportional to the edges entering `p`); a dense `p` by a direct
    /// gather over the successor table.
    #[must_use]
    pub fn wp(&self, p: &Predicate) -> Predicate {
        let n = self.space.num_states();
        if p.count() * 4 <= n {
            let csr = self.csr();
            let mut words = vec![0u64; p.as_words().len()];
            for t in p.iter() {
                let lo = csr.offsets[t as usize] as usize;
                let hi = csr.offsets[t as usize + 1] as usize;
                for &s in &csr.data[lo..hi] {
                    words[(s / 64) as usize] |= 1 << (s % 64);
                }
            }
            Predicate::from_raw_words(&self.space, words)
        } else {
            let mut words = vec![0u64; p.as_words().len()];
            for (w, chunk) in self.succ.chunks(64).enumerate() {
                let mut bits = 0u64;
                for (i, &t) in chunk.iter().enumerate() {
                    bits |= u64::from(p.holds(u64::from(t))) << i;
                }
                words[w] = bits;
            }
            Predicate::from_raw_words(&self.space, words)
        }
    }

    /// Reference implementation of [`DetTransition::sp`] (per-index
    /// insertion), kept for differential testing.
    #[must_use]
    pub fn sp_naive(&self, p: &Predicate) -> Predicate {
        Predicate::from_indices(&self.space, p.iter().map(|s| self.step(s)))
    }

    /// Reference implementation of [`DetTransition::wp`] (per-state probe),
    /// kept for differential testing.
    #[must_use]
    pub fn wp_naive(&self, p: &Predicate) -> Predicate {
        Predicate::from_fn(&self.space, |s| p.holds(self.step(s)))
    }

    /// Whether `p` is *stable* under this transition: `[sp.p ⇒ p]`,
    /// equivalently `[p ⇒ wp.p]`.
    pub fn preserves(&self, p: &Predicate) -> bool {
        p.entails(&self.wp(p))
    }

    /// Fixed points of the transition: states `s` with `step(s) = s`.
    #[must_use]
    pub fn fixed_states(&self) -> Predicate {
        Predicate::from_fn(&self.space, |s| self.step(s) == s)
    }
}

/// Minimum `|statements| · |p|` scatter work before the per-statement
/// sweeps of [`sp_union`]/[`wp_inter`] fan out across the pool (below it,
/// thread spawn overhead dominates).
const PAR_SWEEP_THRESHOLD: u64 = 1 << 14;

/// Worker count for a program-level sweep: the pool's count when the
/// per-round work is large enough and there is more than one statement to
/// sweep, else serial.
fn sweep_threads(transitions: &[DetTransition], p: &Predicate) -> usize {
    if transitions.len() >= 2
        && transitions.len() as u64 * p.space().num_states() >= PAR_SWEEP_THRESHOLD
    {
        kpt_testkit::pool::num_threads()
    } else {
        1
    }
}

/// The program-level strongest postcondition of eq. (26): the union of the
/// statement images, `SP.p = (∃ s :: sp.s.p)`.
///
/// The per-statement images are independent, so on large rounds they are
/// swept in parallel across the pool workers (`KPT_THREADS` / available
/// cores) and OR-merged; bitwise OR is associative and commutative, so the
/// result is bit-identical to the serial sweep. This is the inner loop of
/// the `SI`/`sst` frontier fixpoints.
///
/// Returns `false` for an empty statement list (no transitions at all).
#[must_use]
pub fn sp_union(transitions: &[DetTransition], p: &Predicate) -> Predicate {
    sp_union_with(sweep_threads(transitions, p), transitions, p)
}

/// [`sp_union`] with an explicit worker count (`1` is the serial
/// reference sweep the differential suites compare against).
#[must_use]
pub fn sp_union_with(threads: usize, transitions: &[DetTransition], p: &Predicate) -> Predicate {
    if threads <= 1 || transitions.len() <= 1 {
        let mut words = vec![0u64; p.as_words().len()];
        for t in transitions {
            for s in p.iter() {
                let d = u64::from(t.succ[s as usize]);
                words[(d / 64) as usize] |= 1 << (d % 64);
            }
        }
        return Predicate::from_raw_words(p.space(), words);
    }
    // One image buffer per statement chunk, OR-merged at the end.
    let per = transitions.len().div_ceil(threads);
    let chunks: Vec<&[DetTransition]> = transitions.chunks(per).collect();
    let buffers = kpt_testkit::pool::parallel_map_with(threads, &chunks, |chunk| {
        let mut words = vec![0u64; p.as_words().len()];
        for t in *chunk {
            for s in p.iter() {
                let d = u64::from(t.succ[s as usize]);
                words[(d / 64) as usize] |= 1 << (d % 64);
            }
        }
        words
    });
    let mut words = vec![0u64; p.as_words().len()];
    for buf in buffers {
        for (w, b) in words.iter_mut().zip(buf) {
            *w |= b;
        }
    }
    Predicate::from_raw_words(p.space(), words)
}

/// The program-level conjunction of statement `wp`s: the weakest predicate
/// guaranteeing that *every* statement leads into `p` (used by the `unless`
/// proof rule (27)). Per-statement preimages are independent and are swept
/// in parallel on large rounds, AND-merged (associative/commutative, so
/// bit-identical to the serial sweep).
#[must_use]
pub fn wp_inter(transitions: &[DetTransition], p: &Predicate) -> Predicate {
    wp_inter_with(sweep_threads(transitions, p), transitions, p)
}

/// [`wp_inter`] with an explicit worker count (`1` is the serial
/// reference sweep the differential suites compare against).
#[must_use]
pub fn wp_inter_with(threads: usize, transitions: &[DetTransition], p: &Predicate) -> Predicate {
    let mut out = Predicate::tt(p.space());
    if threads <= 1 || transitions.len() <= 1 {
        for t in transitions {
            out.and_assign(&t.wp(p));
        }
        return out;
    }
    for wp in kpt_testkit::pool::parallel_map_with(threads, transitions, |t| t.wp(p)) {
        out.and_assign(&wp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Arc<StateSpace> {
        StateSpace::builder()
            .nat_var("i", 6)
            .unwrap()
            .build()
            .unwrap()
    }

    /// i := i+1 if i < 5
    fn incr(space: &Arc<StateSpace>) -> DetTransition {
        DetTransition::from_fn(space, |s| if s < 5 { s + 1 } else { s })
    }

    #[test]
    fn sp_is_exact_image() {
        let s = space();
        let t = incr(&s);
        let p = Predicate::from_indices(&s, [0, 4, 5]);
        let img = t.sp(&p);
        assert_eq!(img.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn wp_is_exact_preimage() {
        let s = space();
        let t = incr(&s);
        let p = Predicate::from_indices(&s, [3]);
        assert_eq!(t.wp(&p).iter().collect::<Vec<_>>(), vec![2]);
        // wp of a set containing the absorbing state includes it.
        let q = Predicate::from_indices(&s, [5]);
        assert_eq!(t.wp(&q).iter().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn galois_connection_sp_wp() {
        // [sp.p ⇒ q]  ≡  [p ⇒ wp.q]
        let s = space();
        let t = incr(&s);
        for pi in 0..(1u64 << 6) {
            let p = Predicate::from_fn(&s, |idx| pi >> idx & 1 == 1);
            for qi in [0u64, 0b101010, 0b111000, (1 << 6) - 1] {
                let q = Predicate::from_fn(&s, |idx| qi >> idx & 1 == 1);
                assert_eq!(t.sp(&p).entails(&q), p.entails(&t.wp(&q)));
            }
        }
    }

    #[test]
    fn identity_transition() {
        let s = space();
        let id = DetTransition::identity(&s);
        let p = Predicate::from_indices(&s, [1, 3]);
        assert_eq!(id.sp(&p), p);
        assert_eq!(id.wp(&p), p);
        assert!(id.preserves(&p));
        assert!(id.fixed_states().everywhere());
    }

    #[test]
    fn preserves_detects_stability() {
        let s = space();
        let t = incr(&s);
        let up = Predicate::from_fn(&s, |i| i >= 2);
        assert!(t.preserves(&up));
        let down = Predicate::from_fn(&s, |i| i <= 2);
        assert!(!t.preserves(&down));
    }

    #[test]
    fn fixed_states_of_incr() {
        let s = space();
        let t = incr(&s);
        assert_eq!(t.fixed_states().iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn sp_union_and_wp_inter() {
        let s = space();
        let t1 = incr(&s);
        // i := i-1 if i > 0
        let t2 = DetTransition::from_fn(&s, |i| i.saturating_sub(1));
        let p = Predicate::from_indices(&s, [2]);
        let sp = sp_union(&[t1.clone(), t2.clone()], &p);
        assert_eq!(sp.iter().collect::<Vec<_>>(), vec![1, 3]);
        // wp_inter: all statements stay within {1,2,3} from exactly {2}.
        let q = Predicate::from_indices(&s, [1, 2, 3]);
        let wp = wp_inter(&[t1, t2], &q);
        assert_eq!(wp.iter().collect::<Vec<_>>(), vec![2]);
        // Empty program: SP = false, wp_inter = true.
        assert!(sp_union(&[], &p).is_false());
        assert!(wp_inter(&[], &p).everywhere());
    }

    #[test]
    fn parallel_sweeps_match_serial_for_any_thread_count() {
        let s = StateSpace::builder()
            .nat_var("i", 512)
            .unwrap()
            .build()
            .unwrap();
        let ts: Vec<DetTransition> = (1..6u64)
            .map(|k| DetTransition::from_fn(&s, move |i| (i + k) % 512))
            .collect();
        let p = Predicate::from_fn(&s, |i| i % 3 == 0);
        let serial_sp = sp_union_with(1, &ts, &p);
        let serial_wp = wp_inter_with(1, &ts, &p);
        for threads in [2, 3, 8] {
            assert_eq!(sp_union_with(threads, &ts, &p), serial_sp, "sp x{threads}");
            assert_eq!(wp_inter_with(threads, &ts, &p), serial_wp, "wp x{threads}");
        }
        // The adaptive entry points agree as well (whatever they choose).
        assert_eq!(sp_union(&ts, &p), serial_sp);
        assert_eq!(wp_inter(&ts, &p), serial_wp);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_successor_panics() {
        let s = space();
        let _ = DetTransition::from_fn(&s, |i| i + 1);
    }

    #[test]
    fn sp_monotonic_and_or_continuous() {
        // Properties assumed of SP in §2: total, monotonic, or-continuous.
        let s = space();
        let t = incr(&s);
        let p = Predicate::from_indices(&s, [0, 1]);
        let q = Predicate::from_indices(&s, [0, 1, 3]);
        assert!(t.sp(&p).entails(&t.sp(&q)));
        // Finite disjunctivity (hence or-continuity on finite spaces):
        assert_eq!(t.sp(&p.or(&q)), t.sp(&p).or(&t.sp(&q)));
    }
}
