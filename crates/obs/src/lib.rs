//! # kpt-obs: the workspace's zero-dependency observability layer
//!
//! The verification kernels answer *whether* a property holds; this crate
//! answers *why it was slow* and *why it failed*. Three pieces, all
//! in-tree and offline (matching the `kpt-testkit` philosophy):
//!
//! * **Metrics** ([`counter!`], [`histogram!`], [`metrics_snapshot`]) — a
//!   global registry of named atomic counters and log₂-bucketed
//!   histograms. Call sites cache the handle in a local `static`, so the
//!   steady-state cost of a bump is one relaxed atomic add; the registry
//!   lock is touched once per call site per process.
//! * **Traces** ([`span`], [`event`], [`trace_to_file`]) — structured
//!   events with monotonic timestamps, kept in a bounded ring buffer and
//!   (when `KPT_TRACE=<path>` is set, or a sink is installed
//!   programmatically) appended as JSON Lines. Live spans carry span and
//!   parent ids maintained on a thread-local span stack, so a trace is a
//!   real call tree; ring overflow is counted (`trace.dropped_events`)
//!   and marked in-band instead of being silent. When tracing is
//!   disabled — the default — every entry point is a single relaxed
//!   atomic load and a branch: no clock reads, no allocation, no locks.
//! * **Profiles** ([`profile_to_file`], `KPT_PROFILE=<path>`,
//!   [`aggregate_spans`], [`folded_stacks`]) — exact self-time
//!   attribution over the span tree, exported in the flamegraph.pl
//!   collapsed-stack format and aggregatable per label (self vs. total
//!   time, call counts) from any recorded trace.
//! * **Verdicts** ([`Verdict`], [`WitnessState`]) — the structured
//!   explanation attached to failed proof obligations and no-solution
//!   outcomes: instead of a bare `false`, a verdict names concrete
//!   offending states decoded through the state space's variable names.
//!
//! The crate deliberately knows nothing about predicates or state spaces:
//! the verification crates decode their own states into [`WitnessState`]
//! rows and hand them over. This keeps `kpt-obs` at the bottom of the
//! dependency graph, usable from `kpt-state` up.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod json;
mod metrics;
mod profile;
mod trace;
mod verdict;

pub use json::{parse_json, JsonError, JsonValue};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, CacheStats, Counter, Gauge,
    Histogram, HistogramSnapshot, Metric, MetricValue,
};
pub use profile::{
    aggregate_spans, disable_profile, flush_profile, folded_stacks, profile_path, profile_to_file,
    span_records, SpanAggregate, SpanRecord,
};
pub use trace::{
    disable_trace, dropped_events, event, json_escape_into, recent_events, set_trace_subscriber,
    span, trace_enabled, trace_path, trace_to_file, trace_to_ring, Event, Field, Span, Subscriber,
};
pub use verdict::{report_verdict, Verdict, WitnessState};
