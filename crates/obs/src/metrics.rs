//! The global metrics registry: named atomic counters, gauges, and
//! histograms.
//!
//! Names are `&'static str` in dotted-path form (`"pool.steals"`,
//! `"fixpoint.frontier.rounds"`); the README's metric glossary documents
//! every name the workspace emits. Handles returned by [`counter`] /
//! [`gauge`] / [`histogram`] are `&'static` and therefore free to stash in
//! call-site `static`s — the [`counter!`]/[`gauge!`]/[`histogram!`] macros
//! do exactly that, so the registry's `Mutex` is taken once per call site
//! per process while the hot path is a single relaxed atomic RMW.
//!
//! Counters only go up; **gauges** are point-in-time resource levels
//! (live BDD nodes, memo entries, queue depths) sampled at natural safe
//! points and overwritten in place — the last write wins, and
//! [`Gauge::maximize`] keeps a high-water mark where sampling is sparse.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time resource level: set (or max-merged) at sampling safe
/// points, read whole. Unlike a [`Counter`] it goes both ways — a gauge
/// wired to the BDD manager's live-node count drops after every GC sweep.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the gauge with the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is higher (high-water marks).
    #[inline]
    pub fn maximize(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: values land in bucket `⌊log₂ v⌋ + 1` (0 in
/// bucket 0), so bucket `i` covers `[2^(i-1), 2^i)` and the last bucket is
/// a catch-all.
const BUCKETS: usize = 48;

/// A log₂-bucketed histogram of `u64` samples (sizes, durations in µs).
///
/// Recording is lock-free: one relaxed add into the bucket plus relaxed
/// adds into the running count/sum/max. Powers of two are exact enough for
/// the shapes this workspace cares about (frontier sizes, span durations)
/// while keeping the footprint at a fixed 50 words.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        let upper = if i == 0 { 0 } else { 1u64 << i };
                        (upper, n)
                    })
                })
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// `(exclusive upper bound, samples)` per non-empty log₂ bucket;
    /// bucket 0 holds exactly the zero samples.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Cache behaviour counters shared by every memo in the workspace (the
/// SI-candidate memo of `Kbp`, the `K p` memo of `KnowledgeContext`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
    /// Times the memo was cleared because it reached capacity.
    pub evictions: u64,
    /// Entries inserted over the memo's lifetime. Unlike `entries`, this
    /// survives clear-on-full eviction, so hit-rate style derived metrics
    /// stay meaningful after a clear.
    pub inserts: u64,
    /// Entries currently memoized.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no queries yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// The counter registered under `name`, created on first use. Prefer the
/// [`counter!`] macro, which caches the returned handle at the call site.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .expect("metrics registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The gauge registered under `name`, created on first use. Prefer the
/// [`gauge!`] macro, which caches the returned handle at the call site.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry().gauges.lock().expect("metrics registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram registered under `name`, created on first use. Prefer the
/// [`histogram!`] macro, which caches the returned handle at the call site.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The counter registered under a name, with the handle cached in a
/// call-site `static`: after the first call the registry lock is never
/// touched again from this location.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __KPT_OBS_COUNTER: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__KPT_OBS_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// The gauge registered under a name, with the handle cached in a
/// call-site `static` (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __KPT_OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__KPT_OBS_GAUGE.get_or_init(|| $crate::gauge($name))
    }};
}

/// The histogram registered under a name, with the handle cached in a
/// call-site `static` (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __KPT_OBS_HISTOGRAM: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__KPT_OBS_HISTOGRAM.get_or_init(|| $crate::histogram($name))
    }};
}

/// One registered metric's current value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Registered name.
    pub name: &'static str,
    /// Current value.
    pub value: MetricValue,
}

/// A counter total, gauge level, or histogram snapshot.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level (last sample).
    Gauge(u64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// Every registered metric, sorted by name (counters, gauges, and
/// histograms interleaved).
pub fn metrics_snapshot() -> Vec<Metric> {
    let reg = registry();
    let mut out: Vec<Metric> = Vec::new();
    for (name, c) in reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
    {
        out.push(Metric {
            name,
            value: MetricValue::Counter(c.get()),
        });
    }
    for (name, g) in reg.gauges.lock().expect("metrics registry poisoned").iter() {
        out.push(Metric {
            name,
            value: MetricValue::Gauge(g.get()),
        });
    }
    for (name, h) in reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
    {
        out.push(Metric {
            name,
            value: MetricValue::Histogram(h.snapshot()),
        });
    }
    out.sort_by_key(|m| m.name);
    out
}

/// Zero every registered metric (benchmark harnesses isolate phases with
/// this; handles stay valid).
pub fn reset_metrics() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        g.reset();
    }
    for h in reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name, same handle.
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
        let snap = metrics_snapshot();
        assert!(snap.iter().any(|m| m.name == "test.metrics.counter"
            && matches!(m.value, MetricValue::Counter(v) if v >= 5)));
    }

    #[test]
    fn macro_caches_handle() {
        let a = counter!("test.metrics.macro");
        let b = counter!("test.metrics.macro");
        assert!(std::ptr::eq(a, b));
        a.incr();
        assert!(b.get() >= 1);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = histogram("test.metrics.hist");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → (0,1]=bucket upper 2; 2,3 → upper 4; 1000 → upper 1024.
        assert!(s.buckets.contains(&(0, 1)));
        assert!(s.buckets.contains(&(2, 1)));
        assert!(s.buckets.contains(&(4, 2)));
        assert!(s.buckets.contains(&(1024, 1)));
        assert!((s.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn gauges_overwrite_and_maximize() {
        let g = gauge("test.metrics.gauge");
        g.set(40);
        g.set(7);
        assert_eq!(g.get(), 7, "set overwrites — gauges go down too");
        g.maximize(3);
        assert_eq!(g.get(), 7);
        g.maximize(19);
        assert_eq!(g.get(), 19);
        assert!(std::ptr::eq(g, gauge("test.metrics.gauge")));
        let cached = gauge!("test.metrics.gauge.macro");
        cached.set(5);
        assert!(std::ptr::eq(cached, gauge!("test.metrics.gauge.macro")));
        let snap = metrics_snapshot();
        assert!(snap
            .iter()
            .any(|m| m.name == "test.metrics.gauge" && matches!(m.value, MetricValue::Gauge(19))));
    }

    #[test]
    fn cache_stats_ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            inserts: 1,
            entries: 4,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
