//! Folded-stack profiling: flamegraph-compatible aggregation of the
//! hierarchical span tree.
//!
//! Two halves:
//!
//! * a **live aggregator** (`KPT_PROFILE=<path>` or [`profile_to_file`]):
//!   every closed span contributes its *self* time (total minus the time
//!   already attributed to its finished children) under its full ancestry
//!   path `root;child;leaf`. The aggregate is flushed to `path` in the
//!   collapsed-stack format `flamegraph.pl` consumes — one
//!   `stack weight` line per distinct path, weight in integer
//!   microseconds — every [`FLUSH_EVERY`] closes, on [`flush_profile`],
//!   and on [`crate::disable_trace`]. Because the file holds aggregates
//!   (not samples) it stays small however long the run;
//! * **pure reconstruction** ([`span_records`], [`aggregate_spans`],
//!   [`folded_stacks`]): the same computations over an already-recorded
//!   trace (the ring buffer or a parsed JSONL file), used by
//!   `obs_report --flame` and by tests that pin the attribution math.
//!
//! Self-time accounting is exact, not sampled: the thread-local span
//! stack in [`crate::trace`] accumulates each child's wall-clock into its
//! parent as the child closes, so a parent's self time is its own
//! duration minus exactly its children's durations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::trace::Event;

/// Closed spans between automatic flushes of the live aggregator.
const FLUSH_EVERY: usize = 4096;

static PROFILE_ENABLED: AtomicBool = AtomicBool::new(false);

struct ProfState {
    path: Option<String>,
    /// Folded stack (`a;b;c`) → (calls, accumulated self-time µs).
    stacks: HashMap<String, (u64, f64)>,
    pending: usize,
    warned: bool,
}

fn state() -> &'static Mutex<ProfState> {
    static STATE: OnceLock<Mutex<ProfState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(ProfState {
            path: None,
            stacks: HashMap::new(),
            pending: 0,
            warned: false,
        })
    })
}

/// Whether the folded-stack aggregator is collecting. Checked by
/// `Span::drop` before building the ancestry path, so runs without
/// `KPT_PROFILE` never pay for path construction.
#[inline]
pub(crate) fn profile_enabled() -> bool {
    PROFILE_ENABLED.load(Ordering::Relaxed)
}

/// Install the aggregator without touching the tracing switch (the
/// `ensure_init` path flips it together with `ENABLED`).
pub(crate) fn install(path: &str) {
    let mut s = state().lock().expect("profile state poisoned");
    s.path = Some(path.to_owned());
    s.stacks.clear();
    s.pending = 0;
    drop(s);
    PROFILE_ENABLED.store(true, Ordering::Release);
}

/// Start aggregating folded stacks into `path` (overwritten on every
/// flush) and make sure tracing is on — spans must be live to reach the
/// aggregator. If no sink is installed yet, ring-only tracing is enabled;
/// an existing file sink is left in place.
pub fn profile_to_file(path: &str) {
    if !crate::trace_enabled() {
        crate::trace_to_ring();
    }
    install(path);
}

/// Stop aggregating, flushing what has accumulated.
pub fn disable_profile() {
    flush_profile();
    PROFILE_ENABLED.store(false, Ordering::Release);
}

/// The folded-stack output path, if the aggregator is installed.
pub fn profile_path() -> Option<String> {
    state().lock().expect("profile state poisoned").path.clone()
}

/// Write the current aggregate to the profile path now (a no-op when no
/// profile is installed). Called automatically every [`FLUSH_EVERY`]
/// closed spans and from [`crate::disable_trace`].
pub fn flush_profile() {
    let mut s = state().lock().expect("profile state poisoned");
    flush_locked(&mut s);
}

/// Fold one closed span into the aggregate. `path` is the full ancestry
/// `root;..;self`, `self_us` the span's self time.
pub(crate) fn record_closed(path: &str, self_us: f64) {
    let mut s = state().lock().expect("profile state poisoned");
    if s.path.is_none() {
        return;
    }
    match s.stacks.get_mut(path) {
        Some(slot) => {
            slot.0 += 1;
            slot.1 += self_us;
        }
        None => {
            s.stacks.insert(path.to_owned(), (1, self_us));
        }
    }
    s.pending += 1;
    if s.pending >= FLUSH_EVERY {
        flush_locked(&mut s);
    }
}

fn flush_locked(s: &mut ProfState) {
    s.pending = 0;
    let Some(path) = s.path.clone() else {
        return;
    };
    let mut lines: Vec<(&String, u64)> = s
        .stacks
        .iter()
        .map(|(stack, &(_, us))| (stack, us.round() as u64))
        .collect();
    lines.sort();
    let mut out = String::with_capacity(lines.len() * 48);
    for (stack, us) in lines {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    if std::fs::write(&path, out).is_err() && !s.warned {
        s.warned = true;
        eprintln!("kpt-obs: KPT_PROFILE path {path:?} is not writable; profile output dropped");
    }
}

// ---------------------------------------------------------------------
// Pure reconstruction from recorded traces.
// ---------------------------------------------------------------------

/// One closed span as recovered from a trace: the minimum the tree
/// computations need.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's process-unique id.
    pub id: u64,
    /// Parent span id, `None` at a root.
    pub parent: Option<u64>,
    /// The span kind (`"bdd.fixpoint"`, ...).
    pub kind: String,
    /// Total duration in microseconds.
    pub dur_us: f64,
}

/// Per-label aggregate over a span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// The span kind.
    pub label: String,
    /// Closed spans with this kind.
    pub calls: u64,
    /// Summed wall-clock including children, µs.
    pub total_us: f64,
    /// Summed wall-clock excluding children, µs.
    pub self_us: f64,
}

/// Extract the closed spans from recorded events (one-shot events carry
/// no `span_id` and are skipped).
pub fn span_records(events: &[Event]) -> Vec<SpanRecord> {
    events
        .iter()
        .filter_map(|e| {
            Some(SpanRecord {
                id: e.span_id?,
                parent: e.parent_id,
                kind: e.kind.clone(),
                dur_us: e.dur_us?,
            })
        })
        .collect()
}

/// Sum of each span's children, keyed by parent id.
fn child_time(records: &[SpanRecord]) -> HashMap<u64, f64> {
    let mut child_us: HashMap<u64, f64> = HashMap::new();
    for r in records {
        if let Some(p) = r.parent {
            *child_us.entry(p).or_insert(0.0) += r.dur_us;
        }
    }
    child_us
}

/// Per-label self/total time and call counts, hottest self-time first.
///
/// A span's self time is its duration minus its recorded children's
/// durations (clamped at zero: a child whose parent was dropped by the
/// ring can over-subtract, never go negative).
pub fn aggregate_spans(records: &[SpanRecord]) -> Vec<SpanAggregate> {
    let child_us = child_time(records);
    let mut by_label: HashMap<&str, SpanAggregate> = HashMap::new();
    for r in records {
        let self_us = (r.dur_us - child_us.get(&r.id).copied().unwrap_or(0.0)).max(0.0);
        let agg = by_label
            .entry(r.kind.as_str())
            .or_insert_with(|| SpanAggregate {
                label: r.kind.clone(),
                calls: 0,
                total_us: 0.0,
                self_us: 0.0,
            });
        agg.calls += 1;
        agg.total_us += r.dur_us;
        agg.self_us += self_us;
    }
    let mut out: Vec<SpanAggregate> = by_label.into_values().collect();
    out.sort_by(|a, b| b.self_us.total_cmp(&a.self_us).then(a.label.cmp(&b.label)));
    out
}

/// Collapse a recorded span tree into flamegraph.pl folded-stack lines:
/// `(path, self-time µs)` per distinct ancestry path, sorted by path.
/// Parent chains are followed through the records; a span whose parent
/// fell out of the ring roots its own subtree.
pub fn folded_stacks(records: &[SpanRecord]) -> Vec<(String, u64)> {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let child_us = child_time(records);
    let mut folded: HashMap<String, f64> = HashMap::new();
    for r in records {
        let self_us = (r.dur_us - child_us.get(&r.id).copied().unwrap_or(0.0)).max(0.0);
        let mut chain: Vec<&str> = vec![r.kind.as_str()];
        let mut cur = r.parent;
        // Depth cap guards against id collisions across processes sharing
        // one trace file producing an accidental cycle.
        while let Some(pid) = cur {
            if chain.len() >= 64 {
                break;
            }
            match by_id.get(&pid) {
                Some(p) => {
                    chain.push(p.kind.as_str());
                    cur = p.parent;
                }
                None => break,
            }
        }
        chain.reverse();
        *folded.entry(chain.join(";")).or_insert(0.0) += self_us;
    }
    let mut out: Vec<(String, u64)> = folded
        .into_iter()
        .map(|(stack, us)| (stack, us.round() as u64))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The synthetic 3-deep tree the ISSUE pins the attribution math on:
    ///
    /// ```text
    /// solve (100µs) ─ fixpoint (80µs) ─ bdd.ops (30µs)
    ///                └ fixpoint (10µs)
    /// ```
    fn tree() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 3,
                parent: Some(2),
                kind: "bdd.ops".into(),
                dur_us: 30.0,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                kind: "fixpoint".into(),
                dur_us: 80.0,
            },
            SpanRecord {
                id: 4,
                parent: Some(1),
                kind: "fixpoint".into(),
                dur_us: 10.0,
            },
            SpanRecord {
                id: 1,
                parent: None,
                kind: "solve".into(),
                dur_us: 100.0,
            },
        ]
    }

    #[test]
    fn aggregate_attributes_self_time_on_three_deep_tree() {
        let aggs = aggregate_spans(&tree());
        let get = |label: &str| aggs.iter().find(|a| a.label == label).unwrap();
        let solve = get("solve");
        assert_eq!(solve.calls, 1);
        assert_eq!(solve.total_us, 100.0);
        // 100 total − (80 + 10) children = 10 self.
        assert_eq!(solve.self_us, 10.0);
        let fixpoint = get("fixpoint");
        assert_eq!(fixpoint.calls, 2);
        assert_eq!(fixpoint.total_us, 90.0);
        // (80 − 30) + (10 − 0) = 60 self.
        assert_eq!(fixpoint.self_us, 60.0);
        let ops = get("bdd.ops");
        assert_eq!(ops.calls, 1);
        assert_eq!(ops.self_us, 30.0);
        // Hottest self-time first.
        assert_eq!(aggs[0].label, "fixpoint");
    }

    #[test]
    fn folded_stacks_follow_parent_chains() {
        let folded = folded_stacks(&tree());
        assert_eq!(
            folded,
            vec![
                ("solve".to_owned(), 10),
                ("solve;fixpoint".to_owned(), 60),
                ("solve;fixpoint;bdd.ops".to_owned(), 30),
            ]
        );
    }

    #[test]
    fn orphaned_span_roots_its_own_subtree() {
        // Parent id 99 never closed (fell out of the ring): the child
        // becomes a root and keeps its full self time.
        let records = vec![SpanRecord {
            id: 5,
            parent: Some(99),
            kind: "leaf".into(),
            dur_us: 7.0,
        }];
        assert_eq!(folded_stacks(&records), vec![("leaf".to_owned(), 7)]);
        let aggs = aggregate_spans(&records);
        assert_eq!(aggs[0].self_us, 7.0);
    }

    #[test]
    fn span_records_skip_one_shot_events() {
        let events = vec![
            Event {
                ts_us: 0,
                kind: "progress".into(),
                dur_us: None,
                span_id: None,
                parent_id: Some(1),
                fields: vec![],
            },
            Event {
                ts_us: 1,
                kind: "work".into(),
                dur_us: Some(5.0),
                span_id: Some(1),
                parent_id: None,
                fields: vec![],
            },
        ];
        let records = span_records(&events);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "work");
    }

    #[test]
    fn live_aggregator_flushes_folded_lines() {
        let path = std::env::temp_dir().join(format!(
            "kpt-obs-prof-{}-{:?}.folded",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_s = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        install(path_s);
        record_closed("a;b", 10.6);
        record_closed("a;b", 2.0);
        record_closed("a", 4.0);
        flush_profile();
        disable_profile();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("a;b 13\n"), "rounded self-µs sum: {text}");
        assert!(text.contains("a 4\n"), "{text}");
        let _ = std::fs::remove_file(&path);
        // Detach so later tests in the process don't keep appending.
        state().lock().unwrap().path = None;
    }
}
