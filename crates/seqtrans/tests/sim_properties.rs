//! Property tests for the protocol simulators: safety, completion under
//! fair channels, determinism, and cross-protocol agreement on random
//! inputs and fault models.

use kpt_seqtrans::altbit::{abp_config, run_altbit};
use kpt_seqtrans::sim::{run_standard, SimConfig};
use kpt_seqtrans::stenning::{run_stenning, StenningPolicy};
use kpt_testkit::{check, Rng};

fn input(rng: &mut Rng) -> Vec<u8> {
    let n = rng.below(40) as usize;
    (0..n).map(|_| rng.below(4) as u8).collect()
}

#[test]
fn standard_always_delivers_exactly_x() {
    check("standard_always_delivers_exactly_x", 64, |rng| {
        let x = input(rng);
        let rate = rng.gen_range(0..60) as f64 / 100.0;
        let seed = rng.next_u64();
        let cfg = if rate == 0.0 {
            SimConfig::reliable(x.clone())
        } else {
            SimConfig::faulty(x.clone(), rate, seed)
        };
        let r = run_standard(&cfg);
        assert!(r.completed, "{r:?}");
        assert_eq!(r.delivered, x);
    });
}

#[test]
fn all_protocols_agree_under_identical_faults() {
    check("all_protocols_agree_under_identical_faults", 64, |rng| {
        let x = input(rng);
        let seed = rng.next_u64();
        let cfg = SimConfig::faulty(x.clone(), 0.3, seed);
        let a = run_standard(&cfg);
        let b = run_altbit(&abp_config(x.clone(), 0.3, seed));
        let c = run_stenning(&cfg, StenningPolicy::default());
        for r in [&a, &b, &c] {
            assert!(r.completed);
            assert_eq!(&r.delivered, &x);
        }
    });
}

#[test]
fn determinism_is_exact() {
    check("determinism_is_exact", 64, |rng| {
        let x = input(rng);
        let rate = rng.gen_range(0..50) as f64 / 100.0;
        let seed = rng.next_u64();
        let cfg = if rate == 0.0 {
            SimConfig::reliable(x)
        } else {
            SimConfig::faulty(x, rate, seed)
        };
        assert_eq!(run_standard(&cfg), run_standard(&cfg));
        assert_eq!(
            run_stenning(&cfg, StenningPolicy::default()),
            run_stenning(&cfg, StenningPolicy::default())
        );
    });
}

#[test]
fn apriori_prefix_never_hurts() {
    check("apriori_prefix_never_hurts", 64, |rng| {
        let n = rng.gen_range(1..30) as usize;
        let x: Vec<u8> = (0..n).map(|_| rng.below(3) as u8).collect();
        let prefix = rng.below(5) as usize;
        let base = run_standard(&SimConfig::reliable(x.clone()));
        let mut cfg = SimConfig::reliable(x.clone());
        cfg.apriori_prefix = prefix;
        let ap = run_standard(&cfg);
        assert!(ap.completed);
        assert_eq!(&ap.delivered, &x);
        // Knowing a prefix can only reduce (or preserve) data messages.
        assert!(ap.data_sent <= base.data_sent);
        if prefix >= x.len() {
            assert_eq!(ap.data_sent, 0);
        }
    });
}

#[test]
fn message_counts_scale_with_length() {
    check("message_counts_scale_with_length", 64, |rng| {
        // Data messages are at least one per element, and the floor is
        // achieved by Stenning on a reliable channel.
        let n = rng.gen_range(1..30) as usize;
        let seed = rng.next_u64();
        let x: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let r = run_stenning(&SimConfig::reliable(x.clone()), StenningPolicy::default());
        assert_eq!(r.data_sent, n as u64);
        let f = run_standard(&SimConfig::faulty(x, 0.2, seed));
        assert!(f.data_sent >= n as u64);
    });
}
