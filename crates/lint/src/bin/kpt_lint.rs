//! `kpt_lint` — run the static analyzer over in-tree models or `.kpt`
//! files.
//!
//! Usage: `kpt_lint [--json] [--no-symbolic] [NAME | FILE.kpt ...]`
//!
//! With no arguments every registered model is linted. An argument that
//! names an existing file (or ends in `.kpt`) is read and linted through
//! [`kpt_lint::lint_source`] — the same entry point kpt-server's `lint`
//! request uses — with parse errors rendered as caret diagnostics against
//! the source. Other arguments select registry models by name. `--json`
//! prints one JSON array of lint reports instead of the human summary;
//! `--no-symbolic` restricts the run to the declaration and view passes.
//!
//! The exit code encodes the expectation baked into the registry: the
//! healthy models must be clean and Figure 1 must carry exactly its
//! eq. (25) circularity warning (`KPT009`). Any other finding — or a
//! missing expected one — exits nonzero, which is what CI asserts. For
//! file arguments (no baked-in expectation) the run fails on parse
//! errors and error-severity findings; warnings are reported but pass.

use std::process::ExitCode;

use kpt_lint::{lint_program_with, lint_source, LintOptions, LintReport};
use kpt_seqtrans::{figure3_kbp, ModelOptions, StandardModel};
use kpt_unity::Program;

struct Case {
    name: &'static str,
    program: Program,
    /// The exact diagnostic codes this model is expected to produce.
    expected: &'static [&'static str],
}

fn registry() -> Vec<Case> {
    let model = StandardModel::build(2, 2, ModelOptions::default()).expect("standard model builds");
    let mut cases = vec![
        // Figure 1 is the paper's no-solution counterexample; the linter
        // must flag its knowledge circularity and nothing else.
        Case {
            name: "figure1",
            program: kpt_core::figure1()
                .expect("figure1 builds")
                .program()
                .clone(),
            expected: &["KPT009"],
        },
        Case {
            name: "figure2-weak",
            program: kpt_core::figure2("~y")
                .expect("figure2 builds")
                .program()
                .clone(),
            expected: &[],
        },
        Case {
            name: "figure2-strong",
            program: kpt_core::figure2("~y /\\ x")
                .expect("figure2 builds")
                .program()
                .clone(),
            expected: &[],
        },
        Case {
            name: "muddy-children-2",
            program: kpt_core::muddy_children_n(2)
                .expect("muddy children builds")
                .program()
                .clone(),
            expected: &[],
        },
        Case {
            name: "muddy-children-2-memory",
            program: kpt_core::muddy_children_with_memory_n(2)
                .expect("muddy children builds")
                .program()
                .clone(),
            expected: &[],
        },
        Case {
            name: "seqtrans-fig3-2x2",
            program: figure3_kbp(&model)
                .expect("figure 3 KBP builds")
                .program()
                .clone(),
            expected: &[],
        },
        Case {
            name: "seqtrans-std-2x2",
            program: model.program().clone(),
            expected: &[],
        },
        Case {
            name: "bdd-escape",
            program: escape_hatch_program(),
            expected: &[],
        },
    ];
    // The scenario zoo: textual `.kpt` models, each with its lint verdict
    // baked in next to the source (see `kpt_core::zoo`).
    for e in kpt_core::zoo().expect("zoo sources parse") {
        cases.push(Case {
            name: e.name,
            program: e.kbp.program().clone(),
            expected: e.expected_lint,
        });
    }
    cases
}

/// The 159-free-state instance from the symbolic-backend report: too large
/// for the exhaustive solver's subset mask, routine for the BDD engine —
/// and for the linter, whose symbolic pass runs on exactly this scale.
fn escape_hatch_program() -> Program {
    use kpt_state::StateSpace;
    use kpt_unity::Statement;
    let space = StateSpace::builder()
        .nat_var("i", 80)
        .unwrap()
        .bool_var("done")
        .unwrap()
        .build()
        .unwrap();
    Program::builder("bdd-escape", &space)
        .init_str("i = 0 && !done")
        .unwrap()
        .process("P", ["i"])
        .unwrap()
        .statement(
            Statement::new("inc")
                .guard_str("i < 79")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("finish")
                .guard_str("K{P}(i >= 40)")
                .unwrap()
                .assign_str("done", "1")
                .unwrap(),
        )
        .build()
        .unwrap()
}

fn print_human(case: &Case, report: &LintReport, ok: bool) {
    let verdict = if ok { "ok" } else { "UNEXPECTED" };
    println!(
        "== {} ({} finding{}, {}) ==",
        case.name,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        verdict
    );
    if report.diagnostics.is_empty() {
        println!("   clean");
    }
    for d in &report.diagnostics {
        println!("   {d}");
    }
    if !ok {
        println!("   expected codes: {:?}", case.expected);
    }
}

/// Is this CLI argument a `.kpt` file path rather than a registry name?
fn is_file_arg(arg: &str) -> bool {
    arg.ends_with(".kpt") || std::path::Path::new(arg).is_file()
}

/// Lint one on-disk `.kpt` file through the shared [`lint_source`] entry
/// point. Returns the report (when the source elaborates) and whether the
/// file passes: parse failures and error-severity findings fail, warnings
/// pass.
fn lint_file(path: &str, options: &LintOptions, json: bool) -> (Option<LintReport>, bool) {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return (None, false);
        }
    };
    match lint_source(&src, options) {
        Ok(report) => {
            let ok = report.error_count() == 0;
            if !json {
                println!(
                    "== {path} ({} finding{}, {}) ==",
                    report.diagnostics.len(),
                    if report.diagnostics.len() == 1 {
                        ""
                    } else {
                        "s"
                    },
                    if ok { "ok" } else { "errors" }
                );
                if report.diagnostics.is_empty() {
                    println!("   clean");
                }
                for d in &report.diagnostics {
                    println!("   {d}");
                }
            }
            (Some(report), ok)
        }
        Err(e) => {
            // The caret rendering points at the offending span in-line.
            eprintln!("{path}: {}", e.render(&src));
            (None, false)
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut options = LintOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--no-symbolic" => options.symbolic = false,
            "--help" | "-h" => {
                println!("usage: kpt_lint [--json] [--no-symbolic] [NAME | FILE.kpt ...]");
                return ExitCode::SUCCESS;
            }
            other if is_file_arg(other) => files.push(other.to_owned()),
            other => names.push(other.to_owned()),
        }
    }

    let cases: Vec<Case> = if names.is_empty() && !files.is_empty() {
        Vec::new()
    } else {
        registry()
            .into_iter()
            .filter(|c| names.is_empty() || names.iter().any(|n| n == c.name))
            .collect()
    };
    if cases.is_empty() && files.is_empty() {
        eprintln!("no model matches {names:?}");
        return ExitCode::FAILURE;
    }

    let mut all_ok = true;
    let mut reports = Vec::new();
    for path in &files {
        let (report, ok) = lint_file(path, &options, json);
        all_ok &= ok;
        if let Some(report) = report {
            reports.push(report);
        }
    }
    for case in &cases {
        let report = lint_program_with(&case.program, &options);
        let codes: Vec<&str> = report.codes().iter().map(|c| c.code()).collect();
        // Without the symbolic pass the symbolic-only expectations (KPT007
        // onwards) cannot fire; don't hold the run to them.
        let expected: Vec<&str> = case
            .expected
            .iter()
            .copied()
            .filter(|c| report.symbolic_ran || *c < "KPT007")
            .collect();
        let ok = codes == expected;
        all_ok &= ok;
        if !json {
            print_human(case, &report, ok);
        }
        reports.push(report);
    }

    if json {
        let items: Vec<String> = reports.iter().map(LintReport::to_json).collect();
        println!("[{}]", items.join(","));
    } else {
        let total = cases.len() + files.len();
        println!(
            "{} model{} linted; {}",
            total,
            if total == 1 { "" } else { "s" },
            if all_ok {
                "all findings as expected"
            } else {
                "UNEXPECTED findings present"
            }
        );
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
