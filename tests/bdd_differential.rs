//! Differential suite for the symbolic (ROBDD) backend: every operation
//! the explicit bitset backend provides — boolean algebra, quantifiers,
//! `sp`/`wp`, `SI` fixpoints, knowledge, KBP solving — is replayed
//! symbolically and compared bit-exactly, on randomized cases and on
//! every paper figure. Ends with the escape-hatch acceptance case: a KBP
//! instance `solve_exhaustive` rejects with `SearchTooLarge` that the
//! symbolic solver solves and verifies.

mod common;

use std::sync::Arc;

use common::{models, pred_from_mask, program_spec};
use knowledge_pt::core::CoreError;
use knowledge_pt::prelude::*;
use knowledge_pt::seqtrans::{validate_61_62_symbolic, SymbolicStandard};
use kpt_testkit::{check, Rng};

/// A random space with 2–3 variables of domain 2–3, its BDD counterpart,
/// and a pair of random predicates on both backends.
#[allow(clippy::type_complexity)]
fn random_setup(
    rng: &mut Rng,
) -> (
    Arc<StateSpace>,
    Arc<BddSpace>,
    (Predicate, SymbolicPredicate),
    (Predicate, SymbolicPredicate),
) {
    let spec = program_spec(rng);
    let space = spec.space();
    let bdd = BddSpace::new(&space);
    let p = pred_from_mask(&space, rng.next_u64());
    let q = pred_from_mask(&space, rng.next_u64());
    let sp = SymbolicPredicate::from_explicit(&bdd, &p);
    let sq = SymbolicPredicate::from_explicit(&bdd, &q);
    (space, bdd, (p, sp), (q, sq))
}

fn random_var_set(rng: &mut Rng, space: &Arc<StateSpace>) -> VarSet {
    let mask = rng.next_u64();
    space
        .all_vars()
        .iter()
        .filter(|v| mask >> v.index() & 1 == 1)
        .collect()
}

// ---------------------------------------------------------------------
// Boolean algebra: and / or / not / implies / iff.
// ---------------------------------------------------------------------

#[test]
fn random_boolean_ops_agree() {
    check("bdd_boolean_ops", 100, |rng| {
        let (space, _, (p, sp), (q, sq)) = random_setup(rng);
        assert_eq!(sp.and(&sq).to_explicit(), p.and(&q));
        assert_eq!(sp.or(&sq).to_explicit(), p.or(&q));
        assert_eq!(sp.negate().to_explicit(), p.negate());
        assert_eq!(sp.implies(&sq).to_explicit(), p.implies(&q));
        assert_eq!(sp.iff(&sq).to_explicit(), p.iff(&q));
        assert_eq!(sp.count(), p.count());
        assert_eq!(sp.is_false(), p.is_false());
        assert_eq!(sp.everywhere(), p.everywhere());
        assert_eq!(sp.entails(&sq), p.entails(&q));
        for s in 0..space.num_states() {
            assert_eq!(sp.holds(s), p.holds(s));
        }
    });
}

// ---------------------------------------------------------------------
// Quantifiers: exists / forall over random variable sets.
// ---------------------------------------------------------------------

#[test]
fn random_quantifiers_agree() {
    check("bdd_quantifiers", 100, |rng| {
        let (space, _, (p, sp), _) = random_setup(rng);
        let vars = random_var_set(rng, &space);
        assert_eq!(sp.exists_vars(vars).to_explicit(), exists_set(&p, vars));
        assert_eq!(sp.forall_vars(vars).to_explicit(), forall_set(&p, vars));
    });
}

// ---------------------------------------------------------------------
// Transformers: sp / wp of every statement of a random program.
// ---------------------------------------------------------------------

#[test]
fn random_sp_wp_agree() {
    check("bdd_sp_wp", 100, |rng| {
        let spec = program_spec(rng);
        let space = spec.space();
        let bdd = BddSpace::new(&space);
        let compiled = spec.compile();
        let p = pred_from_mask(&space, rng.next_u64());
        let sp = SymbolicPredicate::from_explicit(&bdd, &p);
        for det in compiled.transitions() {
            let sym = SymbolicTransition::from_det(&bdd, det);
            assert_eq!(sym.sp(&sp).to_explicit(), det.sp(&p));
            assert_eq!(sym.wp(&sp).to_explicit(), det.wp(&p));
        }
    });
}

// ---------------------------------------------------------------------
// SI fixpoints of random programs.
// ---------------------------------------------------------------------

#[test]
fn random_strongest_invariants_agree() {
    check("bdd_si", 100, |rng| {
        let spec = program_spec(rng);
        let space = spec.space();
        let bdd = BddSpace::new(&space);
        let compiled = spec.compile();
        let transitions: Vec<SymbolicTransition> = compiled
            .transitions()
            .iter()
            .map(|t| SymbolicTransition::from_det(&bdd, t))
            .collect();
        let init = SymbolicPredicate::from_explicit(&bdd, compiled.init());
        let si = symbolic_strongest_invariant(&transitions, &init);
        assert_eq!(si.to_explicit(), *compiled.si());
    });
}

// ---------------------------------------------------------------------
// Knowledge: K_V over random views and SIs.
// ---------------------------------------------------------------------

#[test]
fn random_knowledge_agrees() {
    check("bdd_knowledge", 100, |rng| {
        let (space, bdd, (p, sp), _) = random_setup(rng);
        let si = pred_from_mask(&space, rng.next_u64() | 1);
        let ssi = SymbolicPredicate::from_explicit(&bdd, &si);
        let views = vec![("P".to_owned(), random_var_set(rng, &space))];
        let explicit = KnowledgeOperator::with_si(&space, views.clone(), si.clone()).unwrap();
        let symbolic = SymbolicKnowledge::with_si(&bdd, views, &ssi);
        assert_eq!(
            symbolic.knows("P", &sp).unwrap().to_explicit(),
            explicit.knows("P", &p).unwrap()
        );
    });
}

// ---------------------------------------------------------------------
// KBP iteration on random knowledge-free programs (eq. 25 degenerates to
// one SI computation, so iterate must agree immediately).
// ---------------------------------------------------------------------

#[test]
fn random_kbp_iteration_agrees() {
    check("bdd_kbp_iterate", 100, |rng| {
        let spec = program_spec(rng);
        let program = spec.build_program();
        let explicit = Kbp::new(program.clone());
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let x = pred_from_mask(program.space(), rng.next_u64() | 1);
        let sx = SymbolicPredicate::from_explicit(symbolic.space(), &x);
        assert_eq!(
            symbolic.iterate(&sx).unwrap().to_explicit(),
            explicit.iterate(&x).unwrap()
        );
        assert_eq!(
            symbolic.is_solution(&sx).unwrap(),
            explicit.is_solution(&x).unwrap()
        );
    });
}

// ---------------------------------------------------------------------
// Figure 1: no solution; the iteration cycles with period two on both
// backends, and every candidate is refuted symbolically too.
// ---------------------------------------------------------------------

#[test]
fn figure1_agrees_across_backends() {
    let kbp = figure1().unwrap();
    let sym = SymbolicKbp::from_program(kbp.program()).unwrap();
    match (
        kbp.solve_iterative(32).unwrap(),
        sym.solve_iterative(32).unwrap(),
    ) {
        (IterativeOutcome::Cycle { period: ep, .. }, SymbolicOutcome::Cycle { period: sp, .. }) => {
            assert_eq!(ep, 2);
            assert_eq!(sp, 2);
        }
        other => panic!("expected cycles on both backends, got {other:?}"),
    }
    // All 8 candidates of the exhaustive search are refuted symbolically.
    let space = kbp.program().space().clone();
    let init = kbp.program().init().clone();
    let free: Vec<u64> = init.negate().iter().collect();
    for mask in 0u64..8 {
        let candidate = Predicate::from_indices(
            &space,
            init.iter().chain(
                free.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &s)| s),
            ),
        );
        let sc = SymbolicPredicate::from_explicit(sym.space(), &candidate);
        assert!(!sym.is_solution(&sc).unwrap());
        assert_eq!(
            sym.is_solution(&sc).unwrap(),
            kbp.is_solution(&candidate).unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Figure 2: the unique solutions per init, and the non-monotonicity,
// reproduce symbolically.
// ---------------------------------------------------------------------

#[test]
fn figure2_non_monotonicity_reproduces_symbolically() {
    let mut solutions = Vec::new();
    for init in ["~y", "~y /\\ x"] {
        let kbp = figure2(init).unwrap();
        let explicit = kbp
            .solve_exhaustive(16)
            .unwrap()
            .strongest()
            .unwrap()
            .clone();
        let sym = SymbolicKbp::from_program(kbp.program()).unwrap();
        let outcome = sym.solve_iterative(32).unwrap();
        let solution = outcome.solution().expect("figure 2 iteration converges");
        assert_eq!(solution.to_explicit(), explicit, "init = {init}");
        assert!(sym.is_solution(solution).unwrap());
        solutions.push(solution.clone());
    }
    // Strengthening init weakened the solution: x does not entail ¬y.
    // (The two solutions live in different BddSpaces — one per KBP — so
    // the comparison goes through the shared explicit space.)
    let (weak, strong) = (&solutions[0], &solutions[1]);
    assert!(
        !strong.to_explicit().entails(&weak.to_explicit()),
        "SI is not monotonic in init — and the symbolic backend sees it"
    );
}

// ---------------------------------------------------------------------
// §6 sequence transmission: invariants (61)–(62) of the standard model
// agree row-by-row across backends (Figures 3/4).
// ---------------------------------------------------------------------

#[test]
fn seqtrans_61_62_agree_across_backends() {
    let (model, compiled) = models::standard_2_2();
    let sym = SymbolicStandard::from_compiled(model, compiled);
    assert_eq!(&sym.si().to_explicit(), compiled.si());
    let symbolic = validate_61_62_symbolic(model, &sym);
    assert!(symbolic.all_hold(), "failures: {:?}", symbolic.failures());
    let explicit = knowledge_pt::seqtrans::knowledge_preds::validate_soundness(model, compiled);
    for ob in &symbolic.obligations {
        let row = explicit
            .obligations
            .iter()
            .find(|e| e.id == ob.id)
            .expect("explicit report carries the same obligation id");
        assert_eq!(row.holds, ob.holds, "{} disagrees across backends", ob.id);
    }
}

// ---------------------------------------------------------------------
// Engine configurations: aggressive GC and low-trigger sifting must land
// on results bit-identical to the serial PR-4 engine (GC and reordering
// disabled) and to the explicit backend, op by op.
// ---------------------------------------------------------------------

/// The serial PR-4 engine plus every optimisation toggle, with thresholds
/// low enough that the tiny random spaces actually sweep and sift.
fn engine_configs() -> Vec<(&'static str, BddConfig)> {
    let gc = GcPolicy::OnGrowth {
        min_nodes: 1,
        dead_percent: 0,
    };
    let sift = ReorderPolicy::SiftOnGrowth {
        trigger_nodes: 64,
        max_growth_percent: 20,
    };
    vec![
        ("serial", BddConfig::serial()),
        (
            "gc",
            BddConfig {
                gc,
                ..BddConfig::serial()
            },
        ),
        (
            "sift",
            BddConfig {
                reorder: sift,
                ..BddConfig::serial()
            },
        ),
        ("gc+sift", BddConfig { gc, reorder: sift }),
    ]
}

#[test]
fn random_engine_configs_agree() {
    check("bdd_engine_configs", 100, |rng| {
        let spec = program_spec(rng);
        let space = spec.space();
        let compiled = spec.compile();
        let p = pred_from_mask(&space, rng.next_u64());
        let q = pred_from_mask(&space, rng.next_u64());
        let vars = random_var_set(rng, &space);
        let explicit_si = compiled.si();
        for (name, config) in engine_configs() {
            let bdd = BddSpace::with_config(&space, config);
            let sp = SymbolicPredicate::from_explicit(&bdd, &p);
            let sq = SymbolicPredicate::from_explicit(&bdd, &q);
            assert_eq!(sp.and(&sq).to_explicit(), p.and(&q), "{name} and");
            assert_eq!(sp.negate().to_explicit(), p.negate(), "{name} not");
            assert_eq!(
                sp.exists_vars(vars).to_explicit(),
                exists_set(&p, vars),
                "{name} exists"
            );
            assert_eq!(
                sp.forall_vars(vars).to_explicit(),
                forall_set(&p, vars),
                "{name} forall"
            );
            let transitions: Vec<SymbolicTransition> = compiled
                .transitions()
                .iter()
                .map(|t| SymbolicTransition::from_det(&bdd, t))
                .collect();
            for (sym, det) in transitions.iter().zip(compiled.transitions()) {
                assert_eq!(sym.sp(&sp).to_explicit(), det.sp(&p), "{name} sp");
                assert_eq!(sym.wp(&sp).to_explicit(), det.wp(&p), "{name} wp");
            }
            let init = SymbolicPredicate::from_explicit(&bdd, compiled.init());
            let si = symbolic_strongest_invariant(&transitions, &init);
            assert_eq!(si.to_explicit(), *explicit_si, "{name} SI");
        }
    });
}

// ---------------------------------------------------------------------
// Partitioned relations with early quantification: the builder's
// conjunctive partition must land on the same canonical roots as its own
// monolithic materialisation (pinning the `and_exists` kernel against
// conjoin-then-quantify) and the same explicit predicates as the bitset
// backend, for sp, wp, and SI.
// ---------------------------------------------------------------------

#[test]
fn random_partitioned_relations_agree() {
    check("bdd_partitioned", 100, |rng| {
        let spec = program_spec(rng);
        let space = spec.space();
        let bdd = BddSpace::new(&space);
        let nvars = spec.domains.len();
        let mut parted = Vec::new();
        let mut dets = Vec::new();
        for &(gmask, var, kind) in &spec.statements {
            let guard = pred_from_mask(&space, gmask);
            let v = space.var(&format!("v{var}")).unwrap();
            let dom = space.domain(v).size();
            let w = space.var(&format!("v{}", (var + 1) % nvars)).unwrap();
            let sym_guard = SymbolicPredicate::from_explicit(&bdd, &guard);
            let builder = SymbolicTransition::builder(&bdd).guard(&sym_guard);
            let built = match kind {
                common::UpdateKind::Const(c) => builder.assign(v, &[], move |_| c % dom).build(),
                common::UpdateKind::Incr => {
                    builder.assign(v, &[v], move |x| (x[0] + 1) % dom).build()
                }
                common::UpdateKind::Copy(_) => builder.assign(v, &[w], move |x| x[0] % dom).build(),
            }
            .unwrap();
            assert!(built.num_parts() > 1, "builder should partition");
            let g2 = guard.clone();
            let sp2 = Arc::clone(&space);
            let det = knowledge_pt::transformers::DetTransition::from_fn(&space, move |s| {
                if !g2.holds(s) {
                    return s;
                }
                let val = match kind {
                    common::UpdateKind::Const(c) => c % dom,
                    common::UpdateKind::Incr => (sp2.value(s, v) + 1) % dom,
                    common::UpdateKind::Copy(_) => sp2.value(s, w) % dom,
                };
                sp2.with_value(s, v, val)
            });
            parted.push(built);
            dets.push(det);
        }
        let p = pred_from_mask(&space, rng.next_u64());
        let sp = SymbolicPredicate::from_explicit(&bdd, &p);
        for (built, det) in parted.iter().zip(&dets) {
            let mono = built.monolithic();
            // Canonical-root equality: the early-quantified partition and
            // the monolithic product compute the very same BDD.
            assert_eq!(built.sp(&sp), mono.sp(&sp));
            assert_eq!(built.wp(&sp), mono.wp(&sp));
            assert_eq!(built.sp(&sp).to_explicit(), det.sp(&p));
            assert_eq!(built.wp(&sp).to_explicit(), det.wp(&p));
        }
        let init = pred_from_mask(&space, rng.next_u64() | 1);
        let sinit = SymbolicPredicate::from_explicit(&bdd, &init);
        let si = symbolic_strongest_invariant(&parted, &sinit);
        let (esi, _) = knowledge_pt::transformers::sst_frontier_with_stats(&dets, &init);
        assert_eq!(si.to_explicit(), esi);
    });
}

// ---------------------------------------------------------------------
// Worst-case variable order: ⋀ (aᵢ ↔ bᵢ) with the a and b blocks
// separated is the classic exponential family. A reachability fixpoint
// that converges on it exhausts a node budget under the fixed declared
// order, and passes the same budget — with the same answer — once
// dynamic sifting is enabled.
// ---------------------------------------------------------------------

#[test]
fn sifting_passes_a_node_budget_the_fixed_order_exhausts() {
    const N: usize = 12; // pairs; 24 booleans, 2^24 states
    const BUDGET: usize = 3_000;
    let mut b = StateSpace::builder();
    for i in 0..N {
        b = b.bool_var(&format!("a{i}")).unwrap();
    }
    for i in 0..N {
        b = b.bool_var(&format!("b{i}")).unwrap();
    }
    let space = b.build().unwrap();

    let run = |config: BddConfig, budget: usize| {
        let bdd = BddSpace::with_config(&space, config);
        let transitions: Vec<SymbolicTransition> = (0..N)
            .map(|i| {
                let a = space.var(&format!("a{i}")).unwrap();
                let bv = space.var(&format!("b{i}")).unwrap();
                let ga = SymbolicPredicate::var_eq(&bdd, a, 0);
                let gb = SymbolicPredicate::var_eq(&bdd, bv, 0);
                SymbolicTransition::builder(&bdd)
                    .guard(&ga.and(&gb))
                    .assign(a, &[], |_| 1)
                    .assign(bv, &[], |_| 1)
                    .build()
                    .unwrap()
            })
            .collect();
        let init = (0..N).fold(SymbolicPredicate::tt(&bdd), |acc, i| {
            let a = space.var(&format!("a{i}")).unwrap();
            let bv = space.var(&format!("b{i}")).unwrap();
            acc.and(&SymbolicPredicate::var_eq(&bdd, a, 0))
                .and(&SymbolicPredicate::var_eq(&bdd, bv, 0))
        });
        let out = symbolic_sst_bounded(&init, &transitions, budget);
        (bdd, out)
    };

    // The serial engine blows past the budget on the way to the fixpoint.
    let (_, serial) = run(BddConfig::serial(), BUDGET);
    let err = serial.expect_err("fixed order must exhaust the budget");
    assert!(matches!(err, BddError::NodeBudgetExceeded { .. }), "{err}");

    // Sifting repairs the order mid-fixpoint and finishes inside it.
    let sift_config = BddConfig {
        reorder: ReorderPolicy::SiftOnGrowth {
            trigger_nodes: 512,
            max_growth_percent: 20,
        },
        ..BddConfig::serial()
    };
    let (sifted_space, sifted) = run(sift_config, BUDGET);
    let (si, _) = sifted.expect("sifting must fit the budget");
    assert!(sifted_space.reorder_stats().runs > 0, "sifting must run");
    // Exactly the pair-equal states are reachable: 2^N of them.
    assert_eq!(si.count(), 1 << N);

    // Bit-identical to the serial engine: rerun serial without the budget
    // and compare membership on a state sample (the space is too large
    // for a full explicit materialisation to be worth it here).
    let (_, unbounded) = run(BddConfig::serial(), usize::MAX);
    let (serial_si, _) = unbounded.expect("unbounded serial run converges");
    assert_eq!(serial_si.count(), si.count());
    let mut rng = Rng::seed_from_u64(0xbdd5117);
    for _ in 0..1_000 {
        let s = rng.below(space.num_states());
        assert_eq!(
            serial_si.holds(s),
            si.holds(s),
            "membership diverges at {s}"
        );
    }
}

// ---------------------------------------------------------------------
// Acceptance: the symbolic backend solves a KBP instance the explicit
// exhaustive solver rejects with SearchTooLarge (≥ 64 free states).
// ---------------------------------------------------------------------

#[test]
fn symbolic_solver_handles_search_too_large_instances() {
    let space = StateSpace::builder()
        .nat_var("i", 80)
        .unwrap()
        .bool_var("done")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("escape", &space)
        .init_str("i = 0 && !done")
        .unwrap()
        .process("P", ["i"])
        .unwrap()
        .statement(
            Statement::new("inc")
                .guard_str("i < 79")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("finish")
                .guard_str("K{P}(i >= 40)")
                .unwrap()
                .assign_str("done", "1")
                .unwrap(),
        )
        .build()
        .unwrap();

    let explicit = Kbp::new(program.clone());
    let free = explicit.program().init().negate().count();
    assert!(
        free >= 64,
        "the instance must exceed the 64-bit subset mask"
    );
    match explicit.solve_exhaustive(u64::MAX) {
        Err(CoreError::SearchTooLarge { free_states, .. }) => assert_eq!(free_states, free),
        other => panic!("expected SearchTooLarge, got {other:?}"),
    }

    let sym = SymbolicKbp::from_program(&program).unwrap();
    match sym.solve_iterative(64).unwrap() {
        SymbolicOutcome::Converged { solution, .. } => {
            assert!(sym.is_solution(&solution).unwrap());
            // done=0 at every i (80 states) plus done=1 once the
            // knowledge guard opens at i ≥ 40 (40 states).
            assert_eq!(solution.count(), 120);
        }
        other => panic!("expected convergence, got {other:?}"),
    }
}
