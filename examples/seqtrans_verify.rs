//! Experiments E6 + E7 — the §6 sequence-transmission study, end to end:
//!
//! 1. model-check the specification (34)/(35) on the bounded Figure-4
//!    standard protocol;
//! 2. validate the proposed knowledge predicates (50)/(51) — the §6.3
//!    obligations and the Proposition-4.5 equalities;
//! 3. replay the paper's §6.2 liveness derivation (36)–(49) through the
//!    certificate kernel, discharging the (Kbp-1)/(Kbp-2) assumptions;
//! 4. check that the standard protocol *instantiates* the Figure-3 KBP;
//! 5. demonstrate that liveness *fails* if the channel-fairness coupling
//!    is broken (why the paper assumes (St-3)/(St-4)).
//!
//! Run with: `cargo run --release --example seqtrans_verify`

use knowledge_pt::seqtrans::knowledge_preds::{validate_completeness, validate_soundness};
use knowledge_pt::seqtrans::proof_replay::{replay_liveness_for_k, replay_safety};
use knowledge_pt::seqtrans::{figure3_kbp, ModelOptions, StandardModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, l) = (2, 2);
    let model = StandardModel::build(a, l, ModelOptions::default())?;
    let compiled = model.compile()?;
    println!(
        "bounded instance: |A| = {a}, |x| = {l}  ({} states, {} statements, SI = {} states)\n",
        model.space().num_states(),
        compiled.num_statements(),
        compiled.si().count()
    );

    // 1. Specification.
    println!("== specification (34)/(35), model-checked ==");
    println!(
        "invariant w ⊑ x   (34): {}",
        compiled.invariant(&model.w_prefix_of_x())
    );
    println!(
        "invariant |w| = j (36): {}",
        compiled.invariant(&model.w_len_eq_j())
    );
    for k in 0..l as u64 {
        println!(
            "|w| = {k} ↦ |w| > {k} (35): {}",
            compiled.leads_to_holds(&model.j_eq(k), &model.j_gt(k))
        );
    }

    // 2. Knowledge-predicate validation.
    println!("\n== knowledge predicates (50)/(51) ==");
    let sound = validate_soundness(&model, &compiled);
    println!(
        "soundness obligations ((54),(55),(56),(61),(62),cand⇒K,Kbp-3/4): {} checked, all hold: {}",
        sound.obligations.len(),
        sound.all_hold()
    );
    let complete = validate_completeness(&model, &compiled);
    println!(
        "completeness (candidates = real K on SI, Prop. 4.5 analogue):   {} checked, all hold: {}",
        complete.obligations.len(),
        complete.all_hold()
    );

    // 3. Proof replay.
    println!("\n== §6.2 derivation replayed through the proof kernel ==");
    let safety = replay_safety(&model, &compiled)?;
    println!(
        "safety chain: {}",
        safety
            .steps
            .iter()
            .map(|s| s.equation.as_str())
            .collect::<Vec<_>>()
            .join("  ")
    );
    for k in 0..l as u64 {
        let replay = replay_liveness_for_k(&model, &compiled, k)?;
        println!(
            "liveness k={k}: replayed {}; assumptions discharged: {}",
            replay
                .steps
                .iter()
                .map(|s| s.equation.as_str())
                .collect::<Vec<_>>()
                .join("  "),
            replay.fully_discharged()
        );
    }

    // 4. Instantiation of the Figure-3 KBP.
    println!("\n== does the standard protocol instantiate the Figure-3 KBP? ==");
    let kbp = figure3_kbp(&model)?;
    println!(
        "standard SI solves the KBP fixpoint (25): {}",
        kbp.is_solution(compiled.si())?
    );

    // 5. Why the channel liveness assumptions are necessary.
    println!("\n== adversarial channel (fairness coupling broken) ==");
    let adv = StandardModel::build(
        a,
        l,
        ModelOptions {
            apriori_first: None,
            slot_loss: true,
        },
    )?;
    let adv_c = adv.compile()?;
    println!(
        "safety still holds: {}",
        adv_c.invariant(&adv.w_prefix_of_x())
    );
    let r = adv_c.leads_to(&adv.j_eq(0), &adv.j_gt(0));
    println!("liveness now FAILS: holds = {}", r.holds());
    if let Some(ce) = r.counterexample() {
        println!(
            "  the model checker exhibits a fair trap of {} states — the adversarial\n  \
             schedule the paper's (St-3)/(St-4) assumptions exclude.",
            ce.trap.len()
        );
    }
    Ok(())
}
