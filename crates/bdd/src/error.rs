//! Errors of the symbolic backend.

use std::error::Error;
use std::fmt;

use kpt_logic::EvalError;
use kpt_state::SpaceError;

/// An error produced while building or solving with the symbolic backend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// A state-space level error (unknown variable, space mismatch, …).
    Space(SpaceError),
    /// A formula could not be evaluated symbolically (unknown identifier,
    /// type error, knowledge atom without knowledge semantics, …).
    Eval(EvalError),
    /// An assignment's support — the set of variables its right-hand side
    /// reads — spans too many value combinations to enumerate into a
    /// relation cube-by-cube.
    SupportTooLarge {
        /// The statement being translated.
        statement: String,
        /// Number of support value combinations required.
        combinations: u64,
        /// Enumeration limit.
        limit: u64,
    },
    /// A statement carries an opaque `update_with` closure (or an
    /// untranslatable shape) and the state space is too large for the
    /// state-by-state fallback translation.
    OpaqueUpdateTooLarge {
        /// The statement being translated.
        statement: String,
        /// Number of states the fallback would enumerate.
        states: u64,
        /// Enumeration limit.
        limit: u64,
    },
    /// A bounded symbolic fixpoint exceeded its live-node budget before
    /// converging (see `symbolic_sst_bounded`). The budget is checked at
    /// every round's safe point, *after* any configured garbage collection
    /// or reordering ran — so an engine whose policies keep the working set
    /// small can finish inside a budget a grow-only engine exhausts.
    NodeBudgetExceeded {
        /// Live internal nodes when the budget tripped.
        nodes: usize,
        /// The configured live-node budget.
        budget: usize,
        /// Frontier rounds completed before tripping.
        rounds: u64,
    },
    /// A guard-enabled state assigns a value outside the target variable's
    /// domain — the symbolic mirror of `UnityError::UpdateOutOfRange`.
    UpdateOutOfRange {
        /// Statement whose update misbehaved.
        statement: String,
        /// Target variable.
        var: String,
        /// Rendered offending pre-state.
        state: String,
        /// The out-of-range value.
        value: i64,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::Space(e) => write!(f, "state space error: {e}"),
            BddError::Eval(e) => write!(f, "formula evaluation error: {e}"),
            BddError::SupportTooLarge {
                statement,
                combinations,
                limit,
            } => write!(
                f,
                "statement `{statement}`: assignment support spans {combinations} \
                 value combinations, above the enumeration limit {limit}"
            ),
            BddError::OpaqueUpdateTooLarge {
                statement,
                states,
                limit,
            } => write!(
                f,
                "statement `{statement}`: opaque update needs a {states}-state \
                 explicit sweep, above the enumeration limit {limit}"
            ),
            BddError::NodeBudgetExceeded {
                nodes,
                budget,
                rounds,
            } => write!(
                f,
                "symbolic fixpoint exceeded its node budget after {rounds} \
                 rounds: {nodes} live nodes, budget {budget}"
            ),
            BddError::UpdateOutOfRange {
                statement,
                var,
                state,
                value,
            } => write!(
                f,
                "statement `{statement}` assigns {value} to `{var}`, \
                 outside its domain, in state {{{state}}}"
            ),
        }
    }
}

impl Error for BddError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BddError::Space(e) => Some(e),
            BddError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpaceError> for BddError {
    fn from(e: SpaceError) -> Self {
        BddError::Space(e)
    }
}

impl From<EvalError> for BddError {
    fn from(e: EvalError) -> Self {
        BddError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = BddError::UpdateOutOfRange {
            statement: "inc".into(),
            var: "i".into(),
            state: "i=3".into(),
            value: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("`inc`"));
        assert!(msg.contains("`i`"));
        assert!(msg.contains('4'));

        let e = BddError::SupportTooLarge {
            statement: "s".into(),
            combinations: 1 << 20,
            limit: 1 << 16,
        };
        assert!(e.to_string().contains("enumeration limit"));

        let e: BddError = EvalError::KnowledgeUnavailable.into();
        assert!(matches!(e, BddError::Eval(_)));
    }
}
