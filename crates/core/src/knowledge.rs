//! The knowledge predicate transformer `K_i` (eq. 13) and its theory
//! (eqs. 14–24), plus the group-knowledge extensions mentioned in §3
//! (everyone-knows `E_G`, common knowledge `C_G`, distributed knowledge
//! `D_G`).
//!
//! The paper's definition: a process knows a fact in a state if the fact
//! holds in every *possible* global state (given by `SI`) the process
//! cannot distinguish from it. Technically:
//!
//! ```text
//! K_i p  ≝  p ∧ (wcyl.vars_i.(SI ⇒ p) ∨ ¬SI)          (13)
//! ```
//!
//! — on reachable states this is `wcyl.vars_i.(SI ⇒ p)`; on unreachable
//! states it is (by convention) just `p`.

use std::sync::Arc;

use kpt_logic::{EvalError, KnowledgeFn};
use kpt_state::{Predicate, StateSpace, VarSet};
use kpt_transformers::{gfp, Transformer};
use kpt_unity::CompiledProgram;

use crate::context::KnowledgeContext;
use crate::error::CoreError;

/// The knowledge operator of eq. (13) for a fixed strongest invariant and a
/// set of process views.
///
/// Construct from a compiled program ([`KnowledgeOperator::for_program`]) —
/// which uses the program's own `SI` — or with an explicit candidate `SI`
/// ([`KnowledgeOperator::with_si`]), which is how the KBP solver evaluates
/// knowledge guards against candidate invariants (eq. 25).
///
/// # Examples
/// ```
/// use kpt_core::KnowledgeOperator;
/// use kpt_state::{Predicate, StateSpace};
/// use kpt_unity::{Program, Statement};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = StateSpace::builder().bool_var("a")?.bool_var("b")?.build()?;
/// let program = Program::builder("p", &space)
///     .init_str("~a /\\ ~b")?
///     .process("P", ["a"])?
///     // b is set together with a, but P sees only a:
///     .statement(Statement::new("s").guard_str("~a")?.assign_str("a", "1")?.assign_str("b", "1")?)
///     .build()?
///     .compile()?;
/// let k = KnowledgeOperator::for_program(&program);
/// let b = Predicate::var_is_true(&space, space.var("b")?);
/// // Seeing a=true tells P that b=true (they change together):
/// let a = Predicate::var_is_true(&space, space.var("a")?);
/// assert!(program.si().and(&a).entails(&k.knows("P", &b)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnowledgeOperator {
    ctx: Arc<KnowledgeContext>,
}

impl KnowledgeOperator {
    /// Build from a compiled program: views are its declared processes,
    /// `SI` is its strongest invariant.
    pub fn for_program(program: &CompiledProgram) -> Self {
        KnowledgeOperator {
            ctx: Arc::new(KnowledgeContext::for_program(program)),
        }
    }

    /// Build with an explicit (candidate) strongest invariant.
    ///
    /// # Errors
    /// [`CoreError::ViewOutsideSpace`] when a view names variables absent
    /// from `space` (see [`KnowledgeContext::new`]).
    pub fn with_si(
        space: &Arc<StateSpace>,
        views: Vec<(String, VarSet)>,
        si: Predicate,
    ) -> Result<Self, CoreError> {
        Ok(KnowledgeOperator {
            ctx: Arc::new(KnowledgeContext::new(space, views, si)?),
        })
    }

    /// Wrap an existing shared context.
    pub fn from_context(ctx: Arc<KnowledgeContext>) -> Self {
        KnowledgeOperator { ctx }
    }

    /// The shared evaluation context (caches `SI`, `¬SI`, sweep orders and
    /// memoized `K p` results).
    pub fn context(&self) -> &Arc<KnowledgeContext> {
        &self.ctx
    }

    /// The strongest invariant knowledge is evaluated against.
    pub fn si(&self) -> &Predicate {
        self.ctx.si()
    }

    /// The view of a named process.
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn view(&self, process: &str) -> Result<VarSet, EvalError> {
        self.ctx.view(process)
    }

    /// `K_i p` by eq. (13), for the view of a named process.
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn knows(&self, process: &str, p: &Predicate) -> Result<Predicate, EvalError> {
        self.ctx.knows(process, p)
    }

    /// `K p` by eq. (13) for an explicit view:
    /// `p ∧ (wcyl.V.(SI ⇒ p) ∨ ¬SI)`. Memoized in the context.
    #[must_use]
    pub fn knows_view(&self, view: VarSet, p: &Predicate) -> Predicate {
        self.ctx.knows_view(view, p)
    }

    /// `K_i p` for every declared view at once, evaluated in parallel on
    /// the pool workers and memoized in the shared context (see
    /// [`KnowledgeContext::knows_all`]). Guard compilation and the
    /// group-knowledge fixpoints are answered from the memo this fills.
    #[must_use]
    pub fn knows_all(&self, p: &Predicate) -> Vec<(String, Predicate)> {
        self.ctx.knows_all(p)
    }

    /// Everyone-in-`group` knows: `E_G p = (∀ i ∈ G :: K_i p)`. The
    /// per-process knowledge queries are evaluated as one parallel batch
    /// ([`KnowledgeContext::knows_batch`]); repeated applications inside
    /// the `C_G` fixpoint hit the shared memo.
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn everyone(&self, group: &[&str], p: &Predicate) -> Result<Predicate, EvalError> {
        let views: Vec<VarSet> = group
            .iter()
            .map(|proc| self.view(proc))
            .collect::<Result<_, _>>()?;
        let mut out = Predicate::tt(self.ctx.space());
        for k in self.ctx.knows_batch(&views, p) {
            out.and_assign(&k);
        }
        Ok(out)
    }

    /// Common knowledge `C_G p`: the greatest fixpoint of
    /// `X ↦ E_G(p ∧ X)` — everyone knows `p`, everyone knows that everyone
    /// knows, and so on (the §3 extension the paper notes "can easily be
    /// added").
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn common(&self, group: &[&str], p: &Predicate) -> Result<Predicate, EvalError> {
        let mut err = None;
        let result = gfp(self.ctx.space(), |x| {
            match self.everyone(group, &p.and(x)) {
                Ok(r) => r,
                Err(e) => {
                    err = Some(e);
                    Predicate::ff(self.ctx.space())
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(result
            .expect("E_G is monotonic, so the gfp iteration converges")
            .0)
    }

    /// Distributed knowledge `D_G p`: what the group would know by pooling
    /// views — eq. (13) evaluated at the *union* of the group's views.
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn distributed(&self, group: &[&str], p: &Predicate) -> Result<Predicate, EvalError> {
        let mut view = VarSet::EMPTY;
        for proc in group {
            view = view.union(self.view(proc)?);
        }
        Ok(self.knows_view(view, p))
    }

    /// This operator as a [`KnowledgeFn`] suitable for
    /// [`kpt_logic::EvalContext::with_knowledge`] and
    /// [`kpt_unity::Program::compile_with_knowledge`].
    pub fn knowledge_fn(&self) -> Box<KnowledgeFn<'_>> {
        Box::new(move |process: &str, p: &Predicate| self.knows(process, p))
    }
}

/// `K_i` as a [`Transformer`] (for a fixed process), for junctivity
/// analysis — the paper's (19), (21), (22).
pub struct KnowsTransformer<'a> {
    op: &'a KnowledgeOperator,
    view: VarSet,
}

impl<'a> KnowsTransformer<'a> {
    /// The transformer `K_process` of `op`.
    ///
    /// # Errors
    /// [`EvalError::UnknownProcess`] for undeclared names.
    pub fn new(op: &'a KnowledgeOperator, process: &str) -> Result<Self, EvalError> {
        Ok(KnowsTransformer {
            op,
            view: op.view(process)?,
        })
    }
}

impl Transformer for KnowsTransformer<'_> {
    fn space(&self) -> &Arc<StateSpace> {
        self.op.ctx.space()
    }

    fn apply(&self, p: &Predicate) -> Predicate {
        self.op.knows_view(self.view, p)
    }

    fn name(&self) -> &str {
        "knows"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_transformers::{
        check_finitely_disjunctive, check_monotonic, check_universally_conjunctive, Strategy,
        Verdict,
    };
    use kpt_unity::{Program, Statement};

    /// A two-process program: P0 sees {a}, P1 sees {a, b}. One statement
    /// couples a and b; another toggles b alone (so P0 genuinely cannot
    /// distinguish b).
    fn program() -> CompiledProgram {
        let space = StateSpace::builder()
            .bool_var("a")
            .unwrap()
            .bool_var("b")
            .unwrap()
            .build()
            .unwrap();
        Program::builder("p", &space)
            .init_str("~a")
            .unwrap()
            .process("P0", ["a"])
            .unwrap()
            .process("P1", ["a", "b"])
            .unwrap()
            .statement(
                Statement::new("couple")
                    .guard_str("~a /\\ ~b")
                    .unwrap()
                    .assign_str("a", "1")
                    .unwrap()
                    .assign_str("b", "1")
                    .unwrap(),
            )
            .statement(
                Statement::new("toggle_b")
                    .guard_str("~a /\\ ~b")
                    .unwrap()
                    .assign_str("b", "1")
                    .unwrap(),
            )
            .build()
            .unwrap()
            .compile()
            .unwrap()
    }

    fn all_preds(s: &Arc<StateSpace>) -> impl Iterator<Item = Predicate> + '_ {
        let n = s.num_states();
        let count = 1u64
            .checked_shl(n as u32)
            .unwrap_or_else(|| panic!("cannot enumerate 2^{n} predicates"));
        (0u64..count).map(move |m| Predicate::from_fn(s, |i| m >> i & 1 == 1))
    }

    #[test]
    fn eq14_knowledge_is_truthful() {
        // [K_i p ⇒ p]
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for p in all_preds(c.space()) {
            for proc in ["P0", "P1"] {
                assert!(k.knows(proc, &p).unwrap().entails(&p));
            }
        }
    }

    #[test]
    fn eq15_distribution_axiom() {
        // [(K_i p ∧ K_i (p ⇒ q)) ⇒ K_i q]
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let preds: Vec<_> = all_preds(c.space()).collect();
        for p in &preds {
            for q in &preds {
                for proc in ["P0", "P1"] {
                    let kp = k.knows(proc, p).unwrap();
                    let kimp = k.knows(proc, &p.implies(q)).unwrap();
                    let kq = k.knows(proc, q).unwrap();
                    assert!(kp.and(&kimp).entails(&kq));
                }
            }
        }
    }

    #[test]
    fn eq16_positive_introspection() {
        // [K_i p ≡ K_i K_i p]
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for p in all_preds(c.space()) {
            for proc in ["P0", "P1"] {
                let kp = k.knows(proc, &p).unwrap();
                assert_eq!(kp, k.knows(proc, &kp).unwrap());
            }
        }
    }

    #[test]
    fn eq17_negative_introspection() {
        // [¬K_i p ≡ K_i ¬K_i p]
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for p in all_preds(c.space()) {
            for proc in ["P0", "P1"] {
                let nkp = k.knows(proc, &p).unwrap().negate();
                assert_eq!(nkp, k.knows(proc, &nkp).unwrap());
            }
        }
    }

    #[test]
    fn eq18_necessitation() {
        // [p] ⇒ [K_i p]
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let tt = Predicate::tt(c.space());
        for proc in ["P0", "P1"] {
            assert!(k.knows(proc, &tt).unwrap().everywhere());
        }
    }

    #[test]
    fn eq19_monotonic_in_p() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for proc in ["P0", "P1"] {
            let t = KnowsTransformer::new(&k, proc).unwrap();
            assert_eq!(check_monotonic(&t, Strategy::Exhaustive), Verdict::Holds);
        }
    }

    #[test]
    fn eq20_antimonotonic_in_si_on_reachable_states() {
        // Strengthening SI weakens what is reachable-ly known... more
        // precisely: for SI' ⊆ SI, K^{SI'} ≥ K^{SI} *on SI' states*.
        let c = program();
        let space = c.space().clone();
        let views = vec![
            ("P0".to_owned(), space.var_set(["a"]).unwrap()),
            ("P1".to_owned(), space.var_set(["a", "b"]).unwrap()),
        ];
        let preds: Vec<_> = all_preds(&space).collect();
        for si_big in preds.iter().step_by(3) {
            for si_small in preds.iter().step_by(5) {
                if !si_small.entails(si_big) {
                    continue;
                }
                let k_big =
                    KnowledgeOperator::with_si(&space, views.clone(), si_big.clone()).unwrap();
                let k_small =
                    KnowledgeOperator::with_si(&space, views.clone(), si_small.clone()).unwrap();
                for p in preds.iter().step_by(7) {
                    let kb = k_big.knows("P0", p).unwrap();
                    let ks = k_small.knows("P0", p).unwrap();
                    // On states of the smaller SI, more is known.
                    assert!(si_small.and(&kb).entails(&ks));
                }
            }
        }
    }

    #[test]
    fn eq21_universally_conjunctive() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for proc in ["P0", "P1"] {
            let t = KnowsTransformer::new(&k, proc).unwrap();
            assert_eq!(
                check_universally_conjunctive(&t, Strategy::Exhaustive),
                Verdict::Holds
            );
        }
    }

    #[test]
    fn eq22_not_disjunctive() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let t = KnowsTransformer::new(&k, "P0").unwrap();
        assert!(!check_finitely_disjunctive(&t, Strategy::Exhaustive).passed());
    }

    #[test]
    fn eq23_invariant_p_iff_invariant_kp() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        for p in all_preds(c.space()) {
            for proc in ["P0", "P1"] {
                let kp = k.knows(proc, &p).unwrap();
                assert_eq!(c.invariant(&p), c.invariant(&kp));
            }
        }
    }

    #[test]
    fn eq24_view_local_implications_transfer_to_knowledge() {
        // If q depends only on vars_i:
        // invariant (q ⇒ p)  ≡  invariant (q ⇒ K_i p).
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let space = c.space().clone();
        let preds: Vec<_> = all_preds(&space).collect();
        for proc in ["P0", "P1"] {
            let view = k.view(proc).unwrap();
            for q in preds.iter().filter(|q| q.depends_only_on(view)) {
                for p in preds.iter().step_by(3) {
                    let kp = k.knows(proc, p).unwrap();
                    assert_eq!(
                        c.invariant(&q.implies(p)),
                        c.invariant(&q.implies(&kp)),
                        "proc {proc}"
                    );
                }
            }
        }
    }

    #[test]
    fn knowledge_respects_views() {
        let c = program();
        let space = c.space().clone();
        let k = KnowledgeOperator::for_program(&c);
        let b = Predicate::var_is_true(&space, space.var("b").unwrap());
        // P1 sees b, so K_{P1} b = b on reachable states.
        let k1b = k.knows("P1", &b).unwrap();
        assert_eq!(c.si().and(&k1b), c.si().and(&b));
        // P0 does not see b; in the initial state (~a ~b), P0 cannot know b.
        let init = c.init().witness().unwrap();
        assert!(!k.knows("P0", &b).unwrap().holds(init));
        // K_i p depends only on vars_i *within SI*... the full predicate
        // also carries p on unreachable states; check the reachable part is
        // view-measurable when restricted:
        let k0 = k.knows("P0", &b).unwrap();
        // states in SI with same `a` value agree on K0 b:
        let a = space.var("a").unwrap();
        for s1 in c.si().iter() {
            for s2 in c.si().iter() {
                if space.value(s1, a) == space.value(s2, a) {
                    assert_eq!(k0.holds(s1), k0.holds(s2));
                }
            }
        }
    }

    #[test]
    fn unknown_process_errors() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let p = Predicate::tt(c.space());
        assert!(matches!(
            k.knows("nobody", &p),
            Err(EvalError::UnknownProcess(_))
        ));
        assert!(k.everyone(&["P0", "nobody"], &p).is_err());
        assert!(k.common(&["nobody"], &p).is_err());
        assert!(k.distributed(&["nobody"], &p).is_err());
        assert!(KnowsTransformer::new(&k, "nobody").is_err());
    }

    #[test]
    fn group_knowledge_ordering() {
        // C_G p ⇒ E_G p ⇒ K_i p ⇒ p ⇒ ... and K_i p ⇒ D_G p.
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let g = ["P0", "P1"];
        for p in all_preds(c.space()).step_by(3) {
            let cg = k.common(&g, &p).unwrap();
            let eg = k.everyone(&g, &p).unwrap();
            let k0 = k.knows("P0", &p).unwrap();
            let dg = k.distributed(&g, &p).unwrap();
            assert!(cg.entails(&eg));
            assert!(eg.entails(&k0));
            assert!(k0.entails(&dg), "K_i ⇒ D_G");
            assert!(dg.entails(&p));
        }
    }

    #[test]
    fn common_knowledge_is_a_fixpoint() {
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let g = ["P0", "P1"];
        for p in all_preds(c.space()).step_by(5) {
            let cg = k.common(&g, &p).unwrap();
            assert_eq!(cg, k.everyone(&g, &p.and(&cg)).unwrap());
        }
    }

    #[test]
    fn distributed_knowledge_pools_views() {
        // P0 sees a; make a second process that sees b only; together they
        // determine the state exactly, so D_G p = p on SI.
        let space = StateSpace::builder()
            .bool_var("a")
            .unwrap()
            .bool_var("b")
            .unwrap()
            .build()
            .unwrap();
        let views = vec![
            ("A".to_owned(), space.var_set(["a"]).unwrap()),
            ("B".to_owned(), space.var_set(["b"]).unwrap()),
        ];
        let si = Predicate::tt(&space);
        let k = KnowledgeOperator::with_si(&space, views, si).unwrap();
        for p in all_preds(&space) {
            assert_eq!(k.distributed(&["A", "B"], &p).unwrap(), p);
        }
    }

    #[test]
    fn knowledge_fn_plugs_into_eval_context() {
        use kpt_logic::{parse_formula, EvalContext};
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let f = k.knowledge_fn();
        let ctx = EvalContext::new(c.space()).with_knowledge(f.as_ref());
        let formula = parse_formula("K{P1}(b)").unwrap();
        let direct = k
            .knows(
                "P1",
                &Predicate::var_is_true(c.space(), c.space().var("b").unwrap()),
            )
            .unwrap();
        assert_eq!(ctx.eval(&formula).unwrap(), direct);
    }

    #[test]
    fn value_on_unreachable_states_is_p() {
        // Eq. (13)'s convention: K_i p has the value p outside SI.
        let c = program();
        let k = KnowledgeOperator::for_program(&c);
        let not_si = c.si().negate();
        for p in all_preds(c.space()).step_by(3) {
            let kp = k.knows("P0", &p).unwrap();
            assert_eq!(not_si.and(&kp), not_si.and(&p));
        }
    }
}
