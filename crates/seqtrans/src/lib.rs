//! # kpt-seqtrans: the sequence transmission problem (§6 of the paper)
//!
//! The worked example of the reproduction: transmit a sequence over a
//! channel allowing loss, duplication and detectable corruption, such that
//!
//! ```text
//! Safety:   invariant w ⊑ x                        (34)
//! Liveness: |w| = k ↦ |w| > k                      (35)
//! ```
//!
//! This crate provides, per the experiment index in `DESIGN.md`:
//!
//! * [`StandardModel`] — the Figure-4 standard protocol as a bounded UNITY
//!   model with the *unknown input in the state* (so knowledge about `x`
//!   is non-trivial), exact strongest invariants, and the spec checks;
//! * [`knowledge_preds`] — validation of the proposed knowledge predicates
//!   (50)/(51): the §6.3 obligations (54), (55), (56), (61), (62), the
//!   soundness direction `candidate ⇒ K`, the completeness direction
//!   (the \[HZar\] Proposition-4.5 analogue) — and its failure under
//!   a-priori knowledge (§6.4, experiment E8);
//! * [`proof_replay`] — the §6.2 derivation (36)–(49) replayed step by
//!   step through the certificate kernel, with (Kbp-1)/(Kbp-2) assumed and
//!   then discharged by the model checker (experiment E6);
//! * [`sim`] — the unbounded-instance simulator over
//!   [`kpt_channel::FaultyChannel`], with message-count accounting and the
//!   §6.4 a-priori variant;
//! * [`altbit`]/[`stenning`] — the finite-state refinements the paper
//!   points to: the alternating-bit protocol (bounded model + simulator)
//!   and Stenning's protocol (timeout policy simulator) — experiment E11.
//!
//! ## Quick start
//!
//! ```
//! use kpt_seqtrans::{ModelOptions, StandardModel};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = StandardModel::build(2, 2, ModelOptions::default())?;
//! let compiled = model.compile()?;
//! // Spec (34): delivered values are always a prefix of the input.
//! assert!(compiled.invariant(&model.w_prefix_of_x()));
//! // Spec (35): progress at every position.
//! assert!(compiled.leads_to_holds(&model.j_eq(0), &model.j_gt(0)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod altbit;
pub mod auy;
pub mod encoding;
pub mod kbp;
pub mod knowledge_preds;
pub mod proof_replay;
pub mod sim;
pub mod standard;
pub mod stenning;
pub mod symbolic;

pub use altbit::{run_altbit, AltBitModel};
pub use auy::run_auy;
pub use encoding::Encoding;
pub use kbp::figure3_kbp;
pub use sim::{run_standard, SimConfig, SimReport};
pub use standard::{ModelOptions, Snapshot, StandardModel};
pub use stenning::{run_stenning, StenningPolicy};
pub use symbolic::{validate_61_62_symbolic, SymbolicStandard};
