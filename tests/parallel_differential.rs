//! Differential suites for the parallel hot paths: for random programs
//! and transition systems, the pool-fanned implementations must return
//! predicates **bit-identical** to their serial references, at every
//! forced thread count (well past the machine's core count, so the
//! multi-threaded code path is exercised even on one core).

mod common;

use common::{pred_from_mask, program_spec};
use knowledge_pt::prelude::*;
use kpt_core::KnowledgeContext;
use kpt_testkit::check;
use kpt_transformers::{
    sp_union_with, sst_frontier, sst_frontier_with_stats, sst_with_stats, wp_inter, wp_inter_with,
};

const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

// ---------------------------------------------------------------------
// (1) Kbp::solve_exhaustive: parallel fan-out ≡ serial enumeration.
// ---------------------------------------------------------------------

#[test]
fn solve_exhaustive_parallel_matches_serial_on_random_programs() {
    // The budget keeps each case to ≤ 2^9 candidates; larger draws must
    // fail identically (same typed error) on the serial and parallel paths.
    check("solve_exhaustive_differential", 10, |rng| {
        let spec = program_spec(rng);
        let kbp = Kbp::new(spec.build_program());
        match kbp.solve_exhaustive_serial(9) {
            Ok(serial) => {
                for threads in THREAD_COUNTS {
                    let par = kbp.solve_exhaustive_with(threads, 9).unwrap();
                    assert_eq!(
                        par.solutions(),
                        serial.solutions(),
                        "{spec:?} threads {threads}"
                    );
                    assert_eq!(par.candidates_checked(), serial.candidates_checked());
                }
            }
            Err(e) => {
                let par = kbp.solve_exhaustive_with(4, 9);
                assert_eq!(
                    format!("{:?}", par.unwrap_err()),
                    format!("{e:?}"),
                    "{spec:?}"
                );
            }
        }
    });
}

#[test]
fn solve_exhaustive_parallel_agrees_on_the_paper_counterexamples() {
    // Figure 1 (no solution) and Figure 2 (non-monotone solution set) are
    // the claims the solver exists to decide; the parallel path must
    // reproduce them exactly.
    let fig1 = figure1().unwrap();
    let fig2 = figure2("~y").unwrap();
    let fig2_serial = fig2.solve_exhaustive_serial(16).unwrap();
    for threads in THREAD_COUNTS {
        let s1 = fig1.solve_exhaustive_with(threads, 16).unwrap();
        assert!(s1.is_empty());
        let s2 = fig2.solve_exhaustive_with(threads, 16).unwrap();
        assert_eq!(s2.solutions(), fig2_serial.solutions());
        assert_eq!(s2.candidates_checked(), fig2_serial.candidates_checked());
    }
}

// ---------------------------------------------------------------------
// (2) KnowledgeContext::knows_all / knows_batch ≡ per-view knows.
// ---------------------------------------------------------------------

#[test]
fn knows_all_matches_per_view_knows_on_random_programs() {
    check("knows_all_differential", 24, |rng| {
        let spec = program_spec(rng);
        let compiled = spec.compile();
        let p = pred_from_mask(compiled.space(), rng.next_u64());
        // Serial reference on a fresh context (no shared memo effects).
        let serial = KnowledgeContext::for_program(&compiled);
        let expect: Vec<(String, Predicate)> = serial
            .views()
            .iter()
            .map(|(name, view)| (name.clone(), serial.knows_view(*view, &p)))
            .collect();
        for threads in THREAD_COUNTS {
            let ctx = KnowledgeContext::for_program(&compiled);
            let views: Vec<VarSet> = ctx.views().iter().map(|(_, v)| *v).collect();
            let batch = ctx.knows_batch_with(threads, &views, &p);
            assert_eq!(batch.len(), expect.len());
            for ((name, want), got) in expect.iter().zip(&batch) {
                assert_eq!(want, got, "{spec:?} process {name} threads {threads}");
            }
        }
        // The default entry points agree too, and E_G over all processes
        // equals the conjunction of the batch.
        let ctx = KnowledgeContext::for_program(&compiled);
        assert_eq!(ctx.knows_all(&p), expect);
        let op = KnowledgeOperator::from_context(std::sync::Arc::new(ctx));
        let names: Vec<&str> = expect.iter().map(|(n, _)| n.as_str()).collect();
        let mut conj = Predicate::tt(compiled.space());
        for (_, k) in &expect {
            conj = conj.and(k);
        }
        assert_eq!(op.everyone(&names, &p).unwrap(), conj, "{spec:?}");
    });
}

// ---------------------------------------------------------------------
// (3) Per-statement sp/wp sweeps ≡ serial, and the SI fixpoints on top.
// ---------------------------------------------------------------------

fn random_transitions(rng: &mut kpt_testkit::Rng, n: u64, count: usize) -> Vec<DetTransition> {
    let space = StateSpace::builder()
        .nat_var("i", n)
        .unwrap()
        .build()
        .unwrap();
    (0..count)
        .map(|_| {
            let a = rng.gen_range(1..n);
            let b = rng.below(n);
            let kind = rng.below(3);
            DetTransition::from_fn(&space, move |s| match kind {
                0 => (s + a) % n,
                1 => s.saturating_sub(a),
                _ => {
                    if s % 3 == 0 {
                        b
                    } else {
                        s
                    }
                }
            })
        })
        .collect()
}

#[test]
fn parallel_sweeps_match_serial_on_random_transition_systems() {
    check("sp_wp_sweep_differential", 16, |rng| {
        let n = 257 + rng.below(256);
        let count = 2 + rng.below(6) as usize;
        let ts = random_transitions(rng, n, count);
        let space = ts[0].space().clone();
        let p = pred_from_mask(&space, rng.next_u64() | 1);
        let serial_sp = sp_union_with(1, &ts, &p);
        let serial_wp = wp_inter_with(1, &ts, &p);
        for threads in THREAD_COUNTS {
            assert_eq!(sp_union_with(threads, &ts, &p), serial_sp, "sp x{threads}");
            assert_eq!(wp_inter_with(threads, &ts, &p), serial_wp, "wp x{threads}");
        }
        // And the adaptive entry points (whatever thread count they pick).
        assert_eq!(sp_union(&ts, &p), serial_sp);
        assert_eq!(wp_inter(&ts, &p), serial_wp);
    });
}

#[test]
fn frontier_si_fixpoint_is_unchanged_by_parallel_sweeps() {
    // The frontier fixpoint rides sp_union every round; its result must
    // equal the Kleene chain over the *serial* SP at a size that crosses
    // the parallel sweep threshold (|statements| · |states| ≥ 2^14).
    check("frontier_fixpoint_differential", 6, |rng| {
        let n = 2048 + rng.below(1024);
        let ts = random_transitions(rng, n, 8);
        let space = ts[0].space().clone();
        let init = Predicate::from_indices(&space, [rng.below(n)]);
        let ts2 = ts.clone();
        let kleene_sp =
            FnTransformer::new(&space, "SP", move |p: &Predicate| sp_union_with(1, &ts2, p));
        assert_eq!(sst_frontier(&ts, &init), sst(&kleene_sp, &init));
    });
}

#[test]
fn frontier_and_kleene_iteration_counts_agree_on_random_transition_systems() {
    // Both `FixpointStats.iterations` counts are "max BFS depth + 2": the
    // Kleene chain adds one layer per application plus the confirming
    // application, and the frontier loop runs one round per layer plus the
    // empty-frontier round. The diagnostics feed BENCH comparisons and the
    // fixpoint.* metrics, so the two implementations must never drift.
    check("fixpoint_iterations_differential", 12, |rng| {
        let n = 64 + rng.below(192);
        let count = 1 + rng.below(5) as usize;
        let ts = random_transitions(rng, n, count);
        let space = ts[0].space().clone();
        let init = pred_from_mask(&space, rng.next_u64() | 1);
        let ts2 = ts.clone();
        let kleene_sp =
            FnTransformer::new(&space, "SP", move |p: &Predicate| sp_union_with(1, &ts2, p));
        let (kleene_reach, kleene_stats) = sst_with_stats(&kleene_sp, &init);
        let (frontier_reach, frontier_stats) = sst_frontier_with_stats(&ts, &init);
        assert_eq!(frontier_reach, kleene_reach, "{n} states x{count} stmts");
        assert_eq!(
            frontier_stats.iterations, kleene_stats.iterations,
            "iteration counts drifted on {n} states x{count} stmts"
        );
        assert_eq!(frontier_stats.result_states, kleene_stats.result_states);
    });
    // Degenerate edge: from an empty init both converge in one application.
    let space = StateSpace::builder()
        .nat_var("i", 8)
        .unwrap()
        .build()
        .unwrap();
    let t = DetTransition::from_fn(&space, |i| (i + 1) % 8);
    let empty = Predicate::ff(&space);
    let t2 = t.clone();
    let ksp = FnTransformer::new(&space, "SP", move |p: &Predicate| {
        sp_union_with(1, std::slice::from_ref(&t2), p)
    });
    let (_, ks) = sst_with_stats(&ksp, &empty);
    let (_, fs) = sst_frontier_with_stats(std::slice::from_ref(&t), &empty);
    assert_eq!(ks.iterations, 1);
    assert_eq!(fs.iterations, 1);
}
