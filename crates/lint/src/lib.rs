//! # kpt-lint
//!
//! A static-analysis pass over [`kpt_unity::Program`]s and
//! [`kpt_core::Kbp`]s that runs *before* any eq. (25) solver and reports
//! the bug classes the paper warns about — most prominently the Figure-1
//! circularity (a knowledge guard whose consequences rewrite the very fact
//! it tests, so the fixpoint equation may have **no solution**).
//!
//! Four depths of checks, each a module:
//!
//! 1. [`decl`] — declaration-level: identifiers missing from the state
//!    space, updates that can write outside a variable's domain, duplicate
//!    or variable-shadowing names, empty/unsatisfiable `init`.
//! 2. [`view`] — view-soundness: a statement guarded by `K{i}(..)` whose
//!    *objective* guard atoms or update right-hand sides read variables
//!    outside process `i`'s view (the "acts on what it cannot know" class),
//!    plus undeclared processes in knowledge atoms.
//! 3. [`dataflow`] — abstract interpretation without the BDD engine:
//!    interval analysis proving guards constant-false (`KPT010`, an
//!    over-approximation of the symbolic `KPT007` verdict), a
//!    knowledge-guard dependency graph with SCC detection (`KPT011`, the
//!    syntactic Figure-1 circularity in `O(statements)`), and
//!    unimplementable-knowledge flow (`KPT012`, a `K{i}` guard over
//!    variables outside `V_i`'s reachable information).
//! 4. [`symbolic`] — semantic checks through the `kpt-bdd` backend against
//!    the strongest invariant of the *knowledge-erased* over-approximation:
//!    guards unsatisfiable under `SI` (dead code), write-write races on
//!    overlapping guards, and the eq.-25 knowledge-circularity analysis.
//!
//! The knowledge erasure is sound by eq. (14) (`[K_i p ⇒ p]`): replacing a
//! positive `K{i}(φ)` by `φ` and a negative one by `ff` only *weakens*
//! guards, so the erased program's `SI` contains the `SI` of every solution
//! of the KBP — a statement dead under the erased `SI` is dead under every
//! solution. The dataflow interval box in turn contains the erased `SI`
//! (it starts from the init states and closes under every guard that is
//! not definitely false), so `KPT010 ⊑ KPT007`: whenever the interval pass
//! declares a guard dead, the symbolic pass agrees.
//!
//! Every diagnostic carries a stable code (`KPT001`…), a severity, the
//! offending statement, and — where a concrete state demonstrates the
//! problem — witness states. Diagnostics produced through [`lint_source`]
//! additionally carry the byte [`Span`](kpt_logic::Span) of the offending
//! construct (guard, assignment, init conjunct) in the original `.kpt`
//! text, resolved through the [`kpt_unity::SourceMap`];
//! [`LintReport::render_source`] turns them into caret diagnostics.
//! [`LintReport::to_json`] emits a machine-readable form for CI; the
//! `kpt_lint` bin runs the pass over every in-tree model.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use kpt_core::Kbp;
use kpt_obs::WitnessState;
use kpt_unity::{Program, SourceMap};

mod dataflow;
mod decl;
mod erase;
mod registry;
mod symbolic;
mod view;

pub use erase::{erase_knowledge, erased_program};
pub use registry::{lint_registry, lint_registry_with_threads, registry, RegistryCase};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is malformed; solving it is meaningless or will fail.
    Error,
    /// The program is well-formed but exhibits a pattern the paper warns
    /// about (dead code, races, possible non-existence of solutions).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// checks append new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// `KPT001` — a guard or update references an identifier that is
    /// neither a state-space variable, a statement parameter, nor an enum
    /// label resolvable in its context.
    UnknownIdentifier,
    /// `KPT002` — an assignment can write a value outside the target
    /// variable's domain at some guard-enabled state.
    UpdateOutOfRange,
    /// `KPT003` — duplicate statement names, or a statement parameter that
    /// shadows a program variable (the parameter silently wins).
    ShadowedName,
    /// `KPT004` — the initial condition is unsatisfiable; `SI = sst.init`
    /// is empty and every property holds vacuously.
    EmptyInit,
    /// `KPT005` — a statement guarded by `K{i}(..)` objectively reads
    /// variables outside process `i`'s view.
    ViewViolation,
    /// `KPT006` — a knowledge atom `K{p}(..)` names an undeclared process.
    UnknownProcess,
    /// `KPT007` — a guard is unsatisfiable under the strongest invariant of
    /// the knowledge-erased over-approximation: the statement can never
    /// execute in any solution.
    DeadGuard,
    /// `KPT008` — two statements write conflicting values to the same
    /// variable and their guards overlap under `SI`.
    WriteRace,
    /// `KPT009` — the Figure-1 pattern: a knowledge guard `K_i φ` enables
    /// updates that establish/destroy `φ` itself, so the eq. (25) fixpoint
    /// may have no solution.
    KnowledgeCircularity,
    /// `KPT010` — interval abstract interpretation proves the guard
    /// constant-false over every reachable value box: dead code, shown
    /// without touching the BDD engine (always implies `KPT007`).
    IntervalDeadGuard,
    /// `KPT011` — the statement's knowledge guard sits on a cyclic
    /// strongly-connected component of the read/write dependency graph
    /// that rewrites the guard's subject — the syntactic Figure-1
    /// circularity, found in `O(statements)`.
    KnowledgeDependencyCycle,
    /// `KPT012` — a `K{i}` guard whose body depends on variables outside
    /// process `i`'s reachable information (its view closed under the
    /// program's dataflow and init correlations): no implementation of
    /// process `i` can ever establish that knowledge.
    UnimplementableKnowledge,
}

impl DiagnosticCode {
    /// Every code the linter can produce, in `KPTnnn` order.
    pub const ALL: [DiagnosticCode; 12] = [
        DiagnosticCode::UnknownIdentifier,
        DiagnosticCode::UpdateOutOfRange,
        DiagnosticCode::ShadowedName,
        DiagnosticCode::EmptyInit,
        DiagnosticCode::ViewViolation,
        DiagnosticCode::UnknownProcess,
        DiagnosticCode::DeadGuard,
        DiagnosticCode::WriteRace,
        DiagnosticCode::KnowledgeCircularity,
        DiagnosticCode::IntervalDeadGuard,
        DiagnosticCode::KnowledgeDependencyCycle,
        DiagnosticCode::UnimplementableKnowledge,
    ];

    /// Parse a `KPTnnn` code string (the CLI's `--deny`/`--allow` input).
    pub fn from_code(code: &str) -> Option<DiagnosticCode> {
        DiagnosticCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The stable `KPTnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticCode::UnknownIdentifier => "KPT001",
            DiagnosticCode::UpdateOutOfRange => "KPT002",
            DiagnosticCode::ShadowedName => "KPT003",
            DiagnosticCode::EmptyInit => "KPT004",
            DiagnosticCode::ViewViolation => "KPT005",
            DiagnosticCode::UnknownProcess => "KPT006",
            DiagnosticCode::DeadGuard => "KPT007",
            DiagnosticCode::WriteRace => "KPT008",
            DiagnosticCode::KnowledgeCircularity => "KPT009",
            DiagnosticCode::IntervalDeadGuard => "KPT010",
            DiagnosticCode::KnowledgeDependencyCycle => "KPT011",
            DiagnosticCode::UnimplementableKnowledge => "KPT012",
        }
    }

    /// The shallowest [`Depth`] whose pass can produce this code.
    pub fn depth(self) -> Depth {
        match self {
            DiagnosticCode::UnknownIdentifier
            | DiagnosticCode::UpdateOutOfRange
            | DiagnosticCode::ShadowedName
            | DiagnosticCode::EmptyInit => Depth::Decl,
            DiagnosticCode::ViewViolation | DiagnosticCode::UnknownProcess => Depth::View,
            DiagnosticCode::IntervalDeadGuard
            | DiagnosticCode::KnowledgeDependencyCycle
            | DiagnosticCode::UnimplementableKnowledge => Depth::Dataflow,
            DiagnosticCode::DeadGuard
            | DiagnosticCode::WriteRace
            | DiagnosticCode::KnowledgeCircularity => Depth::Symbolic,
        }
    }

    /// The severity every finding of this code carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::UnknownIdentifier
            | DiagnosticCode::UpdateOutOfRange
            | DiagnosticCode::EmptyInit
            | DiagnosticCode::ViewViolation
            | DiagnosticCode::UnknownProcess => Severity::Error,
            DiagnosticCode::ShadowedName
            | DiagnosticCode::DeadGuard
            | DiagnosticCode::WriteRace
            | DiagnosticCode::KnowledgeCircularity
            | DiagnosticCode::IntervalDeadGuard
            | DiagnosticCode::KnowledgeDependencyCycle
            | DiagnosticCode::UnimplementableKnowledge => Severity::Warning,
        }
    }

    /// The paper definition/figure the check guards against.
    pub fn paper_ref(self) -> &'static str {
        match self {
            DiagnosticCode::UnknownIdentifier => "§2 (fixed finite state space)",
            DiagnosticCode::UpdateOutOfRange => "§2 (finite variable domains)",
            DiagnosticCode::ShadowedName => "§4 (statement well-formedness)",
            DiagnosticCode::EmptyInit => "eq. (2)/(25): SI = sst.init",
            DiagnosticCode::ViewViolation => "§3 (views), Figures 3-4",
            DiagnosticCode::UnknownProcess => "§3 (process views)",
            DiagnosticCode::DeadGuard => "eq. (2) (dead under SI)",
            DiagnosticCode::WriteRace => "§2 (UNITY interleaving)",
            DiagnosticCode::KnowledgeCircularity => "eq. (25), Figure 1",
            DiagnosticCode::IntervalDeadGuard => "eq. (2) (dead under SI), eq. (14)",
            DiagnosticCode::KnowledgeDependencyCycle => "eq. (25), Figure 1 (syntactic)",
            DiagnosticCode::UnimplementableKnowledge => "§3 (views), eq. (13)",
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Which source construct a diagnostic points at. Anchors are set by the
/// passes (which work on the elaborated [`Program`], spans unknown) and
/// resolved to byte [`Span`](kpt_logic::Span)s through the
/// [`kpt_unity::SourceMap`] when linting `.kpt` text via [`lint_source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The `program` header.
    Program,
    /// The init formula.
    Init,
    /// The whole anchored statement.
    Statement,
    /// The anchored statement's guard formula.
    Guard,
    /// The anchored statement's `n`-th assignment (`var := expr`).
    Assign(usize),
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// The statement the finding is anchored to, if any.
    pub statement: Option<String>,
    /// Which construct of the program (or of [`Self::statement`]) the
    /// finding points at.
    pub anchor: Anchor,
    /// The byte span of the anchored construct in the original `.kpt`
    /// source — `Some` only for reports produced via [`lint_source`].
    pub span: Option<kpt_logic::Span>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Concrete states demonstrating the problem (empty for purely
    /// syntactic findings).
    pub witnesses: Vec<WitnessState>,
}

impl Diagnostic {
    /// A finding with no anchored statement or witnesses.
    pub fn program_level(code: DiagnosticCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            statement: None,
            anchor: Anchor::Program,
            span: None,
            message: message.into(),
            witnesses: Vec::new(),
        }
    }

    /// A finding anchored to a statement.
    pub fn on_statement(
        code: DiagnosticCode,
        statement: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            statement: Some(statement.into()),
            anchor: Anchor::Statement,
            span: None,
            message: message.into(),
            witnesses: Vec::new(),
        }
    }

    /// A finding anchored to a statement's guard formula.
    pub fn on_guard(
        code: DiagnosticCode,
        statement: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic::on_statement(code, statement, message).anchored(Anchor::Guard)
    }

    /// Re-anchor the finding at a finer construct.
    #[must_use]
    pub fn anchored(mut self, anchor: Anchor) -> Self {
        self.anchor = anchor;
        self
    }

    /// Attach witness states.
    #[must_use]
    pub fn with_witnesses(mut self, witnesses: Vec<WitnessState>) -> Self {
        self.witnesses = witnesses;
        self
    }

    /// The severity of this finding (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity(), self.code.code())?;
        if let Some(s) = &self.statement {
            write!(f, " statement `{s}`")?;
        }
        write!(f, ": {} ({})", self.message, self.code.paper_ref())?;
        for w in &self.witnesses {
            write!(f, "\n    witness {w}")?;
        }
        Ok(())
    }
}

/// The four analysis depths, shallow to deep. Mostly useful through
/// [`LintOptions::up_to`] and the CLI's `--depth` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Depth {
    /// Declaration-level syntax checks (KPT001-KPT004).
    Decl,
    /// View-soundness checks (KPT005-KPT006).
    View,
    /// BDD-free abstract interpretation (KPT010-KPT012).
    Dataflow,
    /// Symbolic checks against the erased `SI` (KPT007-KPT009).
    Symbolic,
}

impl FromStr for Depth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "decl" => Ok(Depth::Decl),
            "view" => Ok(Depth::View),
            "dataflow" => Ok(Depth::Dataflow),
            "symbolic" | "full" => Ok(Depth::Symbolic),
            other => Err(format!(
                "unknown depth `{other}` (expected decl, view, dataflow, or symbolic)"
            )),
        }
    }
}

impl fmt::Display for Depth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Depth::Decl => write!(f, "decl"),
            Depth::View => write!(f, "view"),
            Depth::Dataflow => write!(f, "dataflow"),
            Depth::Symbolic => write!(f, "symbolic"),
        }
    }
}

/// Which passes to run. Each depth toggles independently; the dataflow and
/// symbolic passes additionally require that the shallower passes found no
/// errors (a malformed program has no meaningful semantics to analyse).
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Run the declaration-level checks (KPT001-KPT004).
    pub decl: bool,
    /// Run the view-soundness checks (KPT005-KPT006).
    pub view: bool,
    /// Run the dataflow checks (KPT010-KPT012).
    pub dataflow: bool,
    /// Run the symbolic checks (KPT007-KPT009).
    pub symbolic: bool,
    /// Live-node budget for the symbolic pass's fixpoint. When the budget
    /// trips, the symbolic findings are skipped (`symbolic_ran` stays
    /// `false`) instead of letting the BDD engine grow without bound —
    /// the fuzz campaign's setting.
    pub symbolic_node_budget: Option<usize>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            decl: true,
            view: true,
            dataflow: true,
            symbolic: true,
            symbolic_node_budget: None,
        }
    }
}

impl LintOptions {
    /// The cheap subset: declaration and view checks only.
    pub fn fast() -> Self {
        LintOptions::up_to(Depth::View)
    }

    /// Every pass at `depth` or shallower.
    pub fn up_to(depth: Depth) -> Self {
        LintOptions {
            decl: true,
            view: depth >= Depth::View,
            dataflow: depth >= Depth::Dataflow,
            symbolic: depth >= Depth::Symbolic,
            symbolic_node_budget: None,
        }
    }
}

/// The result of linting one program.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The program's name.
    pub program: String,
    /// All findings, in pass order (decl, view, dataflow, symbolic).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the dataflow pass ran (skipped when the shallower passes
    /// report errors, or when disabled).
    pub dataflow_ran: bool,
    /// Whether the symbolic pass ran (it is skipped when the declaration
    /// pass already found errors — the erased program would not compile —
    /// or its node budget tripped).
    pub symbolic_ran: bool,
}

impl LintReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> Vec<DiagnosticCode> {
        let set: BTreeSet<DiagnosticCode> = self.diagnostics.iter().map(|d| d.code).collect();
        set.into_iter().collect()
    }

    /// Whether some finding carries `code`.
    pub fn has(&self, code: DiagnosticCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Machine-readable JSON (one object; `kpt_lint --json` emits an array
    /// of these). Self-contained — no external serializer.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"program\":");
        json_string(&mut out, &self.program);
        out.push_str(",\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(",\"dataflow_ran\":");
        out.push_str(if self.dataflow_ran { "true" } else { "false" });
        out.push_str(",\"symbolic_ran\":");
        out.push_str(if self.symbolic_ran { "true" } else { "false" });
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":");
            json_string(&mut out, d.code.code());
            out.push_str(",\"severity\":");
            json_string(&mut out, &d.severity().to_string());
            out.push_str(",\"statement\":");
            match &d.statement {
                Some(s) => json_string(&mut out, s),
                None => out.push_str("null"),
            }
            out.push_str(",\"span\":");
            match d.span {
                Some(s) => {
                    out.push_str(&format!("{{\"start\":{},\"len\":{}}}", s.start, s.len));
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            out.push_str(",\"paper_ref\":");
            json_string(&mut out, d.code.paper_ref());
            out.push_str(",\"witnesses\":[");
            for (j, w) in d.witnesses.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, &w.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Render every finding as a caret diagnostic against the `.kpt`
    /// source it was produced from (via [`lint_source`] — findings without
    /// a span fall back to their plain [`Display`](fmt::Display) form).
    pub fn render_source(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if !out.is_empty() {
                out.push('\n');
            }
            match d.span {
                Some(s) => {
                    let header = match &d.statement {
                        Some(name) => {
                            format!(
                                "{} [{}] statement `{name}`: {}",
                                d.severity(),
                                d.code,
                                d.message
                            )
                        }
                        None => format!("{} [{}]: {}", d.severity(), d.code, d.message),
                    };
                    out.push_str(&kpt_logic::render_span(src, s.start, s.len, &header));
                }
                None => out.push_str(&d.to_string()),
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint {}: {} finding(s) ({} error(s), {} warning(s)){}",
            self.program,
            self.diagnostics.len(),
            self.error_count(),
            self.warning_count(),
            if self.symbolic_ran {
                ""
            } else {
                " [symbolic pass skipped]"
            }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Append a JSON string literal (with escaping) to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Lint a program with the default options (all passes).
pub fn lint_program(program: &Program) -> LintReport {
    lint_program_with(program, &LintOptions::default())
}

/// Lint a program.
///
/// The declaration and view passes are purely syntactic. The dataflow pass
/// runs BDD-free abstract interpretation; the symbolic pass computes the
/// strongest invariant of the knowledge-erased over-approximation through
/// `kpt-bdd`. Both deeper passes are skipped (with `dataflow_ran` /
/// `symbolic_ran` false) when the earlier passes report errors — the
/// erased program would not compile — or when disabled in `options`.
pub fn lint_program_with(program: &Program, options: &LintOptions) -> LintReport {
    let mut span = kpt_obs::span("lint.program");
    kpt_obs::counter!("lint.runs").incr();
    let mut diagnostics = Vec::new();
    if options.decl {
        let _pass = kpt_obs::span("lint.pass.decl");
        decl::check(program, &mut diagnostics);
    }
    if options.view {
        let _pass = kpt_obs::span("lint.pass.view");
        view::check(program, &mut diagnostics);
    }
    let errors_so_far = diagnostics
        .iter()
        .any(|d: &Diagnostic| d.severity() == Severity::Error);
    let dataflow_ran = options.dataflow && !errors_so_far;
    if dataflow_ran {
        let _pass = kpt_obs::span("lint.pass.dataflow");
        dataflow::check(program, &mut diagnostics);
    }
    let mut symbolic_ran = options.symbolic && !errors_so_far;
    if symbolic_ran {
        let _pass = kpt_obs::span("lint.pass.symbolic");
        symbolic_ran = symbolic::check(program, options.symbolic_node_budget, &mut diagnostics);
    }
    kpt_obs::counter!("lint.findings").add(diagnostics.len() as u64);
    span.field("program", program.name())
        .field("findings", diagnostics.len() as u64);
    LintReport {
        program: program.name().to_owned(),
        diagnostics,
        dataflow_ran,
        symbolic_ran,
    }
}

/// Lint a knowledge-based protocol (its underlying program).
pub fn lint_kbp(kbp: &Kbp) -> LintReport {
    lint_program(kbp.program())
}

/// Parse a textual `.kpt` source and lint the elaborated program — the
/// one entry point shared by the `kpt_lint` CLI's file mode, kpt-server's
/// `lint` request, and the fuzz campaign's lint leg. Parse/elaboration
/// failures come back as a spanned [`kpt_unity::UnityError`] (render caret
/// diagnostics against the source with [`kpt_unity::UnityError::render`]);
/// a program that elaborates is linted with [`lint_program_with`] and
/// every diagnostic's [`Anchor`] is resolved to a byte span through the
/// [`kpt_unity::SourceMap`], ready for [`LintReport::render_source`].
///
/// # Errors
/// The frontend's [`kpt_unity::UnityError`] on malformed sources.
pub fn lint_source(src: &str, options: &LintOptions) -> Result<LintReport, kpt_unity::UnityError> {
    let (_, program, map) = kpt_unity::parse_program_mapped(src)?;
    let mut report = lint_program_with(&program, options);
    resolve_spans(&mut report, &map);
    Ok(report)
}

/// Resolve every diagnostic's [`Anchor`] against the source map. Anchors
/// that point at a construct the statement does not have (a guard-anchored
/// finding on a guardless statement, say) degrade to the statement span;
/// statement-less findings degrade to the program header.
fn resolve_spans(report: &mut LintReport, map: &SourceMap) {
    for d in &mut report.diagnostics {
        d.span = match (&d.statement, d.anchor) {
            (_, Anchor::Init) => map.init.or(Some(map.program_name)),
            (Some(name), anchor) => map.statement(name).map(|s| match anchor {
                Anchor::Guard => s.guard.unwrap_or(s.span),
                Anchor::Assign(i) => s.assigns.get(i).copied().unwrap_or(s.span),
                _ => s.span,
            }),
            (None, _) => Some(map.program_name),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_state::StateSpace;
    use kpt_unity::Statement;

    #[test]
    fn clean_program_yields_empty_report_and_valid_json() {
        let space = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("clean", &space)
            .init_str("~x")
            .unwrap()
            .statement(
                Statement::new("set")
                    .guard_str("~x")
                    .unwrap()
                    .assign_str("x", "1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let report = lint_program(&program);
        assert!(report.is_clean(), "unexpected findings: {report}");
        assert!(report.dataflow_ran);
        assert!(report.symbolic_ran);
        let json = report.to_json();
        let v = kpt_obs::parse_json(&json).expect("report JSON parses");
        assert_eq!(
            v.get("program").and_then(kpt_obs::JsonValue::as_str),
            Some("clean")
        );
        assert_eq!(
            v.get("clean").and_then(kpt_obs::JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn codes_are_stable_and_ordered() {
        use DiagnosticCode::*;
        let all = [
            UnknownIdentifier,
            UpdateOutOfRange,
            ShadowedName,
            EmptyInit,
            ViewViolation,
            UnknownProcess,
            DeadGuard,
            WriteRace,
            KnowledgeCircularity,
            IntervalDeadGuard,
            KnowledgeDependencyCycle,
            UnimplementableKnowledge,
        ];
        let codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            [
                "KPT001", "KPT002", "KPT003", "KPT004", "KPT005", "KPT006", "KPT007", "KPT008",
                "KPT009", "KPT010", "KPT011", "KPT012"
            ]
        );
        for c in all {
            assert!(!c.paper_ref().is_empty());
        }
    }

    #[test]
    fn every_code_maps_to_the_pass_that_produces_it() {
        use DiagnosticCode::*;
        assert_eq!(UnknownIdentifier.depth(), Depth::Decl);
        assert_eq!(EmptyInit.depth(), Depth::Decl);
        assert_eq!(ViewViolation.depth(), Depth::View);
        assert_eq!(IntervalDeadGuard.depth(), Depth::Dataflow);
        assert_eq!(KnowledgeDependencyCycle.depth(), Depth::Dataflow);
        assert_eq!(UnimplementableKnowledge.depth(), Depth::Dataflow);
        assert_eq!(DeadGuard.depth(), Depth::Symbolic);
        assert_eq!(KnowledgeCircularity.depth(), Depth::Symbolic);
        assert!(Depth::Decl < Depth::View);
        assert!(Depth::View < Depth::Dataflow);
        assert!(Depth::Dataflow < Depth::Symbolic);
        assert_eq!("dataflow".parse::<Depth>().unwrap(), Depth::Dataflow);
        assert_eq!("full".parse::<Depth>().unwrap(), Depth::Symbolic);
    }
}
