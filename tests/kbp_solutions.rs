//! Integration/property tests for knowledge-based protocols: the Figure
//! 1/2 counterexamples (E4, E5), solution-set structure (E9), and solver
//! coherence on random programs.

mod common;

use common::program_spec;
use knowledge_pt::prelude::*;
use kpt_testkit::check;

// ---------------------------------------------------------------------
// E4: Figure 1 has no solution.
// ---------------------------------------------------------------------

#[test]
fn figure1_has_no_solution_exhaustively() {
    let kbp = figure1().unwrap();
    let sols = kbp.solve_exhaustive(16).unwrap();
    assert!(sols.is_empty());
    assert_eq!(sols.candidates_checked(), 8);
    // Every candidate is individually refuted by is_solution.
    let space = kbp.program().space().clone();
    let init = kbp.program().init().clone();
    let free: Vec<u64> = init.negate().iter().collect();
    for mask in 0u64..8 {
        let candidate = Predicate::from_indices(
            &space,
            init.iter().chain(
                free.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &s)| s),
            ),
        );
        assert!(!kbp.is_solution(&candidate).unwrap());
    }
}

#[test]
fn figure1_iteration_cycles_with_period_two() {
    let kbp = figure1().unwrap();
    match kbp.solve_iterative(32).unwrap() {
        IterativeOutcome::Cycle { period, .. } => assert_eq!(period, 2),
        other => panic!("expected a cycle, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// E5: Figure 2's non-monotonicity.
// ---------------------------------------------------------------------

#[test]
fn figure2_si_and_properties_flip_with_init() {
    let weak = figure2("~y").unwrap();
    let strong = figure2("~y /\\ x").unwrap();
    let sw = weak.solve_exhaustive(16).unwrap();
    let ss = strong.solve_exhaustive(16).unwrap();
    let si_w = sw.strongest().unwrap().clone();
    let si_s = ss.strongest().unwrap().clone();
    // The paper's exact solutions: ¬y and x.
    let space = weak.program().space().clone();
    let not_y = Predicate::var_is_true(&space, space.var("y").unwrap()).negate();
    let x = Predicate::var_is_true(&space, space.var("x").unwrap());
    assert_eq!(si_w, not_y);
    assert_eq!(si_s, x);
    assert!(!si_s.entails(&si_w), "SI is not monotonic in init");

    // Liveness flips.
    let z = Predicate::var_is_true(&space, space.var("z").unwrap());
    let cw = weak.compile_at(&si_w).unwrap();
    let cs = strong.compile_at(&si_s).unwrap();
    assert!(cw.leads_to_holds(&Predicate::tt(&space), &z));
    assert!(!cs.leads_to_holds(&Predicate::tt(&space), &z));
}

#[test]
fn figure2_solutions_are_unique_per_init() {
    // The solver *proves* uniqueness for both of the paper's inits — so
    // "the" SI of Figure 2 is well-defined in each environment, and the
    // non-monotonicity is about those unique solutions.
    for init in ["~y", "~y /\\ x"] {
        let sols = figure2(init).unwrap().solve_exhaustive(16).unwrap();
        assert_eq!(sols.len(), 1, "init = {init}");
        assert_eq!(sols.minimal().len(), 1);
    }
}

#[test]
fn self_referential_kbp_has_multiple_solutions() {
    // E9: a KBP denotes a *set* of solutions (§4: "a knowledge-based
    // protocol corresponds to many different systems"). The classic
    // self-referential guard:
    //
    //   var b; process P sees nothing; b := true if ¬K_P(¬b); init ¬b.
    //
    // Solution 1: X = {¬b}. Then P *knows* ¬b (it holds in every possible
    //   state), the guard is false, b stays false — consistent.
    // Solution 2: X = {¬b, b}. Then P does NOT know ¬b (b-states are
    //   possible), the guard is true, b becomes true — also consistent.
    let space = StateSpace::builder()
        .bool_var("b")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("self-ref", &space)
        .init_str("~b")
        .unwrap()
        .process("P", [] as [&str; 0])
        .unwrap()
        .statement(
            Statement::new("s")
                .guard_str("~K{P}(~b)")
                .unwrap()
                .assign_str("b", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    let kbp = Kbp::new(program);
    let sols = kbp.solve_exhaustive(16).unwrap();
    assert_eq!(sols.len(), 2, "both fixpoints must be found");
    let strongest = sols.strongest().unwrap().clone();
    assert_eq!(strongest.count(), 1); // {¬b}
    for s in sols.solutions() {
        assert!(kbp.is_solution(s).unwrap());
        assert!(strongest.entails(s));
    }
    // Different solutions validate different properties: invariant ¬b
    // holds for the strongest solution only — "results are valid for any
    // solution" cuts both ways.
    let not_b = Predicate::var_is_true(&space, space.var("b").unwrap()).negate();
    let verdicts: Vec<bool> = sols
        .solutions()
        .iter()
        .map(|s| kbp.compile_at(s).unwrap().invariant(&not_b))
        .collect();
    assert!(verdicts.contains(&true) && verdicts.contains(&false));
}

#[test]
fn environment_sweep_over_figure2_inits() {
    // §4: "a knowledge-based protocol can be specified for different
    // environments, with the 'selected' behavior encoded in the initial
    // condition. Then strengthening the initial condition corresponds to
    // execution of the protocol in a more predictable environment." Sweep
    // a chain of increasingly strong environments for Figure 2 and record
    // how the solution and its properties move — non-monotonically.
    let inits = ["true", "~y", "~y /\\ ~z", "~y /\\ x", "~y /\\ x /\\ ~z"];
    let mut rows = Vec::new();
    for init in inits {
        let kbp = figure2(init).unwrap();
        let sols = kbp.solve_exhaustive(16).unwrap();
        let space = kbp.program().space().clone();
        let z = Predicate::var_is_true(&space, space.var("z").unwrap());
        let row: Vec<(u64, bool)> = sols
            .solutions()
            .iter()
            .map(|s| {
                let c = kbp.compile_at(s).unwrap();
                (s.count(), c.leads_to_holds(&Predicate::tt(&space), &z))
            })
            .collect();
        rows.push((init, sols.len(), row));
    }
    // Every environment admits at least one solution here.
    for (init, n, _) in &rows {
        assert!(*n >= 1, "init {init} should have solutions");
    }
    // The ¬y environment satisfies true ↦ z in its strongest solution;
    // the strictly more predictable ¬y ∧ x does not — non-monotonicity
    // across the environment chain.
    let verdict = |init: &str| {
        rows.iter()
            .find(|(i, _, _)| *i == init)
            .and_then(|(_, _, row)| row.first().map(|&(_, live)| live))
            .unwrap()
    };
    assert!(verdict("~y"));
    assert!(!verdict("~y /\\ x"));
    // And strengthening further (fixing z = false too) doesn't restore it.
    assert!(!verdict("~y /\\ x /\\ ~z"));
}

// ---------------------------------------------------------------------
// Solver coherence on random (standard) programs.
// ---------------------------------------------------------------------

#[test]
fn standard_programs_have_exactly_their_si_as_solution() {
    check(
        "standard_programs_have_exactly_their_si_as_solution",
        24,
        |rng| {
            // A knowledge-free program is a degenerate KBP: compile_at ignores
            // the candidate, so the unique solution is its own SI.
            let spec = program_spec(rng);
            let compiled = spec.compile();
            let space = compiled.space().clone();
            if space.num_states() > 18 {
                // keep the exhaustive search cheap
                return;
            }
            // Rebuild as a Program for the Kbp wrapper.
            let program = spec.build_program();
            let kbp = Kbp::new(program);
            let sols = kbp.solve_exhaustive(18).unwrap();
            assert_eq!(sols.len(), 1);
            assert_eq!(&sols.solutions()[0], compiled.si());
            assert_eq!(sols.strongest(), Some(compiled.si()));
            // The iterative solver agrees.
            match kbp.solve_iterative(64).unwrap() {
                IterativeOutcome::Converged { solution, .. } => {
                    assert_eq!(&solution, compiled.si());
                }
                other => panic!("no convergence: {other:?}"),
            }
        },
    );
}

#[test]
fn iterative_solutions_are_verified_fixpoints() {
    check("iterative_solutions_are_verified_fixpoints", 24, |rng| {
        let spec = program_spec(rng);
        let program = spec.build_program();
        let kbp = Kbp::new(program);
        if let IterativeOutcome::Converged { solution, .. } = kbp.solve_iterative(64).unwrap() {
            assert!(kbp.is_solution(&solution).unwrap());
        }
    });
}
