//! Property tests for the §2 substrate: the predicate calculus, the
//! quantifiers, and the `wcyl` laws (7)–(12) on random spaces and
//! predicates (experiment E1).

mod common;

use common::{pred_from_mask, program_spec};
use knowledge_pt::prelude::*;
use kpt_testkit::check;

#[test]
fn boolean_algebra_laws() {
    check("boolean_algebra_laws", 64, |rng| {
        let spec = program_spec(rng);
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        let space = spec.space();
        let p = pred_from_mask(&space, a);
        let q = pred_from_mask(&space, b);
        let r = pred_from_mask(&space, c);
        // Distributivity, De Morgan, absorption, double negation.
        assert_eq!(p.and(&q.or(&r)), p.and(&q).or(&p.and(&r)));
        assert_eq!(p.or(&q.and(&r)), p.or(&q).and(&p.or(&r)));
        assert_eq!(p.and(&q).negate(), p.negate().or(&q.negate()));
        assert_eq!(p.or(&q).negate(), p.negate().and(&q.negate()));
        assert_eq!(p.and(&p.or(&q)), p);
        assert_eq!(p.negate().negate(), p);
        // Pointwise implication and equivalence agree with their pointwise
        // definitions.
        assert_eq!(p.implies(&q), p.negate().or(&q));
        assert_eq!(p.iff(&q), p.implies(&q).and(&q.implies(&p)));
        // The everywhere operator.
        assert_eq!(p.implies(&q).everywhere(), p.entails(&q));
    });
}

#[test]
fn quantifier_laws() {
    check("quantifier_laws", 64, |rng| {
        let spec = program_spec(rng);
        let a = rng.next_u64();
        let space = spec.space();
        let p = pred_from_mask(&space, a);
        for v in space.vars() {
            let fa = forall_var(&p, v);
            let ex = exists_var(&p, v);
            // Galois: ∀v::p ⇒ p ⇒ ∃v::p.
            assert!(fa.entails(&p));
            assert!(p.entails(&ex));
            // Duality.
            assert_eq!(fa.negate(), exists_var(&p.negate(), v));
            // Idempotence.
            assert_eq!(forall_var(&fa, v), fa.clone());
            assert_eq!(exists_var(&ex, v), ex.clone());
            // Independence of the quantified variable.
            assert!(fa.is_independent_of(v));
            assert!(ex.is_independent_of(v));
        }
    });
}

#[test]
fn wcyl_laws_7_through_11() {
    check("wcyl_laws_7_through_11", 64, |rng| {
        let spec = program_spec(rng);
        let (a, b, view_mask) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        let space = spec.space();
        let p = pred_from_mask(&space, a);
        let q = pred_from_mask(&space, b);
        let view = VarSet::from_vars(space.vars().filter(|v| view_mask >> v.index() & 1 == 1));
        let wp = wcyl(&view, &p);
        // (7) [wcyl.V.p ⇒ p]
        assert!(wp.entails(&p));
        // (8) monotonic in p
        let wpq = wcyl(&view, &p.or(&q));
        assert!(wp.entails(&wpq));
        // (8) monotonic in V
        let bigger = view.union(VarSet::from_vars(space.vars().take(1)));
        assert!(wp.entails(&wcyl(&bigger, &p)));
        // (9) identity on cylinders
        assert_eq!(wcyl(&view, &wp), wp.clone());
        assert!(wp.depends_only_on(view));
        // (10) weakest such cylinder: wcyl of a cylinder below p stays below
        let q_cyl = wcyl(&view, &q);
        if q_cyl.entails(&p) {
            assert!(q_cyl.entails(&wp));
        }
        // (11) universally conjunctive (binary case)
        assert_eq!(wcyl(&view, &p.and(&q)), wp.and(&wcyl(&view, &q)));
    });
}

#[test]
fn state_encode_decode_roundtrip() {
    check("state_encode_decode_roundtrip", 64, |rng| {
        let spec = program_spec(rng);
        let s = rng.next_u64();
        let space = spec.space();
        let idx = s % space.num_states();
        let vals = space.decode(idx);
        assert_eq!(space.encode(&vals).unwrap(), idx);
        for (v, &val) in space.vars().zip(&vals) {
            assert_eq!(space.value(idx, v), val);
            let other = (val + 1) % space.domain(v).size();
            let upd = space.with_value(idx, v, other);
            assert_eq!(space.value(upd, v), other);
        }
    });
}

#[test]
fn formula_roundtrip_through_printer() {
    check("formula_roundtrip_through_printer", 64, |rng| {
        // Build a formula about the space's variables, print, re-parse,
        // evaluate: both evaluations agree.
        let spec = program_spec(rng);
        let a = rng.next_u64();
        let b = rng.below(3);
        let space = spec.space();
        let nvars = spec.domains.len() as u64;
        let v0 = format!("v{}", a % nvars);
        let v1 = format!("v{}", (a / 7) % nvars);
        let src = format!("{v0} = {b} => ~({v1} < {b}) \\/ {v0} + 1 > {v1}");
        let f = parse_formula(&src).unwrap();
        let printed = f.to_string();
        let g = parse_formula(&printed).unwrap();
        let ctx = EvalContext::new(&space);
        assert_eq!(ctx.eval(&f).unwrap(), ctx.eval(&g).unwrap());
    });
}

/// The paper's exact (12) counterexample, deterministic.
#[test]
fn wcyl_is_not_disjunctive_eq12() {
    let space = StateSpace::builder()
        .nat_var("x", 3)
        .unwrap()
        .nat_var("y", 3)
        .unwrap()
        .build()
        .unwrap();
    let x = space.var("x").unwrap();
    let y = space.var("y").unwrap();
    let view = VarSet::from_vars([x]);
    let x_pos = Predicate::from_var_fn(&space, x, |v| v > 0);
    let y_pos = Predicate::from_var_fn(&space, y, |v| v > 0);
    assert!(wcyl(&view, &x_pos.and(&y_pos)).is_false());
    assert!(wcyl(&view, &x_pos.and(&y_pos.negate())).is_false());
    assert_eq!(wcyl(&view, &x_pos), x_pos);
}
