//! The alternating-bit protocol \[BSW69\] — one of the finite-state
//! refinements §6 points to — as both a bounded UNITY model and a
//! simulator (experiment E11).
//!
//! ABP replaces the unbounded sequence numbers of Figure 4 with a single
//! alternating bit. It is correct over a channel that may lose, duplicate
//! (the *current* message) or detectably corrupt, but **not reorder or
//! replay arbitrarily old messages** — replaying a frame from two
//! generations ago carries the same bit as the expected frame and would be
//! accepted with the wrong value. The bounded model therefore uses a
//! single-slot channel abstraction: only the most recently transmitted
//! frame/ack (or `⊥`) can arrive. The simulator matches.

use std::sync::Arc;

use kpt_channel::{Delivery, FaultConfig, FaultyChannel};
use kpt_state::{Predicate, StateSpace, VarId};
use kpt_unity::{CompiledProgram, Program, Statement, UnityError};

use crate::encoding::Encoding;
use crate::sim::{SimConfig, SimReport};

/// Decoded state of the ABP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbpSnapshot {
    /// Input sequence code.
    pub x: u64,
    /// Sender position.
    pub i: u64,
    /// Ack slot: `None` = `⊥`, `Some(bit)`.
    pub z: Option<u64>,
    /// Whether the current frame has been transmitted at least once.
    pub sent_s: bool,
    /// Delivered prefix code.
    pub w: u64,
    /// Receiver position.
    pub j: u64,
    /// Data slot: `None` = `⊥`, `Some((bit, α))`.
    pub zp: Option<(u64, u64)>,
    /// Whether the current ack has been transmitted at least once.
    pub sent_r: bool,
}

/// The bounded alternating-bit model.
#[derive(Debug, Clone)]
pub struct AltBitModel {
    enc: Encoding,
    space: Arc<StateSpace>,
    program: Program,
    v_x: VarId,
    v_i: VarId,
    v_z: VarId,
    v_sent_s: VarId,
    v_w: VarId,
    v_j: VarId,
    v_zp: VarId,
    v_sent_r: VarId,
}

/// The ack bit the receiver currently (re)transmits: the bit of the last
/// accepted frame, i.e. `(j + 1) mod 2` (before any delivery, `j = 0`,
/// the receiver acks bit 1 = "nothing with bit 0 accepted yet").
fn ack_bit(j: u64) -> u64 {
    (j + 1) % 2
}

impl AltBitModel {
    /// Build the model for alphabet size `a` and sequence length `l`.
    ///
    /// # Errors
    /// Propagates construction errors.
    pub fn build(a: usize, l: usize) -> Result<Self, UnityError> {
        let enc = Encoding::new(a, l);
        let zp_labels: Vec<String> = std::iter::once("bot".to_owned())
            .chain(
                (0..2u64)
                    .flat_map(|b| (0..a as u64).map(move |d| (b, d)).collect::<Vec<_>>())
                    .map(|(b, d)| format!("f{b}{}", enc.letter(d))),
            )
            .collect();
        let space = StateSpace::builder()
            .enum_var("xseq", enc.x_labels())?
            .nat_var("i", l as u64 + 1)?
            .enum_var("z", ["bot", "b0", "b1"])?
            .bool_var("sentS")?
            .enum_var("w", enc.w_labels())?
            .nat_var("j", l as u64 + 1)?
            .enum_var("zp", zp_labels)?
            .bool_var("sentR")?
            .build()?;
        let v_x = space.var("xseq")?;
        let v_i = space.var("i")?;
        let v_z = space.var("z")?;
        let v_sent_s = space.var("sentS")?;
        let v_w = space.var("w")?;
        let v_j = space.var("j")?;
        let v_zp = space.var("zp")?;
        let v_sent_r = space.var("sentR")?;
        let mut model = AltBitModel {
            enc,
            space: Arc::clone(&space),
            program: Program::builder("altbit", &space)
                .statement(Statement::new("placeholder"))
                .build()?,
            v_x,
            v_i,
            v_z,
            v_sent_s,
            v_w,
            v_j,
            v_zp,
            v_sent_r,
        };
        model.program = model.build_program()?;
        Ok(model)
    }

    fn build_program(&self) -> Result<Program, UnityError> {
        let enc = self.enc;
        let l = enc.len() as u64;
        let a = enc.alphabet() as u64;
        let (v_x, v_i, v_z, v_sent_s, v_w, v_j, v_zp, v_sent_r) = (
            self.v_x,
            self.v_i,
            self.v_z,
            self.v_sent_s,
            self.v_w,
            self.v_j,
            self.v_zp,
            self.v_sent_r,
        );
        let me = self.clone_for_closures();

        let init = self.pred(|s| {
            s.i == 0
                && s.z.is_none()
                && !s.sent_s
                && enc.w_len(s.w) == 0
                && s.j == 0
                && s.zp.is_none()
                && !s.sent_r
        });

        let mut builder = Program::builder("altbit", &self.space)
            .init_pred(init)
            .process("Sender", ["xseq", "i", "z", "sentS"])?
            .process("Receiver", ["w", "j", "zp", "sentR"])?;

        // Receivable ack values for the sender: ⊥, or the receiver's
        // current ack bit if it has been sent.
        // n = 0: ⊥; n = 1: the in-flight ack.
        for n in 0..2u64 {
            let guard = me.pred(move |s| s.i < l && s.z != Some(s.i % 2) && (n == 0 || s.sent_r));
            builder = builder.statement(
                Statement::new(if n == 0 {
                    "s_send_recv_bot"
                } else {
                    "s_send_recv_ack"
                })
                .guard_pred(guard)
                .update_with(move |sp: &StateSpace, st: u64| {
                    let new_z = if n == 0 {
                        0
                    } else {
                        1 + ack_bit(sp.value(st, v_j))
                    };
                    let st = sp.with_value(st, v_sent_s, 1);
                    sp.with_value(st, v_z, new_z)
                }),
            );
            let guard = me.pred(move |s| s.i < l && s.z == Some(s.i % 2) && (n == 0 || s.sent_r));
            builder = builder.statement(
                Statement::new(if n == 0 {
                    "s_next_recv_bot"
                } else {
                    "s_next_recv_ack"
                })
                .guard_pred(guard)
                .update_with(move |sp: &StateSpace, st: u64| {
                    let i = sp.value(st, v_i);
                    let new_z = if n == 0 {
                        0
                    } else {
                        1 + ack_bit(sp.value(st, v_j))
                    };
                    let st = sp.with_value(st, v_i, i + 1);
                    let st = sp.with_value(st, v_sent_s, 0);
                    sp.with_value(st, v_z, new_z)
                }),
            );
        }

        // Receiver: deliver when the frame carries the expected bit.
        // Receivable data values: ⊥, or the sender's current frame if sent.
        for alpha in 0..a {
            for n in 0..2u64 {
                let guard = me.pred(move |s| {
                    s.j < l && s.zp == Some((s.j % 2, alpha)) && (n == 0 || (s.sent_s && s.i < l))
                });
                builder = builder.statement(
                    Statement::new(format!(
                        "r_deliver_{}_recv_{}",
                        enc.letter(alpha),
                        if n == 0 { "bot" } else { "frame" }
                    ))
                    .guard_pred(guard)
                    .update_with(move |sp: &StateSpace, st: u64| {
                        let w = sp.value(st, v_w);
                        let j = sp.value(st, v_j);
                        let x = sp.value(st, v_x);
                        let i = sp.value(st, v_i);
                        let new_w = if enc.w_len(w) < enc.len() {
                            enc.w_append(w, alpha)
                        } else {
                            w
                        };
                        let new_zp = if n == 0 || i >= l {
                            0
                        } else {
                            1 + (i % 2) * a + enc.x_digit(x, i as usize)
                        };
                        let st = sp.with_value(st, v_w, new_w);
                        let st = sp.with_value(st, v_j, j + 1);
                        let st = sp.with_value(st, v_sent_r, 0);
                        sp.with_value(st, v_zp, new_zp)
                    }),
                );
            }
        }

        // Receiver: (re)send the current ack when the slot is not the
        // expected frame.
        for n in 0..2u64 {
            let guard = me.pred(move |s| {
                !matches!(s.zp, Some((b, _)) if b == s.j % 2) && (n == 0 || (s.sent_s && s.i < l))
            });
            builder = builder.statement(
                Statement::new(if n == 0 {
                    "r_ack_recv_bot"
                } else {
                    "r_ack_recv_frame"
                })
                .guard_pred(guard)
                .update_with(move |sp: &StateSpace, st: u64| {
                    let x = sp.value(st, v_x);
                    let i = sp.value(st, v_i);
                    let new_zp = if n == 0 || i >= l {
                        0
                    } else {
                        1 + (i % 2) * a + enc.x_digit(x, i as usize)
                    };
                    let st = sp.with_value(st, v_sent_r, 1);
                    sp.with_value(st, v_zp, new_zp)
                }),
            );
        }

        builder.build()
    }

    fn clone_for_closures(&self) -> AltBitModel {
        self.clone()
    }

    /// The state space.
    pub fn space(&self) -> &Arc<StateSpace> {
        &self.space
    }

    /// The UNITY program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Compile the program.
    ///
    /// # Errors
    /// Propagates compilation errors.
    pub fn compile(&self) -> Result<CompiledProgram, UnityError> {
        self.program.compile()
    }

    /// Decode a state.
    pub fn snapshot(&self, st: u64) -> AbpSnapshot {
        let a = self.enc.alphabet() as u64;
        let zp_raw = self.space.value(st, self.v_zp);
        AbpSnapshot {
            x: self.space.value(st, self.v_x),
            i: self.space.value(st, self.v_i),
            z: match self.space.value(st, self.v_z) {
                0 => None,
                v => Some(v - 1),
            },
            sent_s: self.space.value_bool(st, self.v_sent_s),
            w: self.space.value(st, self.v_w),
            j: self.space.value(st, self.v_j),
            zp: (zp_raw > 0).then(|| ((zp_raw - 1) / a, (zp_raw - 1) % a)),
            sent_r: self.space.value_bool(st, self.v_sent_r),
        }
    }

    /// Build a predicate from a snapshot test.
    pub fn pred<F: Fn(AbpSnapshot) -> bool>(&self, f: F) -> Predicate {
        Predicate::from_fn(&self.space, |st| f(self.snapshot(st)))
    }

    /// Safety: the delivered prefix matches the input.
    pub fn w_prefix_of_x(&self) -> Predicate {
        let enc = self.enc;
        self.pred(move |s| enc.w_prefix_of_x(s.w, s.x))
    }

    /// `j = k` / `j > k` for the liveness spec.
    pub fn j_eq(&self, k: u64) -> Predicate {
        self.pred(move |s| s.j == k)
    }

    /// `j > k`.
    pub fn j_gt(&self, k: u64) -> Predicate {
        self.pred(move |s| s.j > k)
    }
}

/// Run the alternating-bit protocol in simulation over faulty channels.
/// Reordering must be disabled in the fault model (ABP's correctness
/// condition); duplication is tolerated because the channel here never
/// replays frames older than the latest.
///
/// # Panics
/// Panics if the config enables reordering, or on a safety violation.
#[must_use]
pub fn run_altbit(config: &SimConfig) -> SimReport {
    assert_eq!(
        config.data_faults.reorder, 0.0,
        "the alternating-bit protocol requires a non-reordering channel"
    );
    let total = config.x.len();
    let mut data: FaultyChannel<(u8, u8)> =
        FaultyChannel::new(config.data_faults, config.seed.wrapping_mul(2));
    let mut acks: FaultyChannel<u8> = FaultyChannel::new(
        config.ack_faults,
        config.seed.wrapping_mul(2).wrapping_add(1),
    );
    let (mut i, mut j) = (0usize, 0usize);
    let mut w: Vec<u8> = Vec::new();
    let (mut data_sent, mut acks_sent) = (0u64, 0u64);
    let mut steps = 0u64;

    while (j < total || i < total) && steps < config.max_steps {
        // Sender.
        let sender_bit = (i % 2) as u8;
        match recv(&mut acks) {
            Some(b) if b == sender_bit && i < total => {
                i += 1;
            }
            _ => {
                if i < total {
                    data.send((sender_bit, config.x[i]));
                    data_sent += 1;
                }
            }
        }
        // Receiver.
        let expected = (j % 2) as u8;
        match recv(&mut data) {
            Some((b, alpha)) if b == expected => {
                w.push(alpha);
                j += 1;
            }
            _ => {
                acks.send(((j + 1) % 2) as u8);
                acks_sent += 1;
            }
        }
        steps += 2;
        assert!(
            w.as_slice() == &config.x[..w.len()],
            "altbit safety violation: {w:?}"
        );
    }
    SimReport {
        completed: j >= total && i >= total,
        delivered: w,
        data_sent,
        acks_sent,
        steps,
    }
}

fn recv<M: Clone>(ch: &mut FaultyChannel<M>) -> Option<M> {
    match ch.recv() {
        Some(Delivery::Intact(m)) => Some(m),
        _ => None,
    }
}

/// A [`SimConfig`] whose channels are valid for ABP (no reordering, and —
/// matching the single-slot model — no duplication of stale frames beyond
/// the channel queue).
#[must_use]
pub fn abp_config(x: Vec<u8>, loss: f64, seed: u64) -> SimConfig {
    SimConfig {
        x,
        data_faults: FaultConfig::paper(loss, 0.0, loss / 2.0, 32),
        ack_faults: FaultConfig::paper(loss, 0.0, loss / 2.0, 32),
        seed,
        apriori_prefix: 0,
        max_steps: 10_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_state::Predicate;

    #[test]
    fn bounded_model_is_safe_and_live() {
        let m = AltBitModel::build(2, 2).unwrap();
        let c = m.compile().unwrap();
        assert!(c.invariant(&m.w_prefix_of_x()), "ABP safety");
        for k in 0..2 {
            assert!(
                c.leads_to_holds(&m.j_eq(k), &m.j_gt(k)),
                "ABP liveness k={k}"
            );
        }
        assert!(c.leads_to_holds(&Predicate::tt(m.space()), &m.j_eq(2)));
    }

    #[test]
    fn model_is_much_smaller_than_figure4() {
        // The point of the refinement: finite (and small) state.
        let abp = AltBitModel::build(2, 2).unwrap();
        let fig4 =
            crate::standard::StandardModel::build(2, 2, crate::standard::ModelOptions::default())
                .unwrap();
        assert!(abp.space().num_states() * 2 < fig4.space().num_states());
    }

    #[test]
    fn simulation_completes_reliably_and_faultily() {
        let x: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
        let r = run_altbit(&SimConfig::reliable(x.clone()));
        assert!(r.completed);
        assert_eq!(r.delivered, x);
        for seed in 0..5 {
            let r = run_altbit(&abp_config(x.clone(), 0.3, seed));
            assert!(r.completed, "seed {seed}");
            assert_eq!(r.delivered, x);
        }
    }

    #[test]
    #[should_panic(expected = "non-reordering")]
    fn reordering_config_rejected() {
        let mut cfg = SimConfig::reliable(vec![0, 1]);
        cfg.data_faults.reorder = 0.5;
        let _ = run_altbit(&cfg);
    }

    #[test]
    fn snapshot_decoding() {
        let m = AltBitModel::build(2, 2).unwrap();
        let init = m.program().init().witness().unwrap();
        let s = m.snapshot(init);
        assert_eq!(s.i, 0);
        assert_eq!(s.j, 0);
        assert_eq!(s.z, None);
        assert_eq!(s.zp, None);
        assert!(!s.sent_s && !s.sent_r);
    }
}
