//! E1 bench: the weakest-cylinder operator `wcyl` (eq. 6) and the
//! underlying quantifier sweeps, across state-space sizes and view sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpt_core::wcyl;
use kpt_state::{forall_set, Predicate, StateSpace, VarSet};

fn space_with_vars(nvars: usize, dom: u64) -> std::sync::Arc<StateSpace> {
    let mut b = StateSpace::builder();
    for i in 0..nvars {
        b = b.nat_var(&format!("v{i}"), dom).unwrap();
    }
    b.build().unwrap()
}

fn bench_wcyl(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcyl");
    for nvars in [4usize, 6, 8] {
        let space = space_with_vars(nvars, 4); // 4^n states
        let p = Predicate::from_fn(&space, |s| s % 3 == 0);
        // Half the variables visible.
        let view = VarSet::from_vars(space.vars().take(nvars / 2));
        group.bench_with_input(
            BenchmarkId::new("half_view", format!("{}states", space.num_states())),
            &(&p, view),
            |b, (p, view)| b.iter(|| wcyl(view, p)),
        );
        let empty = VarSet::EMPTY;
        group.bench_with_input(
            BenchmarkId::new("empty_view", format!("{}states", space.num_states())),
            &(&p, empty),
            |b, (p, view)| b.iter(|| wcyl(view, p)),
        );
    }
    group.finish();
}

fn bench_quantifier_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("forall_set");
    for nvars in [4usize, 6, 8] {
        let space = space_with_vars(nvars, 4);
        let p = Predicate::from_fn(&space, |s| s % 5 != 0);
        let all = space.all_vars();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}states_allvars", space.num_states())),
            &(&p, all),
            |b, (p, all)| b.iter(|| forall_set(p, *all)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wcyl, bench_quantifier_sweep);
criterion_main!(benches);
