//! Knowledge-based protocols (§4): the non-monotone fixpoint equation (25)
//! and its solvers.
//!
//! A knowledge-based protocol is a UNITY program whose guards may mention
//! `K{i}`. Because `K_i` is defined from `SI` (eq. 13) while `SI` is
//! defined from the program's transitions (eq. 1), a KBP denotes a
//! *fixpoint equation* rather than a program:
//!
//! ```text
//! SI  ≝  strongest x : [ŜP.x ⇒ x] ∧ [init ⇒ x]          (25)
//! ```
//!
//! where `ŜP` is `SP` with every knowledge guard evaluated against the
//! candidate `x`. On a finite space, `x` *solves* the KBP exactly when `x`
//! equals the strongest invariant of the standard program obtained by
//! substituting `x` for `SI` in the knowledge guards. Since `ŜP` is not
//! monotone, a solution may not exist (Figure 1), and when solutions exist
//! the set need not have a strongest element, nor behave monotonically in
//! `init` (Figure 2). This module provides:
//!
//! * [`Kbp::is_solution`] — the verification predicate;
//! * [`Kbp::solve_exhaustive`] — complete enumeration over candidate
//!   invariants `x ⊇ init` (small spaces): finds **all** solutions or
//!   proves there are none;
//! * [`Kbp::solve_iterative`] — the scalable iteration
//!   `x_{k+1} = SI(program[K @ x_k])` with cycle detection; sound when it
//!   converges (the result is verified), inconclusive otherwise.

use std::collections::HashMap;
use std::sync::Mutex;

use kpt_state::{Predicate, VarSet};
use kpt_testkit::pool;
use kpt_unity::{CompiledProgram, Program};

use crate::error::CoreError;
use crate::knowledge::KnowledgeOperator;

/// Upper bound on memoized `candidate ↦ SI` pairs (exhaustive search over
/// many free states would otherwise grow the cache exponentially). When
/// the cap is reached the cache is *cleared* and refilled (clear-on-full)
/// rather than freezing, so long iterative runs keep their recent working
/// set memoized; [`Kbp::cache_counters`] makes the churn observable.
const SI_CACHE_CAP: usize = 4096;

/// The memo plus its observability counters, all under one lock.
#[derive(Debug, Clone, Default)]
struct SiCache {
    map: HashMap<Predicate, Predicate>,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

impl SiCache {
    /// Insert with clear-on-full eviction.
    fn insert(&mut self, candidate: Predicate, si: Predicate) {
        if self.map.len() >= SI_CACHE_CAP {
            self.map.clear();
            self.evictions += 1;
            kpt_obs::counter!("kbp.si_cache.evictions").incr();
        }
        self.inserts += 1;
        self.map.insert(candidate, si);
    }
}

/// Smallest candidate count worth fanning out over the pool. Each
/// candidate costs a few microseconds (compile + frontier SI on the small
/// spaces exhaustive search is for), so below a few thousand candidates
/// thread spawn and merge overhead eats the win — measured flat at 256
/// candidates on the kernels bench.
const PAR_MIN_CANDIDATES: u64 = 4096;

/// A knowledge-based protocol: a UNITY [`Program`] whose guards may mention
/// knowledge, together with the eq. (25) solution machinery.
///
/// Evaluating a candidate `x` — compiling the standard program at `x` and
/// taking its strongest invariant — is the solver's unit of work; results
/// are memoized per candidate, so the cycle-detection replays of
/// [`Kbp::solve_iterative`] and repeated [`Kbp::is_solution`] probes are
/// answered from cache.
#[derive(Debug)]
pub struct Kbp {
    program: Program,
    views: Vec<(String, VarSet)>,
    si_cache: Mutex<SiCache>,
}

impl Clone for Kbp {
    fn clone(&self) -> Self {
        Kbp {
            program: self.program.clone(),
            views: self.views.clone(),
            si_cache: Mutex::new(self.si_cache.lock().expect("SI cache poisoned").clone()),
        }
    }
}

impl Kbp {
    /// Wrap a program (knowledge guards allowed but not required — a
    /// standard program is the degenerate KBP whose solution is its own
    /// `SI`).
    pub fn new(program: Program) -> Self {
        let views = program
            .processes()
            .iter()
            .map(|p| (p.name().to_owned(), p.view()))
            .collect();
        Kbp {
            program,
            views,
            si_cache: Mutex::new(SiCache::default()),
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The same KBP with a different initial condition (for studying the
    /// Figure-2 non-monotonicity). The SI cache is *not* carried over: the
    /// fixpoint equation depends on `init`.
    #[must_use]
    pub fn with_init(&self, init: Predicate) -> Kbp {
        Kbp::new(self.program.with_init(init))
    }

    /// Compile the *standard* program obtained by evaluating every
    /// knowledge guard against the candidate invariant `x` (the paper's
    /// "replacing all the knowledge predicates with the corresponding
    /// standard predicate obtained using SI").
    ///
    /// # Errors
    /// Compilation errors from the underlying program.
    pub fn compile_at(&self, x: &Predicate) -> Result<CompiledProgram, CoreError> {
        // One shared knowledge context per candidate: every guard of every
        // statement evaluates its K{i} subterms through the same memo.
        let op = KnowledgeOperator::with_si(self.program.space(), self.views.clone(), x.clone())?;
        let f = op.knowledge_fn();
        Ok(self.program.compile_with_knowledge(f.as_ref())?)
    }

    /// The eq. (25) verification: `x` solves the KBP iff `x` is exactly the
    /// strongest invariant of the standard program obtained at `x`.
    ///
    /// # Errors
    /// Compilation errors.
    pub fn is_solution(&self, x: &Predicate) -> Result<bool, CoreError> {
        Ok(&self.iterate(x)? == x)
    }

    /// One step of the solution iteration: the strongest invariant of the
    /// standard program obtained at `x`. Memoized per candidate.
    ///
    /// # Errors
    /// Compilation errors.
    pub fn iterate(&self, x: &Predicate) -> Result<Predicate, CoreError> {
        {
            let mut cache = self.si_cache.lock().expect("SI cache poisoned");
            if let Some(si) = cache.map.get(x).cloned() {
                cache.hits += 1;
                kpt_obs::counter!("kbp.si_cache.hits").incr();
                return Ok(si);
            }
            cache.misses += 1;
            kpt_obs::counter!("kbp.si_cache.misses").incr();
        }
        let si = self.compile_at(x)?.si().clone();
        self.si_cache
            .lock()
            .expect("SI cache poisoned")
            .insert(x.clone(), si.clone());
        Ok(si)
    }

    /// Number of memoized `candidate ↦ SI` evaluations.
    pub fn cached_candidates(&self) -> usize {
        self.si_cache.lock().expect("SI cache poisoned").map.len()
    }

    /// `(cache hits, cache misses)` of the `candidate ↦ SI` memo so far
    /// (mirrors [`crate::KnowledgeContext::cache_counters`]). A growing
    /// miss count with a stable [`Kbp::cached_candidates`] signals
    /// clear-on-full churn; see [`Kbp::cache_evictions`].
    pub fn cache_counters(&self) -> (u64, u64) {
        let cache = self.si_cache.lock().expect("SI cache poisoned");
        (cache.hits, cache.misses)
    }

    /// How many times the `candidate ↦ SI` memo was cleared because it
    /// reached capacity.
    pub fn cache_evictions(&self) -> u64 {
        self.si_cache.lock().expect("SI cache poisoned").evictions
    }

    /// Full cache behaviour of the `candidate ↦ SI` memo, in the same
    /// shape as [`crate::KnowledgeContext::cache_stats`].
    pub fn cache_stats(&self) -> kpt_obs::CacheStats {
        let cache = self.si_cache.lock().expect("SI cache poisoned");
        kpt_obs::CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            inserts: cache.inserts,
            entries: cache.map.len(),
        }
    }

    /// Complete enumeration of all solutions, over candidates
    /// `x = init ∪ S` for every subset `S` of the non-init states, fanned
    /// out across the [`pool`] workers (`KPT_THREADS` / available cores).
    ///
    /// Each worker evaluates its candidates thread-locally (no lock on the
    /// shared memo); verified solutions and a capacity-bounded sample of
    /// `candidate ↦ SI` pairs are merged at the end, so the result — and
    /// the enumeration order of [`SolutionSet::solutions`] — is identical
    /// to [`Kbp::solve_exhaustive_serial`] for every thread count.
    ///
    /// # Errors
    /// [`CoreError::SearchTooLarge`] if there are more than
    /// `max_free_states` (or ≥ 64, the mask width) non-init states — the
    /// search is `2^free`; compilation errors otherwise.
    ///
    /// Small searches (< [`PAR_MIN_CANDIDATES`] candidates) run serially
    /// even on multicore machines: at a few microseconds per candidate the
    /// fan-out's spawn/merge overhead costs more than it saves. Use
    /// [`Kbp::solve_exhaustive_with`] to force a worker count.
    ///
    /// When an instance is rejected with [`CoreError::SearchTooLarge`],
    /// the symbolic backend is the escape hatch: `kpt_bdd::SymbolicKbp`
    /// runs the same eq. (25) iteration over ROBDD roots, where each
    /// candidate is one shared graph instead of one bitset per subset, so
    /// it handles the ≥ 64-free-state spaces that no exhaustive
    /// enumeration can touch (it searches for *a* fixpoint iteratively
    /// rather than enumerating all of them).
    pub fn solve_exhaustive(&self, max_free_states: u64) -> Result<SolutionSet, CoreError> {
        let nfree = self.program.init().negate().count();
        let threads = if nfree < 64 && (1u64 << nfree) < PAR_MIN_CANDIDATES {
            1
        } else {
            pool::num_threads()
        };
        self.solve_exhaustive_with(threads, max_free_states)
    }

    /// [`Kbp::solve_exhaustive`] pinned to one worker: the reference
    /// enumeration the differential suites compare the parallel path
    /// against.
    ///
    /// # Errors
    /// As for [`Kbp::solve_exhaustive`].
    pub fn solve_exhaustive_serial(&self, max_free_states: u64) -> Result<SolutionSet, CoreError> {
        self.solve_exhaustive_with(1, max_free_states)
    }

    /// [`Kbp::solve_exhaustive`] with an explicit worker count.
    ///
    /// # Errors
    /// As for [`Kbp::solve_exhaustive`].
    pub fn solve_exhaustive_with(
        &self,
        threads: usize,
        max_free_states: u64,
    ) -> Result<SolutionSet, CoreError> {
        let space = self.program.space();
        let init = self.program.init();
        let free: Vec<u64> = init.negate().iter().collect();
        let nfree = free.len() as u64;
        // `nfree >= 64` would overflow the u64 candidate mask no matter
        // what limit the caller allows: a typed error, never a panic or a
        // wrapped shift.
        if nfree > max_free_states || nfree >= 64 {
            kpt_obs::counter!("solver.too_large").incr();
            return Err(CoreError::SearchTooLarge {
                free_states: nfree,
                limit: max_free_states.min(63),
            });
        }
        let mut span = kpt_obs::span("solver.exhaustive");
        span.field("free_states", nfree);
        span.field("threads", threads as u64);
        let total = 1u64
            .checked_shl(nfree as u32)
            .expect("nfree < 64 guarantees the shift is in range");
        let candidate_at = |mask: u64| {
            Predicate::from_indices(
                space,
                init.iter().chain(
                    free.iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &s)| s),
                ),
            )
        };
        if threads <= 1 {
            // Serial reference path, riding (and filling) the shared memo.
            let mut solutions = Vec::new();
            for mask in 0..total {
                let candidate = candidate_at(mask);
                if self.is_solution(&candidate)? {
                    solutions.push(candidate);
                }
            }
            record_exhaustive(span, total, solutions.len());
            return Ok(SolutionSet {
                solutions,
                candidates_checked: total,
            });
        }
        // Parallel fan-out: contiguous mask ranges, several per worker so
        // the pool's stealing can rebalance uneven candidate costs. Each
        // worker evaluates candidates thread-locally via `compile_at`.
        let nchunks = ((threads as u64) * 8).min(total).max(1);
        let chunk = total.div_ceil(nchunks);
        let ranges: Vec<(u64, u64)> = (0..nchunks)
            .map(|c| ((c * chunk).min(total), ((c + 1) * chunk).min(total)))
            .collect();
        let keep_per_chunk = SI_CACHE_CAP / nchunks as usize;
        type ChunkOut = (Vec<Predicate>, Vec<(Predicate, Predicate)>);
        let chunks: Vec<Result<ChunkOut, CoreError>> =
            pool::parallel_map_with(threads, &ranges, |&(lo, hi)| {
                let mut solutions = Vec::new();
                let mut sample = Vec::new();
                for mask in lo..hi {
                    let candidate = candidate_at(mask);
                    let si = self.compile_at(&candidate)?.si().clone();
                    if si == candidate {
                        solutions.push(candidate.clone());
                    }
                    if sample.len() < keep_per_chunk {
                        sample.push((candidate, si));
                    }
                }
                Ok((solutions, sample))
            });
        // Merge in chunk (= mask) order: solutions concatenate to exactly
        // the serial enumeration order; sampled SI pairs refill the memo.
        let mut solutions = Vec::new();
        let mut cache = self.si_cache.lock().expect("SI cache poisoned");
        for (chunk, &(lo, hi)) in chunks.into_iter().zip(&ranges) {
            let (sols, sample) = chunk?;
            solutions.extend(sols);
            cache.misses += hi - lo;
            for (candidate, si) in sample {
                cache.insert(candidate, si);
            }
        }
        drop(cache);
        record_exhaustive(span, total, solutions.len());
        Ok(SolutionSet {
            solutions,
            candidates_checked: total,
        })
    }

    /// Explain a [`SolutionSet`] as a [`kpt_obs::Verdict`] — in particular,
    /// give a Figure-1-style "no possible choice for SI" outcome concrete
    /// states to point at. The witnesses of a no-solution verdict are the
    /// initial states: every eq. (25) candidate must contain them, and the
    /// exhaustive search proved no superset of them is consistent with the
    /// knowledge guards. The verdict is also reported to the trace.
    pub fn explain_solutions(&self, label: &str, sols: &SolutionSet) -> kpt_obs::Verdict {
        let verdict = if sols.is_empty() {
            kpt_obs::Verdict::fail(
                format!("kbp {label} solvable"),
                format!(
                    "none of the {} candidate invariants satisfies eq. (25); \
                     the knowledge guards admit no consistent SI containing \
                     the initial states",
                    sols.candidates_checked()
                ),
                kpt_state::witnesses(self.program.init(), 4),
            )
        } else {
            kpt_obs::Verdict::pass(
                format!("kbp {label} solvable"),
                format!(
                    "{} of {} candidate invariants solve eq. (25){}",
                    sols.len(),
                    sols.candidates_checked(),
                    if sols.strongest().is_some() {
                        "; a strongest solution exists"
                    } else {
                        "; no strongest solution (incomparable minima)"
                    }
                ),
            )
        };
        kpt_obs::report_verdict(&verdict);
        verdict
    }

    /// The iteration `x_{k+1} = SI(program[K @ x_k])` from `x_0 = init`,
    /// with cycle detection. Any claimed solution is verified before being
    /// returned.
    ///
    /// # Errors
    /// Compilation errors.
    pub fn solve_iterative(&self, max_iterations: usize) -> Result<IterativeOutcome, CoreError> {
        let mut span = kpt_obs::span("solver.iterative");
        kpt_obs::counter!("solver.iterative.runs").incr();
        let mut x = self.program.init().clone();
        let mut seen: Vec<Predicate> = vec![x.clone()];
        for k in 0..max_iterations {
            let next = self.iterate(&x)?;
            if span.is_live() {
                // Stream one progress event per eq. (25) iteration so long
                // solves are observable while they run.
                kpt_obs::event(
                    "solver.progress",
                    &[
                        ("iteration", (k + 1).into()),
                        ("candidate_states", next.count().into()),
                        ("converged", (next == x).into()),
                    ],
                );
            }
            if next == x {
                // Fixpoint of the iteration — i.e. a genuine solution.
                span.field("outcome", "converged");
                span.field("iterations", (k + 1) as u64);
                span.finish();
                return Ok(IterativeOutcome::Converged {
                    solution: x,
                    iterations: k + 1,
                });
            }
            if let Some(pos) = seen.iter().position(|p| p == &next) {
                span.field("outcome", "cycle");
                span.field("period", (seen.len() - pos) as u64);
                span.finish();
                return Ok(IterativeOutcome::Cycle {
                    period: seen.len() - pos,
                    entered_after: pos,
                });
            }
            seen.push(next.clone());
            x = next;
        }
        span.field("outcome", "inconclusive");
        span.field("iterations", max_iterations as u64);
        span.finish();
        Ok(IterativeOutcome::Inconclusive {
            iterations: max_iterations,
        })
    }
}

/// Fold one exhaustive run into the `solver.*` metrics and close its span.
fn record_exhaustive(mut span: kpt_obs::Span, candidates: u64, solutions: usize) {
    kpt_obs::counter!("solver.exhaustive.runs").incr();
    kpt_obs::counter!("solver.candidates").add(candidates);
    kpt_obs::counter!("solver.solutions").add(solutions as u64);
    span.field("candidates", candidates);
    span.field("solutions", solutions as u64);
    span.finish();
}

/// The outcome of [`Kbp::solve_iterative`].
#[derive(Debug, Clone)]
pub enum IterativeOutcome {
    /// The iteration reached a fixpoint, which is a verified solution of
    /// eq. (25).
    Converged {
        /// The solution.
        solution: Predicate,
        /// Iterations used.
        iterations: usize,
    },
    /// The iteration entered a cycle of the given period — strong evidence
    /// (though not proof) of Figure-1-style ill-posedness; use
    /// [`Kbp::solve_exhaustive`] on small spaces to decide.
    Cycle {
        /// Length of the cycle.
        period: usize,
        /// Iterations before entering the cycle.
        entered_after: usize,
    },
    /// The iteration budget ran out.
    Inconclusive {
        /// Iterations used.
        iterations: usize,
    },
}

impl IterativeOutcome {
    /// The solution, if the iteration converged.
    pub fn solution(&self) -> Option<&Predicate> {
        match self {
            IterativeOutcome::Converged { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

/// The complete set of eq. (25) solutions found by exhaustive search.
#[derive(Debug, Clone)]
pub struct SolutionSet {
    solutions: Vec<Predicate>,
    candidates_checked: u64,
}

impl SolutionSet {
    /// All solutions (in candidate enumeration order).
    pub fn solutions(&self) -> &[Predicate] {
        &self.solutions
    }

    /// Whether the KBP has no solution at all (the Figure 1 phenomenon:
    /// "there is no possible choice for SI").
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// How many candidates the search verified.
    pub fn candidates_checked(&self) -> u64 {
        self.candidates_checked
    }

    /// The *strongest* solution — the `SI` that eq. (25) asks for — if the
    /// solution set has a least element; `None` if there is no solution or
    /// no unique strongest one (both possible for non-monotone `ŜP`).
    pub fn strongest(&self) -> Option<&Predicate> {
        self.solutions
            .iter()
            .find(|s| self.solutions.iter().all(|o| s.entails(o)))
    }

    /// The minimal solutions (those with no strictly stronger solution).
    pub fn minimal(&self) -> Vec<&Predicate> {
        self.solutions
            .iter()
            .filter(|s| !self.solutions.iter().any(|o| o != *s && o.entails(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_state::StateSpace;
    use kpt_unity::{Program, Statement};

    /// A standard program viewed as a KBP: its unique minimal solution
    /// containing behaviour is its own SI... in fact *any* superset-closed
    /// candidate works only if it equals sst(init) of the (constant)
    /// program — exactly one solution.
    #[test]
    fn standard_program_has_exactly_one_solution() {
        let space = StateSpace::builder()
            .nat_var("i", 3)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("std", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 2")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program.clone());
        let sols = kbp.solve_exhaustive(16).unwrap();
        assert_eq!(sols.len(), 1);
        let expected = program.compile().unwrap().si().clone();
        assert_eq!(sols.solutions()[0], expected);
        assert_eq!(sols.strongest(), Some(&expected));
        assert_eq!(sols.minimal(), vec![&expected]);
        assert_eq!(sols.candidates_checked(), 4); // 2 free states (i=1,2 free... init fixes i=0, free = {1,2})
                                                  // The iterative solver agrees.
        match kbp.solve_iterative(10).unwrap() {
            IterativeOutcome::Converged { solution, .. } => assert_eq!(solution, expected),
            other => panic!("expected convergence, got {other:?}"),
        }
    }

    /// A self-fulfilling knowledge guard with several solutions: process P
    /// sees everything; statement `b := true if K{P}(b)`. Candidate
    /// x = {init} works (K(b) false at init, b stays false). Candidate
    /// including b-states... K{P}(b) with full view = b on x-states; the
    /// statement then sets b:=true where b already true — no new states.
    /// So x = {¬b-init} is a solution; is {¬b, b} also one? SI of the
    /// induced program from init = {¬b} is just {¬b} ≠ x. So unique again.
    /// To get multiple solutions we need init to *contain* the self-
    /// fulfilling region: init = true.
    #[test]
    fn self_fulfilling_guard_solution_structure() {
        let space = StateSpace::builder()
            .bool_var("b")
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("self", &space)
            .init_str("~b")
            .unwrap()
            .process("P", ["b"])
            .unwrap()
            .statement(
                Statement::new("s")
                    .guard_str("K{P}(b)")
                    .unwrap()
                    .assign_str("b", "1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        let sols = kbp.solve_exhaustive(16).unwrap();
        // From init ¬b: guard K(b) requires b, which is false at the init
        // state; so nothing happens and SI = {¬b} for any candidate that
        // doesn't add b-states gratuitously. Exactly one solution: {¬b}.
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.solutions()[0].iter().collect::<Vec<_>>(), vec![0]);
    }

    /// A KBP with NO solution, simpler than Figure 1: process P sees
    /// nothing (empty view); statement `b := true if ~K{P}(b)`.
    /// - Candidate x = {¬b}: K(b) on x: at ¬b-state, b false ⇒ K(b) false
    ///   ⇒ guard true ⇒ b becomes true ⇒ SI(x) ⊋ x. Not a solution.
    /// - Candidate x = {¬b, b}: K(b) = b ∧ wcyl.∅.(x⇒b) = b ∧ [x⇒b] = false
    ///   (x has a ¬b state) ⇒ guard true everywhere ⇒ SI = both states =
    ///   x. Wait — that IS a solution. So this has a solution; assert so.
    #[test]
    fn blind_process_negative_guard() {
        let space = StateSpace::builder()
            .bool_var("b")
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("blind", &space)
            .init_str("~b")
            .unwrap()
            .process("P", [] as [&str; 0])
            .unwrap()
            .statement(
                Statement::new("s")
                    .guard_str("~K{P}(b)")
                    .unwrap()
                    .assign_str("b", "1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        let sols = kbp.solve_exhaustive(16).unwrap();
        assert_eq!(sols.len(), 1);
        assert!(sols.solutions()[0].everywhere());
        // And the iterative solver finds it from below.
        assert!(kbp.solve_iterative(10).unwrap().solution().is_some());
    }

    #[test]
    fn iterate_memoizes_per_candidate() {
        let space = StateSpace::builder()
            .nat_var("i", 3)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("std", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 2")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        let x = kbp.program().init().clone();
        let first = kbp.iterate(&x).unwrap();
        assert_eq!(kbp.cached_candidates(), 1);
        // Second evaluation of the same candidate is served from cache and
        // adds no entry.
        assert_eq!(kbp.iterate(&x).unwrap(), first);
        assert_eq!(kbp.cached_candidates(), 1);
        // is_solution rides the same cache.
        assert!(kbp.is_solution(&first).unwrap());
        assert_eq!(kbp.cached_candidates(), 2);
        // with_init starts fresh (the equation changed).
        let other = kbp.with_init(first);
        assert_eq!(other.cached_candidates(), 0);
    }

    #[test]
    fn search_limit_is_enforced() {
        let space = StateSpace::builder()
            .nat_var("i", 64)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("big", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(Statement::new("skip"))
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        assert!(matches!(
            kbp.solve_exhaustive(16),
            Err(CoreError::SearchTooLarge { .. })
        ));
    }

    /// Regression: 64 free states used to evaluate `1u64 << 64` — a panic
    /// in debug builds and a wrapped (wrong) candidate count in release.
    /// It must be a typed error no matter how large the caller's limit is.
    #[test]
    fn nfree_of_64_is_a_typed_error_not_a_shift_overflow() {
        let space = StateSpace::builder()
            .nat_var("i", 65)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("wide", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(Statement::new("skip"))
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        match kbp.solve_exhaustive(u64::MAX) {
            Err(CoreError::SearchTooLarge { free_states, limit }) => {
                assert_eq!(free_states, 64);
                assert_eq!(limit, 63);
            }
            other => panic!("expected SearchTooLarge, got {other:?}"),
        }
    }

    /// The parallel fan-out returns exactly the serial enumeration —
    /// same solutions in the same order, same candidate count — for any
    /// worker count (forced well past the machine's core count).
    #[test]
    fn parallel_search_matches_serial() {
        let space = StateSpace::builder()
            .bool_var("a")
            .unwrap()
            .bool_var("b")
            .unwrap()
            .nat_var("n", 2)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("par", &space)
            .init_str("~a /\\ ~b")
            .unwrap()
            .process("P", ["a"])
            .unwrap()
            .statement(
                Statement::new("s")
                    .guard_str("K{P}(a) \\/ ~a")
                    .unwrap()
                    .assign_str("a", "1")
                    .unwrap(),
            )
            .statement(
                Statement::new("t")
                    .guard_str("a")
                    .unwrap()
                    .assign_str("b", "1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        let serial = kbp.solve_exhaustive_serial(16).unwrap();
        for threads in [2, 3, 8] {
            let par = kbp.solve_exhaustive_with(threads, 16).unwrap();
            assert_eq!(par.solutions(), serial.solutions(), "threads {threads}");
            assert_eq!(par.candidates_checked(), serial.candidates_checked());
        }
    }

    /// Regression: the memo used to stop *admitting* entries once it hit
    /// `SI_CACHE_CAP`, silently disabling memoization for the rest of a
    /// long run. Clear-on-full keeps admitting, and the counters expose
    /// the churn.
    #[test]
    fn si_cache_clears_on_full_instead_of_freezing() {
        let space = StateSpace::builder()
            .nat_var("i", 13)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("cap", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(Statement::new("skip"))
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        // 2^13 = 8192 distinct masks available > SI_CACHE_CAP = 4096;
        // drive exactly one candidate past the cap.
        let candidate_at = |m: u64| Predicate::from_fn(&space, |i| m >> i & 1 == 1);
        for m in 0..=SI_CACHE_CAP as u64 {
            kbp.iterate(&candidate_at(m)).unwrap();
        }
        // The overflowing insert cleared the cache and kept admitting.
        assert_eq!(kbp.cache_evictions(), 1);
        assert!(kbp.cached_candidates() >= 1);
        assert!(kbp.cached_candidates() < SI_CACHE_CAP);
        // Fresh entries still memoize: re-querying the most recent
        // candidate is a hit, not a recomputation.
        let (hits_before, misses_before) = kbp.cache_counters();
        kbp.iterate(&candidate_at(SI_CACHE_CAP as u64)).unwrap();
        let (hits_after, misses_after) = kbp.cache_counters();
        assert_eq!(hits_after, hits_before + 1);
        assert_eq!(misses_after, misses_before);
    }

    #[test]
    fn with_init_changes_the_equation() {
        let space = StateSpace::builder()
            .nat_var("i", 3)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("p", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 2")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .build()
            .unwrap();
        let kbp = Kbp::new(program);
        let stronger = Kbp::new(
            kbp.program().with_init(
                kpt_logic::EvalContext::new(&space)
                    .eval(&kpt_logic::parse_formula("i = 2").unwrap())
                    .unwrap(),
            ),
        );
        let s1 = kbp.solve_exhaustive(16).unwrap();
        let s2 = stronger.solve_exhaustive(16).unwrap();
        assert_eq!(s1.solutions()[0].count(), 3);
        assert_eq!(s2.solutions()[0].count(), 1);
        // with_init on the Kbp wrapper does the same thing.
        let s3 = kbp
            .with_init(stronger.program().init().clone())
            .solve_exhaustive(16)
            .unwrap();
        assert_eq!(s2.solutions()[0], s3.solutions()[0]);
    }
}
