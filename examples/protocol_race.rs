//! Experiment E11 — the refinements §6 points to, raced in simulation:
//! the eager Figure-4 protocol, the alternating-bit protocol, and
//! Stenning's timeout protocol, across channel fault rates.
//!
//! Run with: `cargo run --release --example protocol_race`

use knowledge_pt::seqtrans::altbit::{abp_config, run_altbit};
use knowledge_pt::seqtrans::auy::{auy_config, run_auy};
use knowledge_pt::seqtrans::sim::{run_standard, SimConfig};
use knowledge_pt::seqtrans::stenning::{run_stenning, StenningPolicy};
use knowledge_pt::seqtrans::{AltBitModel, ModelOptions, StandardModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bounded models first: both refinements are verified, and ABP is the
    // smaller machine (the point of refining).
    let fig4 = StandardModel::build(2, 2, ModelOptions::default())?;
    let abp = AltBitModel::build(2, 2)?;
    let fig4_c = fig4.compile()?;
    let abp_c = abp.compile()?;
    println!("== bounded verification ==");
    println!(
        "Figure-4 model: {:>8} states, spec holds: {}",
        fig4.space().num_states(),
        fig4_c.invariant(&fig4.w_prefix_of_x())
            && (0..2).all(|k| fig4_c.leads_to_holds(&fig4.j_eq(k), &fig4.j_gt(k)))
    );
    println!(
        "ABP model     : {:>8} states, spec holds: {}",
        abp.space().num_states(),
        abp_c.invariant(&abp.w_prefix_of_x())
            && (0..2).all(|k| abp_c.leads_to_holds(&abp.j_eq(k), &abp.j_gt(k)))
    );

    // Simulation race.
    let n = 60usize;
    let x: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let runs = 20u64;
    println!("\n== simulation: total messages to deliver {n} elements (mean of {runs} seeds) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16}",
        "fault rate", "figure-4", "alt-bit", "stenning", "AUY (1-bit msgs)"
    );
    for rate in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut sums = [0u64; 4];
        for seed in 0..runs {
            let eager = if rate == 0.0 {
                SimConfig::reliable(x.clone())
            } else {
                SimConfig::faulty(x.clone(), rate, seed)
            };
            let r = run_standard(&eager);
            assert!(r.completed);
            sums[0] += r.total_messages();

            let r = run_altbit(&abp_config(x.clone(), rate, seed));
            assert!(r.completed);
            sums[1] += r.total_messages();

            let r = run_stenning(&eager, StenningPolicy::default());
            assert!(r.completed);
            sums[2] += r.total_messages();

            let r = run_auy(&auy_config(x.clone(), rate, seed), 2);
            assert!(r.completed);
            sums[3] += r.total_messages();
        }
        println!(
            "{:>10.1} {:>14.1} {:>14.1} {:>14.1} {:>16.1}",
            rate,
            sums[0] as f64 / runs as f64,
            sums[1] as f64 / runs as f64,
            sums[2] as f64 / runs as f64,
            sums[3] as f64 / runs as f64
        );
    }
    println!(
        "\n=> The eager Figure-4 sender dominates on message count (it retransmits every\n   \
         step); Stenning's timeout brings the reliable-channel cost down to ~one data\n   \
         message per element; the alternating-bit protocol sits between, paying for\n   \
         per-frame acknowledgement; the AUY-model protocol pays the one-bit-message\n   \
         constraint (3 bit-messages per logical bit) but each message is tiny.\n   \
         Crossovers move with the fault rate."
    );
    Ok(())
}
