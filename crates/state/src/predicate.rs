//! Semantic predicates: Boolean-valued total functions on a state space.
//!
//! Following §2 of the paper, a predicate is a *semantic* object — here an
//! exact bitset over the (finite) state space, one bit per global state. All
//! of the paper's pointwise operators are provided, including the unusual
//! pointwise `≡`, `⇒`, `⇐`, and the *everywhere* operator `[p]`
//! ([`Predicate::everywhere`]).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::sync::Arc;

use crate::error::SpaceError;
use crate::space::{StateSpace, VarId};

/// A predicate on a [`StateSpace`]: the exact set of states where it holds.
///
/// Predicates are cheap to clone relative to the state count (one allocation)
/// and support the full pointwise calculus of the paper. Operators `&`, `|`,
/// `^` and `!` are overloaded on references:
///
/// ```
/// use kpt_state::{Predicate, StateSpace};
/// # fn main() -> Result<(), kpt_state::SpaceError> {
/// let space = StateSpace::builder().bool_var("x")?.bool_var("y")?.build()?;
/// let x = Predicate::var_is_true(&space, space.var("x")?);
/// let y = Predicate::var_is_true(&space, space.var("y")?);
/// let p = &x & &!&y;
/// assert_eq!(p.count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Predicate {
    space: Arc<StateSpace>,
    bits: Box<[u64]>,
}

const WORD: u64 = 64;

fn words_for(n: u64) -> usize {
    n.div_ceil(WORD) as usize
}

impl Predicate {
    /// Largest space an explicit predicate can be materialized over.
    ///
    /// One bit per state keeps a single predicate under 512 MiB. Spaces
    /// may declare up to [`StateSpace::MAX_STATES`] states, but beyond
    /// this cap only the symbolic (ROBDD) backend can represent their
    /// predicates.
    pub const MAX_EXPLICIT_STATES: u64 = 1 << 32;

    // ----- constructors ---------------------------------------------------

    /// The predicate `false` (empty set of states).
    ///
    /// # Panics
    /// If the space exceeds [`Predicate::MAX_EXPLICIT_STATES`] — such
    /// spaces are symbolic-backend-only.
    pub fn ff(space: &Arc<StateSpace>) -> Predicate {
        assert!(
            space.num_states() <= Predicate::MAX_EXPLICIT_STATES,
            "the explicit bitset backend is capped at 2^32 states ({} declared); \
             use the symbolic (kpt-bdd) backend for this space",
            space.num_states()
        );
        Predicate {
            space: Arc::clone(space),
            bits: vec![0u64; words_for(space.num_states())].into_boxed_slice(),
        }
    }

    /// The predicate `true` (all states).
    pub fn tt(space: &Arc<StateSpace>) -> Predicate {
        let mut p = Predicate::ff(space);
        for w in p.bits.iter_mut() {
            *w = u64::MAX;
        }
        p.mask_tail();
        p
    }

    /// Build a predicate by evaluating `f` at every state index.
    pub fn from_fn<F: FnMut(u64) -> bool>(space: &Arc<StateSpace>, mut f: F) -> Predicate {
        let mut p = Predicate::ff(space);
        for idx in 0..space.num_states() {
            if f(idx) {
                p.set(idx);
            }
        }
        p
    }

    /// Build a predicate holding exactly at the given state indices.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_indices<I: IntoIterator<Item = u64>>(
        space: &Arc<StateSpace>,
        indices: I,
    ) -> Predicate {
        let mut p = Predicate::ff(space);
        for idx in indices {
            assert!(idx < space.num_states(), "state index out of range");
            p.set(idx);
        }
        p
    }

    /// The predicate `v = value` (raw code).
    ///
    /// # Panics
    /// Panics if `value` is outside the variable's domain.
    pub fn var_eq(space: &Arc<StateSpace>, v: VarId, value: u64) -> Predicate {
        assert!(
            space.domain(v).contains(value),
            "value out of range for variable"
        );
        Predicate::from_var_fn(space, v, |x| x == value)
    }

    /// The predicate "boolean variable `v` is true".
    pub fn var_is_true(space: &Arc<StateSpace>, v: VarId) -> Predicate {
        Predicate::from_var_fn(space, v, |x| x != 0)
    }

    /// Build a predicate that depends only on variable `v`, from a test on
    /// its raw value. This is the primitive from which all single-variable
    /// atoms are made; the result is a *cylinder* over `v` by construction.
    pub fn from_var_fn<F: FnMut(u64) -> bool>(
        space: &Arc<StateSpace>,
        v: VarId,
        mut f: F,
    ) -> Predicate {
        let stride = space.stride(v);
        let dsize = space.domain(v).size();
        let mut good = Vec::with_capacity(dsize as usize);
        for val in 0..dsize {
            good.push(f(val));
        }
        Predicate::from_fn(space, |idx| good[((idx / stride) % dsize) as usize])
    }

    /// The predicate comparing two variables for equality of raw codes
    /// (useful for same-domain variables).
    pub fn vars_eq(space: &Arc<StateSpace>, a: VarId, b: VarId) -> Predicate {
        Predicate::from_fn(space, |idx| space.value(idx, a) == space.value(idx, b))
    }

    // ----- structure ------------------------------------------------------

    /// The space this predicate is interpreted over.
    pub fn space(&self) -> &Arc<StateSpace> {
        &self.space
    }

    /// Whether the predicate holds at state index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn holds(&self, idx: u64) -> bool {
        assert!(idx < self.space.num_states(), "state index out of range");
        self.bits[(idx / WORD) as usize] >> (idx % WORD) & 1 == 1
    }

    #[inline]
    pub(crate) fn set(&mut self, idx: u64) {
        self.bits[(idx / WORD) as usize] |= 1u64 << (idx % WORD);
    }

    #[inline]
    pub(crate) fn clear(&mut self, idx: u64) {
        self.bits[(idx / WORD) as usize] &= !(1u64 << (idx % WORD));
    }

    /// Add state `idx` to the predicate; returns whether it was newly added
    /// (the primitive of frontier/worklist fixpoints).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn insert(&mut self, idx: u64) -> bool {
        assert!(idx < self.space.num_states(), "state index out of range");
        let w = &mut self.bits[(idx / WORD) as usize];
        let mask = 1u64 << (idx % WORD);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Remove state `idx`; returns whether it was present.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn remove(&mut self, idx: u64) -> bool {
        assert!(idx < self.space.num_states(), "state index out of range");
        let w = &mut self.bits[(idx / WORD) as usize];
        let mask = 1u64 << (idx % WORD);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    // ----- raw word access (kernel building blocks) -----------------------

    /// The backing bitset words, least-significant state first. Bits past
    /// `num_states` are always zero (the tail invariant).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Build a predicate directly from backing words (tail bits are
    /// masked). This is the exit point of word-parallel kernels.
    ///
    /// # Panics
    /// Panics if `words` has the wrong length for the space.
    pub fn from_raw_words(space: &Arc<StateSpace>, words: Vec<u64>) -> Predicate {
        assert_eq!(
            words.len(),
            words_for(space.num_states()),
            "word count does not match the space"
        );
        let mut p = Predicate {
            space: Arc::clone(space),
            bits: words.into_boxed_slice(),
        };
        p.mask_tail();
        p
    }

    fn mask_tail(&mut self) {
        let n = self.space.num_states();
        let rem = n % WORD;
        if rem != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn check_same_space(&self, other: &Predicate) {
        assert!(
            Arc::ptr_eq(&self.space, &other.space) || self.space.same_shape(&other.space),
            "{}",
            SpaceError::SpaceMismatch
        );
    }

    // ----- pointwise connectives ------------------------------------------

    /// Pointwise conjunction `p ∧ q`.
    #[must_use]
    pub fn and(&self, other: &Predicate) -> Predicate {
        self.check_same_space(other);
        self.zip(other, |a, b| a & b)
    }

    /// Pointwise disjunction `p ∨ q`.
    #[must_use]
    pub fn or(&self, other: &Predicate) -> Predicate {
        self.check_same_space(other);
        self.zip(other, |a, b| a | b)
    }

    /// Pointwise negation `¬p`.
    #[must_use]
    pub fn negate(&self) -> Predicate {
        let mut out = self.clone();
        for w in out.bits.iter_mut() {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Pointwise implication `p ⇒ q` — a *predicate*, true at points where
    /// `p` is false or `q` is true (the paper's unusual-but-pointwise `⇒`).
    #[must_use]
    pub fn implies(&self, other: &Predicate) -> Predicate {
        self.check_same_space(other);
        let mut out = self.zip(other, |a, b| !a | b);
        out.mask_tail();
        out
    }

    /// Pointwise equivalence `p ≡ q` — a predicate, true where `p` and `q`
    /// agree.
    #[must_use]
    pub fn iff(&self, other: &Predicate) -> Predicate {
        self.check_same_space(other);
        let mut out = self.zip(other, |a, b| !(a ^ b));
        out.mask_tail();
        out
    }

    /// Pointwise difference `p ∧ ¬q`.
    #[must_use]
    pub fn minus(&self, other: &Predicate) -> Predicate {
        self.check_same_space(other);
        self.zip(other, |a, b| a & !b)
    }

    fn zip<F: Fn(u64, u64) -> u64>(&self, other: &Predicate, f: F) -> Predicate {
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(other.bits.iter()) {
            *w = f(*w, *o);
        }
        out
    }

    // ----- in-place connectives -------------------------------------------
    //
    // Allocation-free counterparts of the pointwise operators, for inner
    // loops (fixpoints, unions over statements) that would otherwise churn
    // one fresh bitset per operation.

    /// In-place `self ∧= other`.
    pub fn and_assign(&mut self, other: &Predicate) {
        self.check_same_space(other);
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w &= *o;
        }
    }

    /// In-place `self ∨= other`.
    pub fn or_assign(&mut self, other: &Predicate) {
        self.check_same_space(other);
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w |= *o;
        }
    }

    /// In-place union that reports whether anything changed — the test a
    /// delta-based fixpoint terminates on, fused into the union itself.
    pub fn or_assign_changed(&mut self, other: &Predicate) -> bool {
        self.check_same_space(other);
        let mut diff = 0u64;
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            diff |= *o & !*w;
            *w |= *o;
        }
        diff != 0
    }

    /// In-place `self ∧= ¬other`.
    pub fn minus_assign(&mut self, other: &Predicate) {
        self.check_same_space(other);
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w &= !*o;
        }
    }

    /// In-place `self ^= other`.
    pub fn xor_assign(&mut self, other: &Predicate) {
        self.check_same_space(other);
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w ^= *o;
        }
        self.mask_tail();
    }

    /// In-place pointwise negation.
    pub fn negate_in_place(&mut self) {
        for w in self.bits.iter_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Whether the two predicates share no state (`[¬(p ∧ q)]`), without
    /// materialising the conjunction.
    pub fn is_disjoint(&self, other: &Predicate) -> bool {
        self.check_same_space(other);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    // ----- judgements -----------------------------------------------------

    /// The everywhere operator `[p]`: true iff `p` holds at every state.
    pub fn everywhere(&self) -> bool {
        let n = self.space.num_states();
        let full_words = (n / WORD) as usize;
        if self.bits[..full_words].iter().any(|&w| w != u64::MAX) {
            return false;
        }
        let rem = n % WORD;
        rem == 0 || self.bits[full_words] == (1u64 << rem) - 1
    }

    /// `[p ⇒ q]`: whether `p` is at least as strong as `q` everywhere.
    pub fn entails(&self, other: &Predicate) -> bool {
        self.check_same_space(other);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `[¬p]`: whether the predicate holds nowhere.
    pub fn is_false(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of states at which the predicate holds.
    pub fn count(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Iterate over the state indices at which the predicate holds, in
    /// ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            pred: self,
            word: 0,
            bits: self.bits.first().copied().unwrap_or(0),
        }
    }

    /// An arbitrary state satisfying the predicate, if any (useful for
    /// counterexample reporting).
    pub fn witness(&self) -> Option<u64> {
        self.iter().next()
    }

    /// Whether the predicate is *independent of* `v`: it has the same value
    /// in any two states differing only in `v` (§3 of the paper).
    pub fn is_independent_of(&self, v: VarId) -> bool {
        let stride = self.space.stride(v);
        let dsize = self.space.domain(v).size();
        if dsize <= 1 {
            return true;
        }
        let n = self.space.num_states();
        let block = stride * dsize;
        let mut base = 0u64;
        while base < n {
            for lo in 0..stride {
                let first = self.holds(base + lo);
                for val in 1..dsize {
                    if self.holds(base + lo + val * stride) != first {
                        return false;
                    }
                }
            }
            base += block;
        }
        true
    }

    /// Whether the predicate depends at most on the variables in `vars`
    /// (i.e. is independent of every other variable).
    pub fn depends_only_on(&self, vars: crate::space::VarSet) -> bool {
        self.space
            .complement(vars)
            .iter()
            .all(|v| self.is_independent_of(v))
    }
}

impl PartialEq for Predicate {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.space, &other.space) || self.space.same_shape(&other.space))
            && self.bits == other.bits
    }
}

impl Eq for Predicate {}

impl std::hash::Hash for Predicate {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Consistent with `PartialEq`: equality only ever holds between
        // same-shaped spaces, where `num_states` (and hence the word count
        // and tail mask) agree, so hashing the words alone suffices.
        self.bits.hash(state);
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.space.num_states();
        let count = self.count();
        write!(f, "Predicate({count}/{total} states")?;
        if count > 0 && count <= 8 {
            write!(f, ": ")?;
            for (i, idx) in self.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{{{}}}", self.space.render_state(idx))?;
            }
        }
        write!(f, ")")
    }
}

impl BitAnd for &Predicate {
    type Output = Predicate;
    fn bitand(self, rhs: &Predicate) -> Predicate {
        self.and(rhs)
    }
}

impl BitOr for &Predicate {
    type Output = Predicate;
    fn bitor(self, rhs: &Predicate) -> Predicate {
        self.or(rhs)
    }
}

impl BitXor for &Predicate {
    type Output = Predicate;
    fn bitxor(self, rhs: &Predicate) -> Predicate {
        let mut out = self.zip(rhs, |a, b| a ^ b);
        out.mask_tail();
        out
    }
}

impl Not for &Predicate {
    type Output = Predicate;
    fn not(self) -> Predicate {
        self.negate()
    }
}

/// Iterator over satisfying state indices of a [`Predicate`], produced by
/// [`Predicate::iter`].
pub struct Iter<'a> {
    pred: &'a Predicate,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as u64;
                self.bits &= self.bits - 1;
                return Some(self.word as u64 * WORD + b);
            }
            self.word += 1;
            if self.word >= self.pred.bits.len() {
                return None;
            }
            self.bits = self.pred.bits[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VarSet;

    fn space() -> Arc<StateSpace> {
        StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .bool_var("y")
            .unwrap()
            .nat_var("i", 3)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn tt_ff_everywhere() {
        let s = space();
        assert!(Predicate::tt(&s).everywhere());
        assert!(!Predicate::ff(&s).everywhere());
        assert!(Predicate::ff(&s).is_false());
        assert_eq!(Predicate::tt(&s).count(), 12);
    }

    #[test]
    fn pointwise_connectives_match_truth_tables() {
        let s = space();
        let x = Predicate::var_is_true(&s, s.var("x").unwrap());
        let y = Predicate::var_is_true(&s, s.var("y").unwrap());
        for idx in 0..s.num_states() {
            let (a, b) = (x.holds(idx), y.holds(idx));
            assert_eq!(x.and(&y).holds(idx), a && b);
            assert_eq!(x.or(&y).holds(idx), a || b);
            assert_eq!(x.negate().holds(idx), !a);
            assert_eq!(x.implies(&y).holds(idx), !a || b);
            assert_eq!(x.iff(&y).holds(idx), a == b);
            assert_eq!(x.minus(&y).holds(idx), a && !b);
            assert_eq!((&x ^ &y).holds(idx), a != b);
        }
    }

    #[test]
    fn entails_is_everywhere_implication() {
        let s = space();
        let x = Predicate::var_is_true(&s, s.var("x").unwrap());
        let xy = x.and(&Predicate::var_is_true(&s, s.var("y").unwrap()));
        assert!(xy.entails(&x));
        assert!(!x.entails(&xy));
        assert_eq!(x.entails(&xy), x.implies(&xy).everywhere());
    }

    #[test]
    fn var_eq_and_vars_eq() {
        let s = space();
        let i = s.var("i").unwrap();
        let p = Predicate::var_eq(&s, i, 2);
        assert_eq!(p.count(), 4);
        for idx in p.iter() {
            assert_eq!(s.value(idx, i), 2);
        }
        let x = s.var("x").unwrap();
        let y = s.var("y").unwrap();
        let q = Predicate::vars_eq(&s, x, y);
        assert_eq!(q.count(), 6);
    }

    #[test]
    #[should_panic(expected = "value out of range")]
    fn var_eq_out_of_range_panics() {
        let s = space();
        let _ = Predicate::var_eq(&s, s.var("i").unwrap(), 3);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = space();
        let p = Predicate::from_indices(&s, [11, 0, 5]);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![0, 5, 11]);
        assert_eq!(p.witness(), Some(0));
        assert_eq!(Predicate::ff(&s).witness(), None);
    }

    #[test]
    fn independence() {
        let s = space();
        let x = s.var("x").unwrap();
        let y = s.var("y").unwrap();
        let i = s.var("i").unwrap();
        let px = Predicate::var_is_true(&s, x);
        assert!(px.is_independent_of(y));
        assert!(px.is_independent_of(i));
        assert!(!px.is_independent_of(x));
        assert!(px.depends_only_on(VarSet::from_vars([x])));
        assert!(px.depends_only_on(VarSet::from_vars([x, y])));
        assert!(!px.depends_only_on(VarSet::from_vars([y, i])));
        // true and false depend on nothing.
        assert!(Predicate::tt(&s).depends_only_on(VarSet::EMPTY));
        assert!(Predicate::ff(&s).depends_only_on(VarSet::EMPTY));
    }

    #[test]
    fn from_fn_matches_holds() {
        let s = space();
        let p = Predicate::from_fn(&s, |idx| idx % 3 == 0);
        for idx in 0..s.num_states() {
            assert_eq!(p.holds(idx), idx % 3 == 0);
        }
    }

    #[test]
    fn negate_respects_tail_mask() {
        let s = space(); // 12 states, partial last word
        let p = Predicate::ff(&s).negate();
        assert!(p.everywhere());
        assert_eq!(p.count(), 12);
        // Double negation is identity.
        let q = Predicate::from_indices(&s, [1, 7]);
        assert_eq!(q.negate().negate(), q);
    }

    #[test]
    fn debug_render_small() {
        let s = space();
        let p = Predicate::from_indices(&s, [0]);
        let d = format!("{p:?}");
        assert!(d.contains("1/12"), "{d}");
        assert!(d.contains("x=false"), "{d}");
    }

    #[test]
    #[should_panic(expected = "different state spaces")]
    fn cross_space_ops_panic() {
        let a = space();
        let b = StateSpace::builder()
            .bool_var("q")
            .unwrap()
            .build()
            .unwrap();
        let _ = Predicate::tt(&a).and(&Predicate::tt(&b));
    }

    #[test]
    fn structural_space_equality_is_accepted() {
        // Two separately-built spaces with identical shape interoperate.
        let a = space();
        let b = space();
        let p = Predicate::tt(&a);
        let q = Predicate::tt(&b);
        assert_eq!(p, q);
        assert!(p.and(&q).everywhere());
    }

    #[test]
    fn single_word_space() {
        let s = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .build()
            .unwrap();
        let p = Predicate::tt(&s);
        assert!(p.everywhere());
        assert_eq!(p.count(), 2);
        assert!(p.negate().is_false());
    }

    #[test]
    fn multi_word_space() {
        let s = StateSpace::builder()
            .nat_var("big", 200)
            .unwrap()
            .build()
            .unwrap();
        let p = Predicate::from_fn(&s, |i| i >= 100);
        assert_eq!(p.count(), 100);
        assert_eq!(p.negate().count(), 100);
        assert!(p.or(&p.negate()).everywhere());
        assert!(p.and(&p.negate()).is_false());
    }

    #[test]
    #[should_panic(expected = "explicit bitset backend is capped")]
    fn explicit_predicates_refuse_symbolic_only_spaces() {
        let mut b = StateSpace::builder();
        for i in 0..48 {
            b = b.bool_var(&format!("x{i}")).unwrap();
        }
        let s = b.build().unwrap();
        let _ = Predicate::ff(&s);
    }
}
