//! A tour of the formal notation: parse the paper's Figure 1 from its
//! textual UNITY form, pretty-print it back, solve it as a KBP, and build
//! a mixed specification — the three "well-defined notation" deliverables
//! of §5 in one place.
//!
//! Run with: `cargo run --example notation_tour`

use knowledge_pt::prelude::*;
use knowledge_pt::unity::{parse_program, MixedSpec};

const FIGURE1_TEXT: &str = r"
program figure1
declare
  shared : boolean
  x : boolean
processes
  P0 = {shared}
  P1 = {shared, x}
init
  ~shared /\ ~x
assign
  grant: shared := 1 if K{P0}(~x)
  [] take: x := 1 || shared := 0 if shared
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the paper's notation.
    let (space, program) = parse_program(FIGURE1_TEXT)?;
    println!(
        "parsed `{}` over {} states; knowledge-based: {}\n",
        program.name(),
        space.num_states(),
        program.is_knowledge_based()
    );

    // 2. Pretty-print it back in the paper's layout.
    println!("{}", program);

    // 3. It is Figure 1, so the KBP solver proves it has no solution.
    let kbp = Kbp::new(program.clone());
    let sols = kbp.solve_exhaustive(16)?;
    println!(
        "eq. (25) solutions after checking {} candidates: {} — ill-posed, as the paper claims.\n",
        sols.candidates_checked(),
        sols.len()
    );

    // 4. The §6.4 weaker interpretation: the same text, read as a MIXED
    // SPECIFICATION with the K treated as an unspecified predicate. Give
    // it a valuation (here: P0 "knows" ¬x exactly when ¬x — the
    // full-information reading) and the spec becomes implementable.
    let not_x = Predicate::var_is_true(&space, space.var("x")?).negate();
    let spec = MixedSpec::new(program)
        .invariant("k-truthful", not_x.clone().implies(&not_x)) // (14)-shaped
        .leads_to(
            "handover",
            Predicate::tt(&space),
            Predicate::var_is_true(&space, space.var("x")?),
        );
    let k: Box<knowledge_pt::logic::KnowledgeFn> =
        Box::new(|_p, pred: &Predicate| Ok(pred.clone()));
    let r = spec.check_implementable_with(k.as_ref())?;
    println!(
        "as a mixed specification with a full-information valuation: implementable = {}",
        r.is_implementable()
    );
    for (name, _) in spec.properties() {
        println!("  stated property `{name}`");
    }
    Ok(())
}
