//! End-to-end tests for the §6 study on *larger* bounded instances than the
//! unit tests use, plus cross-validation between the bounded models and the
//! simulators (experiments E6, E7, E8, E11).

use knowledge_pt::prelude::*;
use knowledge_pt::seqtrans::altbit::{abp_config, run_altbit, AltBitModel};
use knowledge_pt::seqtrans::knowledge_preds::{validate_completeness, validate_soundness};
use knowledge_pt::seqtrans::proof_replay::{replay_liveness_for_k, replay_safety};
use knowledge_pt::seqtrans::sim::{run_standard, SimConfig};
use knowledge_pt::seqtrans::stenning::{run_stenning, StenningPolicy};
use knowledge_pt::seqtrans::{figure3_kbp, ModelOptions, StandardModel};

mod common;

#[test]
fn alphabet_three_instance_verifies() {
    // |A| = 3, |x| = 2: a bigger alphabet exercises the per-α statement
    // generation and the w/x encodings.
    let (model, compiled) = common::models::standard_3_2();
    assert!(compiled.invariant(&model.w_prefix_of_x()));
    assert!(compiled.invariant(&model.w_len_eq_j()));
    for k in 0..2 {
        assert!(compiled.leads_to_holds(&model.j_eq(k), &model.j_gt(k)));
    }
    let sound = validate_soundness(model, compiled);
    assert!(sound.all_hold(), "{:?}", sound.failures());
    let complete = validate_completeness(model, compiled);
    assert!(complete.all_hold(), "{:?}", complete.failures());
}

#[test]
fn length_three_instance_verifies() {
    // |A| = 2, |x| = 3 — 1.3M states; run in release or be patient.
    let model = StandardModel::build(2, 3, ModelOptions::default()).unwrap();
    let compiled = model.compile().unwrap();
    assert!(compiled.invariant(&model.w_prefix_of_x()));
    for k in 0..3 {
        assert!(
            compiled.leads_to_holds(&model.j_eq(k), &model.j_gt(k)),
            "liveness k={k}"
        );
    }
    // Knowledge-predicate equalities persist at length 3.
    let complete = validate_completeness(&model, &compiled);
    assert!(complete.all_hold(), "{:?}", complete.failures());
}

#[test]
fn proof_replay_scales_to_alphabet_three() {
    let (model, compiled) = common::models::standard_3_2();
    replay_safety(model, compiled).unwrap();
    for k in 0..2 {
        let replay = replay_liveness_for_k(model, compiled, k).unwrap();
        assert!(replay.fully_discharged());
        for s in &replay.steps {
            assert!(s.theorem.property().check(compiled), "{}", s.equation);
        }
    }
}

#[test]
fn kbp_instantiation_with_alphabet_three() {
    let (model, compiled) = common::models::standard_3_2();
    let kbp = figure3_kbp(model).unwrap();
    assert!(kbp.is_solution(compiled.si()).unwrap());
    // A-priori knowledge of x_0 breaks it, for any of the three letters.
    for d in 0..3 {
        let ap = StandardModel::build(
            3,
            2,
            ModelOptions {
                apriori_first: Some(d),
                slot_loss: false,
            },
        )
        .unwrap();
        let apc = ap.compile().unwrap();
        let apkbp = figure3_kbp(&ap).unwrap();
        assert!(!apkbp.is_solution(apc.si()).unwrap(), "digit {d}");
    }
}

#[test]
fn simulators_agree_with_models_on_safety_and_progress() {
    // The simulator and the bounded model implement the same protocol;
    // cross-check the observable behaviour on a reliable channel: the
    // simulator's delivery order matches x, and the number of distinct
    // data indices it sends equals |x| (progress one element at a time).
    let x = vec![1u8, 0, 1, 1, 0, 0, 1];
    let r = run_standard(&SimConfig::reliable(x.clone()));
    assert!(r.completed);
    assert_eq!(r.delivered, x);
    assert!(r.data_sent >= x.len() as u64);

    // All three protocols deliver identically under identical faults.
    for seed in 0..4 {
        let std_r = run_standard(&SimConfig::faulty(x.clone(), 0.25, seed));
        let abp_r = run_altbit(&abp_config(x.clone(), 0.25, seed));
        let ste_r = run_stenning(
            &SimConfig::faulty(x.clone(), 0.25, seed),
            StenningPolicy::default(),
        );
        for r in [&std_r, &abp_r, &ste_r] {
            assert!(r.completed);
            assert_eq!(r.delivered, x);
        }
    }
}

#[test]
fn message_count_ordering_is_stable_across_fault_rates() {
    // E11's headline shape: eager figure-4 ≥ alternating-bit ≥ stenning
    // on aggregate message counts, at every fault rate tried.
    let x: Vec<u8> = (0..30).map(|i| (i % 2) as u8).collect();
    for rate in [0.0, 0.2, 0.4] {
        let runs = 8u64;
        let mut sums = [0u64; 3];
        for seed in 0..runs {
            let cfg = if rate == 0.0 {
                SimConfig::reliable(x.clone())
            } else {
                SimConfig::faulty(x.clone(), rate, seed)
            };
            sums[0] += run_standard(&cfg).total_messages();
            sums[1] += run_altbit(&abp_config(x.clone(), rate, seed)).total_messages();
            sums[2] += run_stenning(&cfg, StenningPolicy::default()).total_messages();
        }
        assert!(
            sums[0] > sums[1] && sums[1] > sums[2],
            "rate {rate}: figure4 {} vs abp {} vs stenning {}",
            sums[0],
            sums[1],
            sums[2]
        );
    }
}

#[test]
fn abp_model_scales_to_length_three() {
    let m = AltBitModel::build(2, 3).unwrap();
    let c = m.compile().unwrap();
    assert!(c.invariant(&m.w_prefix_of_x()));
    for k in 0..3 {
        assert!(c.leads_to_holds(&m.j_eq(k), &m.j_gt(k)), "k={k}");
    }
    assert!(c.leads_to_holds(&Predicate::tt(m.space()), &m.j_eq(3)));
}

#[test]
fn common_knowledge_is_never_attained_over_the_faulty_channel() {
    // The classic coordinated-attack theorem ([HM90], cited in §3/§7),
    // visible inside the paper's own framework: over a channel that can
    // lose messages, E_G (everyone knows x_k) is attained in many
    // reachable states, but common knowledge C_G — the greatest fixpoint
    // of "everyone knows that everyone knows that…" — is attained in NONE.
    // There is always a receiver- or sender-indistinguishable state where
    // the crucial message is still in flight.
    use knowledge_pt::seqtrans::knowledge_preds::knowledge_operator;
    let (m, c) = common::models::standard_2_2();
    let op = knowledge_operator(m, c);
    for k in 0..2u64 {
        for alpha in 0..2u64 {
            let fact = m.x_elem(k as usize, alpha);
            let eg = op.everyone(&["Sender", "Receiver"], &fact).unwrap();
            let cg = op.common(&["Sender", "Receiver"], &fact).unwrap();
            assert!(
                !c.si().and(&eg).is_false(),
                "E_G(x_{k}={alpha}) must be attained somewhere"
            );
            assert!(
                c.si().and(&cg).is_false(),
                "C_G(x_{k}={alpha}) must NEVER be attained over a faulty channel"
            );
        }
    }
    // Contrast: with x_0 fixed a priori, the fact is an *initial* common
    // knowledge — C_G holds everywhere on SI without any communication.
    let ap = StandardModel::build(
        2,
        2,
        ModelOptions {
            apriori_first: Some(1),
            slot_loss: false,
        },
    )
    .unwrap();
    let apc = ap.compile().unwrap();
    let ap_op = knowledge_operator(&ap, &apc);
    let fact = ap.x_elem(0, 1);
    let cg = ap_op.common(&["Sender", "Receiver"], &fact).unwrap();
    assert!(apc.si().entails(&cg), "a-priori facts are common knowledge");
}

#[test]
fn weaker_interpretation_as_mixed_specification() {
    // §6.4's proposal: read the protocol as a *mixed specification* — the
    // program plus explicitly stated properties (the ones the proofs
    // used) — and check implementability. The Figure-4 standard protocol
    // is an implementable mixed spec for the §6 property set.
    use knowledge_pt::unity::MixedSpec;
    let (model, _) = common::models::standard_2_2();
    let mut spec = MixedSpec::new(model.program().clone())
        .invariant("(34) w prefix of x", model.w_prefix_of_x())
        .invariant("(36) |w| = j", model.w_len_eq_j());
    for k in 0..2u64 {
        spec = spec
            .leads_to(format!("(35) k={k}"), model.j_eq(k), model.j_gt(k))
            .stable(format!("(55) k={k}"), model.cand_ks_kr(k));
        for alpha in 0..2u64 {
            spec = spec.invariant(
                format!("(61) k={k} a={alpha}"),
                model
                    .cand_kr_x(k, alpha)
                    .implies(&model.x_elem(k as usize, alpha)),
            );
        }
    }
    let r = spec.check_implementable().unwrap();
    assert!(r.is_implementable(), "violations: {:?}", r.violations);

    // The adversarial-channel variant is NOT implementable for the same
    // property set: exactly the liveness properties fail.
    let adv = StandardModel::build(
        2,
        2,
        ModelOptions {
            apriori_first: None,
            slot_loss: true,
        },
    )
    .unwrap();
    let mut spec =
        MixedSpec::new(adv.program().clone()).invariant("(34) w prefix of x", adv.w_prefix_of_x());
    for k in 0..2u64 {
        spec = spec.leads_to(format!("(35) k={k}"), adv.j_eq(k), adv.j_gt(k));
    }
    let r = spec.check_implementable().unwrap();
    assert!(!r.is_implementable());
    assert!(r.violations.iter().all(|v| v.starts_with("(35)")));
    assert_eq!(r.violations.len(), 2);
}

#[test]
fn si_equals_reachability_on_the_protocol_models() {
    for (a, (m, c)) in [
        (2, common::models::standard_2_2()),
        (3, common::models::standard_3_2()),
    ] {
        let _ = m;
        assert_eq!(&reachable(c), c.si(), "figure-4 a={a} l=2");
    }
    let m = AltBitModel::build(2, 2).unwrap();
    let c = m.compile().unwrap();
    assert_eq!(&reachable(&c), c.si(), "abp");
}
