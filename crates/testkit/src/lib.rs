//! `kpt-testkit`: the workspace's zero-dependency testing and measurement
//! toolkit.
//!
//! Three pieces, all deterministic and offline:
//!
//! * [`Rng`] — a seeded SplitMix64/xoshiro256++ PRNG with the small slice
//!   of the `rand` API the workspace uses (ranges, Bernoulli, shuffle).
//!   Production code (fault-injecting channels, randomised fair
//!   schedulers) uses it for reproducible pseudo-randomness.
//! * [`check`]/[`replay`] — a seeded property-test harness replacing
//!   `proptest`: many independent random cases, failures reported with
//!   their replayable `(seed, case)` coordinates.
//! * [`Criterion`] and the [`criterion_group!`]/[`criterion_main!`] macros
//!   — a criterion-compatible micro-benchmark harness reporting median
//!   ns/iteration, with JSON output for cross-PR tracking
//!   (`KPT_BENCH_JSON`).

#![warn(missing_docs)]

mod bench;
mod prop;
mod rng;

pub use bench::{
    black_box, results_to_json, Bencher, BenchmarkGroup, BenchmarkId, CaseResult, Config,
    Criterion, Throughput,
};
pub use prop::{check, replay};
pub use rng::Rng;
