//! Benchmark-support crate: all content lives in `benches/`.
