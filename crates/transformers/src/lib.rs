//! # kpt-transformers: the predicate-transformer theory of §2
//!
//! This crate supplies the machinery the paper builds knowledge on top of:
//!
//! * [`Transformer`] — functions from predicates to predicates, with
//!   [`FnTransformer`] and [`Compose`] for building them;
//! * [`DetTransition`] — deterministic total transitions (the denotation of
//!   a UNITY statement) with exact strongest-postcondition
//!   ([`DetTransition::sp`]) and weakest-precondition
//!   ([`DetTransition::wp`]) transformers, plus the whole-program
//!   `SP.p ≡ (∃ s :: sp.s.p)` of eq. (26) via [`sp_union`];
//! * [`sst`] — the *strongest stable predicate weaker than `p`* of eq. (1),
//!   computed by the Kleene iteration of eq. (3); [`strongest_invariant`]
//!   is `SI = sst.init`, the exact reachable-state set (eq. 5);
//! * junctivity analysis ([`check_monotonic`],
//!   [`check_universally_conjunctive`], [`check_finitely_disjunctive`],
//!   [`check_or_continuous`]) — decision procedures for the §2 properties,
//!   exhaustive on small spaces and sampled on large ones.
//!
//! # Example: the strongest invariant of a tiny program
//!
//! ```
//! use kpt_state::{Predicate, StateSpace};
//! use kpt_transformers::{sp_union, strongest_invariant, DetTransition, FnTransformer};
//! # fn main() -> Result<(), kpt_state::SpaceError> {
//! // One statement: i := i + 1 if i < 3, over i ∈ 0..4.
//! let space = StateSpace::builder().nat_var("i", 4)?.build()?;
//! let stmt = DetTransition::from_fn(&space, |i| if i < 3 { i + 1 } else { i });
//! let sp = FnTransformer::new(&space, "SP", move |p| sp_union(std::slice::from_ref(&stmt), p));
//! let init = Predicate::from_indices(&space, [1]);
//! let si = strongest_invariant(&sp, &init);
//! assert_eq!(si.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fixpoint;
mod junctivity;
mod transformer;
mod transition;

pub use fixpoint::{
    gfp, is_stable, lfp, sst, sst_frontier, sst_frontier_with_stats, sst_with_stats,
    strongest_invariant, strongest_invariant_frontier, FixpointStats,
};
pub use junctivity::{
    check_finitely_conjunctive, check_finitely_disjunctive, check_monotonic, check_or_continuous,
    check_universally_conjunctive, Counterexample, Strategy, Verdict, EXHAUSTIVE_STATE_LIMIT,
};
pub use transformer::{Compose, FnTransformer, Transformer};
pub use transition::{sp_union, sp_union_with, wp_inter, wp_inter_with, DetTransition};
