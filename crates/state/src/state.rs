//! Ergonomic views of single global states.
//!
//! The engine identifies a state with its mixed-radix index; [`StateView`]
//! wraps an index together with its space to give readable accessors, and
//! [`StateBuilder`] constructs states by naming variables.

use std::fmt;
use std::sync::Arc;

use crate::domain::Value;
use crate::error::SpaceError;
use crate::space::{StateSpace, VarId};

/// A borrowed view of one global state.
#[derive(Clone, Copy)]
pub struct StateView<'a> {
    space: &'a StateSpace,
    idx: u64,
}

impl<'a> StateView<'a> {
    /// View state `idx` of `space`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn new(space: &'a StateSpace, idx: u64) -> Self {
        assert!(idx < space.num_states(), "state index out of range");
        StateView { space, idx }
    }

    /// The state index.
    pub fn index(&self) -> u64 {
        self.idx
    }

    /// The space.
    pub fn space(&self) -> &'a StateSpace {
        self.space
    }

    /// Raw value of a variable.
    pub fn get(&self, v: VarId) -> u64 {
        self.space.value(self.idx, v)
    }

    /// Boolean value of a variable.
    pub fn get_bool(&self, v: VarId) -> bool {
        self.space.value_bool(self.idx, v)
    }

    /// Typed value of a variable.
    pub fn get_value(&self, v: VarId) -> Value {
        self.space.typed_value(self.idx, v)
    }

    /// Raw value of a variable looked up by name.
    ///
    /// # Errors
    /// [`SpaceError::UnknownVariable`] if the name is not declared.
    pub fn get_named(&self, name: &str) -> Result<u64, SpaceError> {
        Ok(self.get(self.space.var(name)?))
    }
}

impl fmt::Debug for StateView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateView({})", self.space.render_state(self.idx))
    }
}

impl fmt::Display for StateView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.space.render_state(self.idx))
    }
}

/// Builds a state index by assigning variables by name; unassigned variables
/// default to raw value `0`.
///
/// # Examples
/// ```
/// use kpt_state::{StateBuilder, StateSpace};
/// # fn main() -> Result<(), kpt_state::SpaceError> {
/// let space = StateSpace::builder().bool_var("x")?.nat_var("i", 4)?.build()?;
/// let idx = StateBuilder::new(&space).set("x", 1)?.set("i", 3)?.build();
/// assert_eq!(space.value(idx, space.var("i")?), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateBuilder {
    space: Arc<StateSpace>,
    idx: u64,
}

impl StateBuilder {
    /// Start from the all-zeros state of `space`.
    pub fn new(space: &Arc<StateSpace>) -> Self {
        StateBuilder {
            space: Arc::clone(space),
            idx: 0,
        }
    }

    /// Assign a raw value to a named variable.
    ///
    /// # Errors
    /// [`SpaceError::UnknownVariable`] or [`SpaceError::ValueOutOfRange`].
    pub fn set(mut self, name: &str, value: u64) -> Result<Self, SpaceError> {
        let v = self.space.var(name)?;
        if !self.space.domain(v).contains(value) {
            return Err(SpaceError::ValueOutOfRange {
                var: name.to_owned(),
                value,
                size: self.space.domain(v).size(),
            });
        }
        self.idx = self.space.with_value(self.idx, v, value);
        Ok(self)
    }

    /// Assign a boolean to a named variable.
    ///
    /// # Errors
    /// As for [`StateBuilder::set`].
    pub fn set_bool(self, name: &str, value: bool) -> Result<Self, SpaceError> {
        self.set(name, u64::from(value))
    }

    /// Assign an enum label to a named variable.
    ///
    /// # Errors
    /// [`SpaceError::UnknownLabel`] if the label is not in the domain.
    pub fn set_label(self, name: &str, label: &str) -> Result<Self, SpaceError> {
        let v = self.space.var(name)?;
        let code =
            self.space
                .domain(v)
                .label_code(label)
                .ok_or_else(|| SpaceError::UnknownLabel {
                    var: name.to_owned(),
                    label: label.to_owned(),
                })?;
        self.set(name, code)
    }

    /// Finish, returning the state index.
    pub fn build(self) -> u64 {
        self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Arc<StateSpace> {
        StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .nat_var("i", 4)
            .unwrap()
            .enum_var("z", ["bot", "m"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn view_accessors() {
        let s = space();
        let idx = StateBuilder::new(&s)
            .set_bool("x", true)
            .unwrap()
            .set("i", 2)
            .unwrap()
            .set_label("z", "m")
            .unwrap()
            .build();
        let v = StateView::new(&s, idx);
        assert!(v.get_bool(s.var("x").unwrap()));
        assert_eq!(v.get(s.var("i").unwrap()), 2);
        assert_eq!(v.get_named("z").unwrap(), 1);
        assert_eq!(v.get_value(s.var("z").unwrap()), Value::Enum("m".into()));
        assert_eq!(v.index(), idx);
        assert_eq!(v.to_string(), "x=true, i=2, z=m");
    }

    #[test]
    fn builder_defaults_to_zero() {
        let s = space();
        assert_eq!(StateBuilder::new(&s).build(), 0);
    }

    #[test]
    fn builder_rejects_bad_values() {
        let s = space();
        assert!(matches!(
            StateBuilder::new(&s).set("i", 9),
            Err(SpaceError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            StateBuilder::new(&s).set("q", 0),
            Err(SpaceError::UnknownVariable(_))
        ));
        assert!(matches!(
            StateBuilder::new(&s).set_label("z", "nope"),
            Err(SpaceError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn overwriting_a_value_works() {
        let s = space();
        let idx = StateBuilder::new(&s)
            .set("i", 3)
            .unwrap()
            .set("i", 1)
            .unwrap()
            .build();
        assert_eq!(s.value(idx, s.var("i").unwrap()), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_out_of_range_panics() {
        let s = space();
        let _ = StateView::new(&s, s.num_states());
    }
}
