//! Junctivity analysis of predicate transformers (§2 of the paper).
//!
//! The paper leans on junctivity properties — monotonicity, universal
//! conjunctivity, finite disjunctivity, or-continuity — to explain both why
//! `sst` exists for standard programs and why knowledge-based protocols
//! misbehave ("lack of monotonicity of ŜP is the culprit", §4). This module
//! *decides* these properties for black-box transformers:
//!
//! * exhaustively, on spaces small enough to enumerate all predicates, and
//! * by sampling, with a caller-supplied predicate generator, on larger
//!   spaces.
//!
//! Two finite-lattice facts are used (and tested):
//!
//! 1. On a finite space, *universal* conjunctivity is equivalent to
//!    finite conjunctivity plus `f.true = true` (any bag of predicates has
//!    finitely many distinct elements, so induction reduces it to the binary
//!    case; the empty bag gives the unit law).
//! 2. On a finite space, or-continuity (over monotone bags, as defined in
//!    the paper) is equivalent to monotonicity: a monotone chain attains its
//!    supremum, so the continuity equation reduces to `f.v ⇒ f.(sup)`.

use kpt_state::Predicate;

use crate::transformer::Transformer;

/// Outcome of a junctivity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds; every relevant instance was checked.
    Holds,
    /// No counterexample was found among `samples` sampled instances.
    HoldsSampled {
        /// How many instances were tried.
        samples: usize,
    },
    /// The property fails, with a witnessing instance.
    Fails(Counterexample),
}

impl Verdict {
    /// Whether the check found no counterexample (exhaustive or sampled).
    pub fn passed(&self) -> bool {
        !matches!(self, Verdict::Fails(_))
    }
}

/// A witnessing instance for a failed junctivity property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// First operand predicate.
    pub p: Predicate,
    /// Second operand predicate, for binary properties.
    pub q: Option<Predicate>,
    /// What went wrong.
    pub note: String,
}

/// How to search for counterexamples.
pub enum Strategy<'a> {
    /// Enumerate *all* relevant predicate instances. Only permitted on
    /// spaces with at most [`EXHAUSTIVE_STATE_LIMIT`] states.
    Exhaustive,
    /// Draw instances from a caller-supplied generator (e.g. seeded random
    /// predicates), `samples` times.
    Sampled {
        /// Produces one predicate per call.
        generator: &'a mut dyn FnMut() -> Predicate,
        /// Number of instances to try.
        samples: usize,
    },
}

/// Largest state count for which exhaustive predicate enumeration is
/// permitted (2^n predicates, up to 4^n pairs).
pub const EXHAUSTIVE_STATE_LIMIT: u64 = 10;

fn all_predicates(
    space: &std::sync::Arc<kpt_state::StateSpace>,
) -> impl Iterator<Item = Predicate> + '_ {
    let n = space.num_states();
    assert!(
        n <= EXHAUSTIVE_STATE_LIMIT,
        "space too large for exhaustive junctivity analysis ({n} states; limit {EXHAUSTIVE_STATE_LIMIT})"
    );
    (0u64..(1u64 << n)).map(move |mask| Predicate::from_fn(space, |idx| mask >> idx & 1 == 1))
}

/// Check monotonicity: `[p ⇒ q] ⇒ [f.p ⇒ f.q]`.
///
/// # Panics
/// Panics if `Strategy::Exhaustive` is used on a space larger than
/// [`EXHAUSTIVE_STATE_LIMIT`] states.
pub fn check_monotonic(t: &dyn Transformer, strategy: Strategy<'_>) -> Verdict {
    match strategy {
        Strategy::Exhaustive => {
            for p in all_predicates(t.space()) {
                let fp = t.apply(&p);
                for q in all_predicates(t.space()) {
                    if p.entails(&q) && !fp.entails(&t.apply(&q)) {
                        return fails_mono(p, q);
                    }
                }
            }
            Verdict::Holds
        }
        Strategy::Sampled { generator, samples } => {
            for _ in 0..samples {
                let p = generator();
                let q = p.or(&generator()); // guarantees [p ⇒ q]
                if !t.apply(&p).entails(&t.apply(&q)) {
                    return fails_mono(p, q);
                }
            }
            Verdict::HoldsSampled { samples }
        }
    }
}

fn fails_mono(p: Predicate, q: Predicate) -> Verdict {
    Verdict::Fails(Counterexample {
        p,
        q: Some(q),
        note: "[p => q] but not [f.p => f.q]".into(),
    })
}

/// Check finite conjunctivity: `[f.p ∧ f.q ≡ f.(p ∧ q)]`.
///
/// # Panics
/// As for [`check_monotonic`].
pub fn check_finitely_conjunctive(t: &dyn Transformer, strategy: Strategy<'_>) -> Verdict {
    check_binary(t, strategy, true)
}

/// Check finite disjunctivity: `[f.p ∨ f.q ≡ f.(p ∨ q)]`.
///
/// # Panics
/// As for [`check_monotonic`].
pub fn check_finitely_disjunctive(t: &dyn Transformer, strategy: Strategy<'_>) -> Verdict {
    check_binary(t, strategy, false)
}

fn check_binary(t: &dyn Transformer, strategy: Strategy<'_>, conj: bool) -> Verdict {
    let test = |p: &Predicate, q: &Predicate| -> bool {
        if conj {
            t.apply(&p.and(q)) == t.apply(p).and(&t.apply(q))
        } else {
            t.apply(&p.or(q)) == t.apply(p).or(&t.apply(q))
        }
    };
    let note = if conj {
        "f.(p /\\ q) differs from f.p /\\ f.q"
    } else {
        "f.(p \\/ q) differs from f.p \\/ f.q"
    };
    match strategy {
        Strategy::Exhaustive => {
            let preds: Vec<Predicate> = all_predicates(t.space()).collect();
            for p in &preds {
                for q in &preds {
                    if !test(p, q) {
                        return Verdict::Fails(Counterexample {
                            p: p.clone(),
                            q: Some(q.clone()),
                            note: note.into(),
                        });
                    }
                }
            }
            Verdict::Holds
        }
        Strategy::Sampled { generator, samples } => {
            for _ in 0..samples {
                let p = generator();
                let q = generator();
                if !test(&p, &q) {
                    return Verdict::Fails(Counterexample {
                        p,
                        q: Some(q),
                        note: note.into(),
                    });
                }
            }
            Verdict::HoldsSampled { samples }
        }
    }
}

/// Check *universal* conjunctivity, using the finite-lattice reduction:
/// universal conjunctivity ⟺ finite conjunctivity ∧ `f.true = true`
/// (the empty bag's conjunction is `true`).
///
/// # Panics
/// As for [`check_monotonic`].
pub fn check_universally_conjunctive(t: &dyn Transformer, strategy: Strategy<'_>) -> Verdict {
    let tt = Predicate::tt(t.space());
    if t.apply(&tt) != tt {
        return Verdict::Fails(Counterexample {
            p: tt,
            q: None,
            note: "f.true differs from true (empty-bag case)".into(),
        });
    }
    check_finitely_conjunctive(t, strategy)
}

/// Check or-continuity over monotone bags. On a finite space this property
/// is equivalent to monotonicity (a monotone chain attains its supremum),
/// so this delegates to [`check_monotonic`]; it exists as a named check so
/// the paper's §2 assumptions can be stated verbatim.
///
/// # Panics
/// As for [`check_monotonic`].
pub fn check_or_continuous(t: &dyn Transformer, strategy: Strategy<'_>) -> Verdict {
    check_monotonic(t, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::FnTransformer;
    use kpt_state::{forall_var, StateSpace};
    use std::sync::Arc;

    fn space(n: u64) -> Arc<StateSpace> {
        StateSpace::builder()
            .nat_var("i", n)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn identity_has_all_junctivities() {
        let s = space(4);
        let id = FnTransformer::new(&s, "id", Predicate::clone);
        assert_eq!(check_monotonic(&id, Strategy::Exhaustive), Verdict::Holds);
        assert_eq!(
            check_finitely_conjunctive(&id, Strategy::Exhaustive),
            Verdict::Holds
        );
        assert_eq!(
            check_finitely_disjunctive(&id, Strategy::Exhaustive),
            Verdict::Holds
        );
        assert_eq!(
            check_universally_conjunctive(&id, Strategy::Exhaustive),
            Verdict::Holds
        );
        assert_eq!(
            check_or_continuous(&id, Strategy::Exhaustive),
            Verdict::Holds
        );
    }

    #[test]
    fn negation_is_not_monotonic() {
        let s = space(3);
        let neg = FnTransformer::new(&s, "neg", Predicate::negate);
        let v = check_monotonic(&neg, Strategy::Exhaustive);
        assert!(!v.passed());
        if let Verdict::Fails(ce) = v {
            assert!(ce.p.entails(&ce.q.unwrap()));
        }
    }

    #[test]
    fn forall_quantifier_is_conjunctive_not_disjunctive() {
        // This is the paper's (11)/(12) in miniature: ∀-quantification over
        // a variable is universally conjunctive but not disjunctive.
        let s = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .bool_var("y")
            .unwrap()
            .build()
            .unwrap();
        let y = s.var("y").unwrap();
        let t = FnTransformer::new(&s, "forall_y", move |p: &Predicate| forall_var(p, y));
        assert_eq!(
            check_universally_conjunctive(&t, Strategy::Exhaustive),
            Verdict::Holds
        );
        let v = check_finitely_disjunctive(&t, Strategy::Exhaustive);
        assert!(!v.passed());
    }

    #[test]
    fn sampled_strategy_respects_entailment_setup() {
        let s = space(8);
        let id = FnTransformer::new(&s, "id", Predicate::clone);
        let mut counter = 0u64;
        let mut generator = || {
            counter += 1;
            let c = counter;
            Predicate::from_fn(&s, |idx| (idx * 7 + c).is_multiple_of(3))
        };
        let v = check_monotonic(
            &id,
            Strategy::Sampled {
                generator: &mut generator,
                samples: 20,
            },
        );
        assert_eq!(v, Verdict::HoldsSampled { samples: 20 });
    }

    #[test]
    fn sampled_finds_disjunctivity_failure() {
        let s = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .bool_var("y")
            .unwrap()
            .build()
            .unwrap();
        let y = s.var("y").unwrap();
        let t = FnTransformer::new(&s, "forall_y", move |p: &Predicate| forall_var(p, y));
        // Deterministic generator cycling through all 16 predicates.
        let mut mask = 0u64;
        let sref = Arc::clone(&s);
        let mut generator = move || {
            mask = (mask + 6) % 16;
            let m = mask;
            Predicate::from_fn(&sref, |idx| m >> idx & 1 == 1)
        };
        let v = check_finitely_disjunctive(
            &t,
            Strategy::Sampled {
                generator: &mut generator,
                samples: 64,
            },
        );
        assert!(!v.passed());
    }

    #[test]
    fn universal_conjunctivity_checks_unit_law() {
        // f.p = p ∧ c is finitely conjunctive but fails f.true = true.
        let s = space(3);
        let c = Predicate::from_indices(&s, [0]);
        let t = FnTransformer::new(&s, "meet", move |p: &Predicate| p.and(&c));
        assert_eq!(
            check_finitely_conjunctive(&t, Strategy::Exhaustive),
            Verdict::Holds
        );
        let v = check_universally_conjunctive(&t, Strategy::Exhaustive);
        assert!(!v.passed());
        if let Verdict::Fails(ce) = v {
            assert!(ce.note.contains("empty-bag"));
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_on_large_space_panics() {
        let s = space(32);
        let id = FnTransformer::new(&s, "id", Predicate::clone);
        let _ = check_monotonic(&id, Strategy::Exhaustive);
    }

    #[test]
    fn verdict_passed() {
        assert!(Verdict::Holds.passed());
        assert!(Verdict::HoldsSampled { samples: 1 }.passed());
        let s = space(2);
        assert!(!Verdict::Fails(Counterexample {
            p: Predicate::tt(&s),
            q: None,
            note: String::new()
        })
        .passed());
    }
}
