//! Frontier-style symbolic fixpoints: `sst` closure and the strongest
//! invariant `SI` (paper eqs. 1/3/5) over BDD transition relations.
//!
//! Each round images only the *frontier* (states discovered last round),
//! exactly like `kpt_transformers::sst_frontier`, but the image is a
//! relational product instead of a bitset scatter — early-quantified over
//! the conjunctive partition when the relation has one. Convergence is the
//! O(1) root-id comparison that restricted canonical roots buy.
//!
//! The end of every round is a *safe point*: no recursion is in flight, and
//! every intermediate the loop still needs (`reached`, the frontier, the
//! relation roots) is handed to [`Manager::checkpoint`] as a temporary
//! root. That is where the configured garbage collection and dynamic
//! reordering policies run, and where [`symbolic_sst_bounded`] measures its
//! live-node budget — after cleanup, so engines whose policies shrink the
//! working set can finish inside budgets a grow-only engine exhausts.

use crate::error::BddError;
use crate::manager::{Manager, NodeId, FALSE};
use crate::predicate::SymbolicPredicate;
use crate::space::BddSpace;
use crate::transition::{ImageRel, SymbolicTransition};

/// Round-by-round behaviour of one symbolic fixpoint run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolicFixpointStats {
    /// Frontier rounds until the frontier emptied.
    pub rounds: u64,
    /// Reachable ROBDD nodes of the final fixpoint.
    pub nodes: usize,
}

/// `sst.p`: the strongest predicate stable under every transition that is
/// implied by `p` — the reachable closure of `p`.
pub fn symbolic_sst(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
) -> SymbolicPredicate {
    symbolic_sst_with_stats(p, transitions).0
}

/// [`symbolic_sst`] plus its round/node statistics.
pub fn symbolic_sst_with_stats(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
) -> (SymbolicPredicate, SymbolicFixpointStats) {
    let (si, stats) = run_sst(p, transitions, usize::MAX).expect("unbounded sst cannot trip");
    (si, stats)
}

/// [`symbolic_sst`] under a live-node budget: fails with
/// [`BddError::NodeBudgetExceeded`] if, after any round's garbage
/// collection and reordering, more than `max_live_nodes` internal nodes
/// remain allocated. This is the honest way to compare engine
/// configurations: the budget bounds *memory*, and only configurations
/// whose policies keep the diagrams small converge inside it.
pub fn symbolic_sst_bounded(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
    max_live_nodes: usize,
) -> Result<(SymbolicPredicate, SymbolicFixpointStats), BddError> {
    run_sst(p, transitions, max_live_nodes)
}

fn run_sst(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
    max_live_nodes: usize,
) -> Result<(SymbolicPredicate, SymbolicFixpointStats), BddError> {
    let space = p.space();
    for t in transitions {
        assert!(
            std::sync::Arc::ptr_eq(t.space(), space),
            "transition from a different BDD space"
        );
    }
    let mut mgr = space.lock();
    let rels: Vec<ImageRel<'_>> = transitions.iter().map(|t| t.image_rel()).collect();
    let out = sst_raw_bounded(space, &mut mgr, p.root(), &rels, max_live_nodes);
    drop(mgr);
    let (root, stats) = out?;
    kpt_obs::histogram!("bdd.si.nodes").record(stats.nodes as u64);
    let si = SymbolicPredicate::new(space, root);
    space.lock().release_root(root); // the loop's own reference, now covered by `si`
    Ok((si, stats))
}

/// The paper's `SI`: `sst` of the initial condition.
pub fn symbolic_strongest_invariant(
    transitions: &[SymbolicTransition],
    init: &SymbolicPredicate,
) -> SymbolicPredicate {
    symbolic_sst(init, transitions)
}

/// On success the returned root carries **one external root reference**
/// owned by the caller (released once the caller has taken its own).
/// Holding real roots — not just checkpoint temporaries — on the loop's
/// working set is what makes `reached`/`frontier` count as *live*, so the
/// GC dead-fraction, the sifting trigger, and the node budget all see the
/// fixpoint's actual memory.
pub(crate) fn sst_raw_bounded(
    space: &BddSpace,
    mgr: &mut Manager,
    init: NodeId,
    rels: &[ImageRel<'_>],
    max_live_nodes: usize,
) -> Result<(NodeId, SymbolicFixpointStats), BddError> {
    let mut span = kpt_obs::span("bdd.fixpoint");
    let traced = span.is_live();
    kpt_obs::counter!("bdd.fixpoint.runs").incr();
    let mut temps: Vec<NodeId> = vec![init];
    for rel in rels {
        rel.push_temp_roots(&mut temps);
    }
    let mut reached = init;
    let mut frontier = init;
    mgr.add_root(reached);
    mgr.add_root(frontier);
    let mut rounds = 0u64;
    while frontier != FALSE {
        rounds += 1;
        kpt_obs::counter!("bdd.fixpoint.rounds").incr();
        let mut image = FALSE;
        for rel in rels {
            let img = rel.image(space, mgr, frontier);
            image = mgr.or(image, img);
        }
        let not_reached = mgr.not(reached);
        let new_frontier = mgr.and(image, not_reached);
        let new_reached = mgr.or(reached, new_frontier);
        mgr.add_root(new_frontier);
        mgr.add_root(new_reached);
        mgr.release_root(frontier);
        mgr.release_root(reached);
        frontier = new_frontier;
        reached = new_reached;
        // Safe point: no recursion in flight, the working set rooted.
        // GC and sifting run here if their policies say so.
        mgr.checkpoint(&temps);
        let live = mgr.live_nodes();
        if traced {
            // The streaming primitive long solves expose to watchers
            // (and, eventually, kpt-server clients): one event per round
            // with the sizes that predict how far convergence is.
            kpt_obs::event(
                "bdd.fixpoint.progress",
                &[
                    ("round", rounds.into()),
                    ("frontier_nodes", mgr.reachable_nodes(frontier).into()),
                    ("reached_nodes", mgr.reachable_nodes(reached).into()),
                    ("live_nodes", live.into()),
                ],
            );
        }
        if live > max_live_nodes {
            mgr.release_root(frontier);
            mgr.release_root(reached);
            span.field("rounds", rounds);
            span.field("outcome", "budget_exceeded");
            return Err(BddError::NodeBudgetExceeded {
                nodes: live,
                budget: max_live_nodes,
                rounds,
            });
        }
    }
    mgr.release_root(frontier); // the FALSE terminal: a no-op
    let nodes = mgr.reachable_nodes(reached);
    span.field("rounds", rounds);
    span.field("nodes", nodes as u64);
    span.finish();
    Ok((reached, SymbolicFixpointStats { rounds, nodes }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{BddConfig, GcPolicy};
    use crate::space::BddSpace;
    use kpt_state::StateSpace;

    #[test]
    fn counter_chain_reaches_everything_above_init() {
        let space = StateSpace::builder()
            .nat_var("i", 10)
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        let i = space.var("i").unwrap();
        let guard = SymbolicPredicate::from_var_fn(&bdd, i, |x| x < 9);
        let inc = SymbolicTransition::builder(&bdd)
            .guard(&guard)
            .assign(i, &[i], |v| v[0] + 1)
            .build()
            .unwrap();
        let init = SymbolicPredicate::var_eq(&bdd, i, 3);
        let (si, stats) = symbolic_sst_with_stats(&init, std::slice::from_ref(&inc));
        assert_eq!(si.count(), 7); // 3..=9
        assert!(si.entails(&SymbolicPredicate::from_var_fn(&bdd, i, |x| x >= 3)));
        assert_eq!(stats.rounds, 7); // 6 discovery rounds + 1 empty round
    }

    #[test]
    fn si_is_a_fixed_point() {
        let space = StateSpace::builder()
            .nat_var("i", 8)
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        let i = space.var("i").unwrap();
        let dec = SymbolicTransition::builder(&bdd)
            .assign(i, &[i], |v| v[0].saturating_sub(1))
            .build()
            .unwrap();
        let init = SymbolicPredicate::var_eq(&bdd, i, 5);
        let si = symbolic_strongest_invariant(std::slice::from_ref(&dec), &init);
        // sp(SI) ⇒ SI and init ⇒ SI.
        assert!(dec.sp(&si).entails(&si));
        assert!(init.entails(&si));
        assert_eq!(si.count(), 6); // 0..=5
                                   // Running sst again from SI is a no-op (canonical equality).
        assert_eq!(symbolic_sst(&si, std::slice::from_ref(&dec)), si);
    }

    #[test]
    fn bounded_sst_trips_on_tiny_budget_and_passes_on_a_real_one() {
        let space = StateSpace::builder()
            .nat_var("i", 32)
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        let i = space.var("i").unwrap();
        let guard = SymbolicPredicate::from_var_fn(&bdd, i, |x| x < 31);
        let inc = SymbolicTransition::builder(&bdd)
            .guard(&guard)
            .assign(i, &[i], |v| v[0] + 1)
            .build()
            .unwrap();
        let init = SymbolicPredicate::var_eq(&bdd, i, 0);
        let err = symbolic_sst_bounded(&init, std::slice::from_ref(&inc), 1).unwrap_err();
        assert!(matches!(
            err,
            BddError::NodeBudgetExceeded { budget: 1, .. }
        ));
        let (si, _) = symbolic_sst_bounded(&init, std::slice::from_ref(&inc), 1 << 20).unwrap();
        assert_eq!(si.count(), 32);
    }

    #[test]
    fn gc_during_fixpoint_leaves_the_answer_intact() {
        // An aggressive GC policy sweeps at every round's checkpoint; the
        // fixpoint and its statistics must not change.
        let space = StateSpace::builder()
            .nat_var("i", 24)
            .unwrap()
            .build()
            .unwrap();
        let serial = BddSpace::with_config(&space, BddConfig::serial());
        let swept = BddSpace::with_config(
            &space,
            BddConfig {
                gc: GcPolicy::OnGrowth {
                    min_nodes: 1,
                    dead_percent: 0,
                },
                ..BddConfig::serial()
            },
        );
        let i = space.var("i").unwrap();
        let mut results = Vec::new();
        for bdd in [&serial, &swept] {
            let guard = SymbolicPredicate::from_var_fn(bdd, i, |x| x < 23);
            let inc = SymbolicTransition::builder(bdd)
                .guard(&guard)
                .assign(i, &[i], |v| v[0] + 1)
                .build()
                .unwrap();
            let init = SymbolicPredicate::var_eq(bdd, i, 2);
            let (si, stats) = symbolic_sst_with_stats(&init, std::slice::from_ref(&inc));
            results.push((si.count(), si.to_explicit(), stats.rounds));
        }
        assert_eq!(results[0], results[1]);
        assert!(swept.gc_stats().runs > 0, "aggressive policy must sweep");
    }
}
