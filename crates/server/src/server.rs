//! The server proper: connection handling, request execution, lifecycle.
//!
//! One thread per connection reads JSON Lines frames; decoded requests
//! are executed on a shared [`TaskPool`] whose bounded injector queue is
//! the backpressure boundary (a full queue answers [`codes::BUSY`]
//! instead of buffering unboundedly). `cancel` and `shutdown` are handled
//! *inline* on the reader thread so they work even when every worker is
//! occupied — which is exactly when they matter.
//!
//! ## Progress streaming
//!
//! While a request runs on a worker, a process-global route table maps
//! that worker's [`ThreadId`] to `(connection writer, request id)`. A
//! trace subscriber ([`kpt_obs::set_trace_subscriber`]) forwards every
//! `*.progress` event emitted on a routed thread — the solver's own
//! `solver.progress`/`bdd.fixpoint.progress` stream and the server's
//! per-iteration `server.solve.progress` — to the owning connection as
//! `progress` frames keyed by the request id. Unrouted threads (library
//! use outside the server) pay one hash lookup per progress event.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or [`Server::shutdown`]) flips the drain flag:
//! new connections stop being accepted, new requests are refused with
//! [`codes::SHUTTING_DOWN`], queued and in-flight requests run to
//! completion and their terminal frames are flushed, then connections are
//! closed. Nothing already accepted is dropped.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use kpt_bdd::BddError;
use kpt_core::Kbp;
use kpt_logic::KnowledgeFn;
use kpt_obs::Verdict;
use kpt_state::Predicate;
use kpt_testkit::pool::{num_threads, TaskPool};
use kpt_unity::{explain_property, Property};

use crate::proto::{codes, parse_request, verdict_json, Engine, Frame, Request, RequestKind};
use crate::session::{Model, SessionConfig, Sessions};

/// Server-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded injector queue; a full queue refuses with `busy`.
    pub queue_capacity: usize,
    /// Session arena bounds.
    pub sessions: SessionConfig,
    /// Deadline applied when a request names none.
    pub default_timeout_ms: u64,
    /// Eq. (25) iteration cap when a request names none.
    pub default_max_iterations: usize,
    /// Maximum accepted frame size in bytes.
    pub max_frame_bytes: usize,
    /// Largest state space the explicit engine will enumerate.
    pub max_explicit_states: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: num_threads(),
            queue_capacity: 1024,
            sessions: SessionConfig::default(),
            default_timeout_ms: 30_000,
            default_max_iterations: 64,
            max_frame_bytes: 1 << 20,
            max_explicit_states: 1 << 24,
        }
    }
}

/// Serialized frame sink shared by a connection's reader thread, its
/// in-flight workers, and the progress forwarder.
struct FrameWriter {
    w: Mutex<Box<dyn Write + Send>>,
}

impl FrameWriter {
    fn new(w: Box<dyn Write + Send>) -> FrameWriter {
        FrameWriter { w: Mutex::new(w) }
    }

    /// Write `frame` plus newline as one `write_all`, then flush. Errors
    /// are returned but generally ignored — a client that hung up simply
    /// stops receiving frames.
    fn send(&self, frame: &str) -> io::Result<()> {
        let mut line = String::with_capacity(frame.len() + 1);
        line.push_str(frame);
        line.push('\n');
        let mut w = self.w.lock().expect("writer lock poisoned");
        w.write_all(line.as_bytes())?;
        w.flush()
    }
}

/// One client connection: its writer and the cancel flags of its
/// in-flight requests.
struct Conn {
    writer: Arc<FrameWriter>,
    cancels: Mutex<HashMap<u64, Arc<AtomicBool>>>,
}

// ---------------------------------------------------------------------
// Progress routing
// ---------------------------------------------------------------------

type Routes = Mutex<HashMap<ThreadId, (Arc<FrameWriter>, u64)>>;

fn routes() -> &'static Routes {
    static ROUTES: OnceLock<Routes> = OnceLock::new();
    ROUTES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Install the `*.progress` forwarder exactly once per process. The
/// subscriber slot is global, so every [`Server`] in the process shares
/// this one forwarder; it is a no-op on threads with no active route.
fn install_progress_subscriber() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        kpt_obs::set_trace_subscriber(Some(Arc::new(|ev: &kpt_obs::Event| {
            if !ev.kind.ends_with(".progress") {
                return;
            }
            let route = routes()
                .lock()
                .ok()
                .and_then(|m| m.get(&thread::current().id()).cloned());
            if let Some((writer, id)) = route {
                let mut f = Frame::progress(id, &ev.kind);
                for (k, v) in &ev.fields {
                    f.event_field(k, v);
                }
                let _ = writer.send(&f.finish());
            }
        })));
    });
}

/// RAII route registration: progress events emitted on this thread while
/// the guard lives are forwarded to `writer` keyed by `id`.
struct ProgressRoute;

impl ProgressRoute {
    fn set(writer: &Arc<FrameWriter>, id: u64) -> ProgressRoute {
        if let Ok(mut m) = routes().lock() {
            m.insert(thread::current().id(), (Arc::clone(writer), id));
        }
        ProgressRoute
    }
}

impl Drop for ProgressRoute {
    fn drop(&mut self) {
        if let Ok(mut m) = routes().lock() {
            m.remove(&thread::current().id());
        }
    }
}

// ---------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------

/// A typed failure: terminal `error` frame payload.
struct ExecError {
    code: &'static str,
    message: String,
}

impl ExecError {
    fn new(code: &'static str, message: impl Into<String>) -> ExecError {
        ExecError {
            code,
            message: message.into(),
        }
    }
}

/// Cooperative cancellation + deadline, checked between iterations.
struct Ctl {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Ctl {
    fn check(&self) -> Result<(), ExecError> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(ExecError::new(codes::CANCELLED, "request cancelled"));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(ExecError::new(codes::TIMEOUT, "deadline elapsed"));
            }
        }
        Ok(())
    }
}

fn parse_error(src: &str, e: &kpt_unity::UnityError) -> ExecError {
    // The caret rendering points at the offending span; clients get the
    // same diagnostics the CLI prints.
    ExecError::new(codes::PARSE, e.render(src))
}

fn bdd_error(e: BddError) -> ExecError {
    match e {
        BddError::NodeBudgetExceeded { .. } => ExecError::new(codes::BUDGET, e.to_string()),
        other => ExecError::new(codes::INTERNAL, other.to_string()),
    }
}

/// The iterative outcome in wire form.
enum Solved {
    Converged {
        solution: Predicate,
        iterations: usize,
        cached: bool,
    },
    Cycle {
        period: usize,
        entered_after: usize,
    },
    Inconclusive {
        iterations: usize,
    },
}

/// Mirror of [`Kbp::solve_iterative`] — same iterate calls in the same
/// order, so the result is bit-identical to the library's — with a
/// cancellation/deadline check before each iteration and a
/// `server.solve.progress` event after each.
fn solve_explicit(kbp: &Kbp, max_iterations: usize, ctl: &Ctl) -> Result<Solved, ExecError> {
    let mut x = kbp.program().init().clone();
    let mut seen: Vec<Predicate> = vec![x.clone()];
    for k in 0..max_iterations {
        ctl.check()?;
        let next = kbp
            .iterate(&x)
            .map_err(|e| ExecError::new(codes::INTERNAL, e.to_string()))?;
        kpt_obs::event(
            "server.solve.progress",
            &[
                ("iteration", (k + 1).into()),
                ("candidate_states", next.count().into()),
                ("converged", (next == x).into()),
            ],
        );
        if next == x {
            return Ok(Solved::Converged {
                solution: x,
                iterations: k + 1,
                cached: false,
            });
        }
        if let Some(pos) = seen.iter().position(|p| p == &next) {
            return Ok(Solved::Cycle {
                period: seen.len() - pos,
                entered_after: pos,
            });
        }
        seen.push(next.clone());
        x = next;
    }
    Ok(Solved::Inconclusive {
        iterations: max_iterations,
    })
}

/// Solve through the session cache: a previously converged solution found
/// within the iteration cap is reused; anything else recomputes (and a
/// fresh convergence is stored).
fn solve_with_cache(model: &Model, max_iterations: usize, ctl: &Ctl) -> Result<Solved, ExecError> {
    if let Some((solution, iterations)) = model.cached_solution(max_iterations) {
        return Ok(Solved::Converged {
            solution,
            iterations,
            cached: true,
        });
    }
    let solved = solve_explicit(model.kbp(), max_iterations, ctl)?;
    if let Solved::Converged {
        solution,
        iterations,
        ..
    } = &solved
    {
        model.store_solution(solution, *iterations);
    }
    Ok(solved)
}

struct Exec<'a> {
    config: &'a ServerConfig,
    sessions: &'a Sessions,
    req: &'a Request,
    ctl: Ctl,
}

impl Exec<'_> {
    fn source(&self) -> &str {
        // Presence was validated by `parse_request`.
        self.req.source.as_deref().unwrap_or("")
    }

    fn load_model(&self) -> Result<Arc<Model>, ExecError> {
        self.sessions
            .get_or_load(self.source())
            .map_err(|e| parse_error(self.source(), &e))
    }

    fn check_explicit_size(&self, model: &Model) -> Result<(), ExecError> {
        let n = model.space().num_states();
        if n > self.config.max_explicit_states {
            return Err(ExecError::new(
                codes::TOO_LARGE,
                format!(
                    "state space has {n} states, over the explicit-engine limit {} — \
                     use \"engine\":\"symbolic\"",
                    self.config.max_explicit_states
                ),
            ));
        }
        Ok(())
    }

    fn max_iterations(&self) -> usize {
        self.req
            .max_iterations
            .unwrap_or(self.config.default_max_iterations)
    }

    fn run(&self) -> Result<Frame, ExecError> {
        self.ctl.check()?;
        match self.req.kind {
            RequestKind::Parse => self.parse(),
            RequestKind::Lint => self.lint(),
            RequestKind::Solve => self.solve(),
            RequestKind::Verify => self.verify(),
            RequestKind::Explain => self.explain(),
            // Handled inline by the connection loop.
            RequestKind::Cancel | RequestKind::Shutdown => Err(ExecError::new(
                codes::INTERNAL,
                "cancel/shutdown reached the worker pool",
            )),
        }
    }

    fn parse(&self) -> Result<Frame, ExecError> {
        let model = self.load_model()?;
        let program = model.kbp().program();
        let mut f = Frame::result(self.req.id, RequestKind::Parse);
        f.str_field("program", program.name());
        f.u64_field("states", model.space().num_states());
        f.u64_field("variables", model.space().num_vars() as u64);
        f.u64_field("statements", program.statements().len() as u64);
        f.u64_field("processes", program.processes().len() as u64);
        Ok(f)
    }

    fn lint(&self) -> Result<Frame, ExecError> {
        // The dataflow passes always run (they are near-linear); the
        // request flag only gates the expensive symbolic pass.
        let options = kpt_lint::LintOptions {
            symbolic: self.req.symbolic_lint,
            ..kpt_lint::LintOptions::default()
        };
        // Same entry point as the `kpt_lint` CLI's file mode — report
        // JSON carries per-diagnostic byte spans into the source text.
        let report = kpt_lint::lint_source(self.source(), &options)
            .map_err(|e| parse_error(self.source(), &e))?;
        let mut f = Frame::result(self.req.id, RequestKind::Lint);
        f.u64_field("errors", report.error_count() as u64);
        f.u64_field("warnings", report.warning_count() as u64);
        f.raw_field("report", &report.to_json());
        Ok(f)
    }

    fn solve(&self) -> Result<Frame, ExecError> {
        let model = self.load_model()?;
        let max_iterations = self.max_iterations();
        let mut f = Frame::result(self.req.id, RequestKind::Solve);
        match self.req.engine {
            Engine::Explicit => {
                self.check_explicit_size(&model)?;
                match solve_with_cache(&model, max_iterations, &self.ctl)? {
                    Solved::Converged {
                        solution,
                        iterations,
                        cached,
                    } => {
                        f.str_field("outcome", "converged");
                        f.u64_field("iterations", iterations as u64);
                        f.u64_field("solution_states", solution.count());
                        f.bool_field("cached", cached);
                    }
                    Solved::Cycle {
                        period,
                        entered_after,
                    } => {
                        f.str_field("outcome", "cycle");
                        f.u64_field("period", period as u64);
                        f.u64_field("entered_after", entered_after as u64);
                    }
                    Solved::Inconclusive { iterations } => {
                        f.str_field("outcome", "inconclusive");
                        f.u64_field("iterations", iterations as u64);
                    }
                }
                f.str_field("engine", "explicit");
            }
            Engine::Symbolic => {
                let skbp = model.symbolic().map_err(bdd_error)?;
                let budget = self.req.node_budget.unwrap_or(usize::MAX);
                let mut x = skbp.init();
                let mut seen = vec![x.clone()];
                let mut done = false;
                for k in 0..max_iterations {
                    self.ctl.check()?;
                    let next = skbp.iterate_bounded(&x, budget).map_err(bdd_error)?;
                    kpt_obs::event(
                        "server.solve.progress",
                        &[
                            ("iteration", (k + 1).into()),
                            ("candidate_states", next.count().into()),
                            ("converged", (next == x).into()),
                        ],
                    );
                    if next == x {
                        f.str_field("outcome", "converged");
                        f.u64_field("iterations", (k + 1) as u64);
                        f.u64_field("solution_states", x.count());
                        f.bool_field("cached", false);
                        done = true;
                        break;
                    }
                    if let Some(pos) = seen.iter().position(|p| p == &next) {
                        f.str_field("outcome", "cycle");
                        f.u64_field("period", (seen.len() - pos) as u64);
                        f.u64_field("entered_after", pos as u64);
                        done = true;
                        break;
                    }
                    seen.push(next.clone());
                    x = next;
                }
                if !done {
                    f.str_field("outcome", "inconclusive");
                    f.u64_field("iterations", max_iterations as u64);
                }
                f.str_field("engine", "symbolic");
            }
        }
        Ok(f)
    }

    /// Solve, then check the requested UNITY properties against the
    /// compiled-at-solution program — knowledge is interpreted w.r.t. the
    /// SI of the solution, the paper's reading of a KBP's properties.
    fn verify(&self) -> Result<Frame, ExecError> {
        if self.req.invariant.is_none()
            && (self.req.leads_from.is_none() || self.req.leads_to.is_none())
        {
            return Err(ExecError::new(
                codes::INVALID,
                "`verify` needs `invariant` and/or `leads_from`+`leads_to`",
            ));
        }
        let model = self.load_model()?;
        self.check_explicit_size(&model)?;
        let solution = match solve_with_cache(&model, self.max_iterations(), &self.ctl)? {
            Solved::Converged { solution, .. } => solution,
            Solved::Cycle { period, .. } => {
                return Err(ExecError::new(
                    codes::UNSOLVED,
                    format!("eq. (25) iteration cycles with period {period}; no solution"),
                ))
            }
            Solved::Inconclusive { iterations } => {
                return Err(ExecError::new(
                    codes::UNSOLVED,
                    format!("no fixpoint within {iterations} iterations"),
                ))
            }
        };
        let compiled = model
            .kbp()
            .compile_at(&solution)
            .map_err(|e| ExecError::new(codes::INTERNAL, e.to_string()))?;
        let kctx = kpt_core::KnowledgeContext::for_program(&compiled);
        let kf = |process: &str, p: &Predicate| kctx.knows(process, p);
        let eval = |text: &str| -> Result<Predicate, ExecError> {
            let formula = kpt_logic::parse_formula(text)
                .map_err(|e| ExecError::new(codes::EVAL, format!("`{text}`: {e}")))?;
            kpt_logic::EvalContext::new(model.space())
                .with_knowledge(&kf as &KnowledgeFn)
                .eval(&formula)
                .map_err(|e| ExecError::new(codes::EVAL, format!("`{text}`: {e}")))
        };
        let mut verdicts: Vec<Verdict> = Vec::new();
        if let Some(text) = &self.req.invariant {
            let p = eval(text)?;
            verdicts.push(explain_property(&compiled, text, &Property::Invariant(p)));
        }
        if let (Some(from), Some(to)) = (&self.req.leads_from, &self.req.leads_to) {
            let p = eval(from)?;
            let q = eval(to)?;
            verdicts.push(explain_property(
                &compiled,
                &format!("{from} \u{21a6} {to}"),
                &Property::LeadsTo(p, q),
            ));
        }
        let mut f = Frame::result(self.req.id, RequestKind::Verify);
        f.bool_field("holds_all", verdicts.iter().all(|v| v.holds));
        let rendered: Vec<String> = verdicts.iter().map(verdict_json).collect();
        f.raw_field("verdicts", &format!("[{}]", rendered.join(",")));
        Ok(f)
    }

    /// Solve and explain the outcome as a witnessed verdict.
    fn explain(&self) -> Result<Frame, ExecError> {
        let model = self.load_model()?;
        self.check_explicit_size(&model)?;
        let name = model.kbp().program().name().to_owned();
        let obligation = format!("kbp {name} solvable");
        let verdict = match solve_with_cache(&model, self.max_iterations(), &self.ctl)? {
            Solved::Converged {
                solution,
                iterations,
                ..
            } => Verdict {
                obligation,
                holds: true,
                detail: format!(
                    "eq. (25) converged after {iterations} iteration{}; the solution holds in \
                     {} of {} states",
                    if iterations == 1 { "" } else { "s" },
                    solution.count(),
                    model.space().num_states()
                ),
                witnesses: kpt_state::witnesses(&solution, 4),
            },
            Solved::Cycle {
                period,
                entered_after,
            } => Verdict::fail(
                obligation,
                format!(
                    "the iteration enters a period-{period} cycle after {entered_after} \
                     iteration{} — the KBP has no iterative solution (Figure 1 ill-posedness)",
                    if entered_after == 1 { "" } else { "s" }
                ),
                Vec::new(),
            ),
            Solved::Inconclusive { iterations } => Verdict::fail(
                obligation,
                format!("no fixpoint and no cycle within {iterations} iterations"),
                Vec::new(),
            ),
        };
        let mut f = Frame::result(self.req.id, RequestKind::Explain);
        f.bool_field("holds", verdict.holds);
        f.raw_field("verdict", &verdict_json(&verdict));
        Ok(f)
    }
}

fn kind_counter(kind: RequestKind) -> &'static kpt_obs::Counter {
    match kind {
        RequestKind::Parse => kpt_obs::counter!("server.requests.parse"),
        RequestKind::Lint => kpt_obs::counter!("server.requests.lint"),
        RequestKind::Solve => kpt_obs::counter!("server.requests.solve"),
        RequestKind::Verify => kpt_obs::counter!("server.requests.verify"),
        RequestKind::Explain => kpt_obs::counter!("server.requests.explain"),
        RequestKind::Cancel => kpt_obs::counter!("server.requests.cancel"),
        RequestKind::Shutdown => kpt_obs::counter!("server.requests.shutdown"),
    }
}

fn kind_latency(kind: RequestKind) -> &'static kpt_obs::Histogram {
    match kind {
        RequestKind::Parse => kpt_obs::histogram!("server.latency.parse"),
        RequestKind::Lint => kpt_obs::histogram!("server.latency.lint"),
        RequestKind::Solve => kpt_obs::histogram!("server.latency.solve"),
        RequestKind::Verify => kpt_obs::histogram!("server.latency.verify"),
        RequestKind::Explain => kpt_obs::histogram!("server.latency.explain"),
        RequestKind::Cancel => kpt_obs::histogram!("server.latency.cancel"),
        RequestKind::Shutdown => kpt_obs::histogram!("server.latency.shutdown"),
    }
}

// ---------------------------------------------------------------------
// Shared state and connection loop
// ---------------------------------------------------------------------

struct Shared {
    config: ServerConfig,
    pool: TaskPool,
    sessions: Sessions,
    shutting: AtomicBool,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
    inflight: AtomicU64,
}

impl Shared {
    fn new(config: ServerConfig) -> Shared {
        Shared {
            pool: TaskPool::new(config.workers.max(1), config.queue_capacity.max(1)),
            sessions: Sessions::new(config.sessions),
            config,
            shutting: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            inflight: AtomicU64::new(0),
        }
    }

    /// Flip the drain flag and wake [`Server::wait`]. Idempotent.
    fn begin_shutdown(&self) {
        self.shutting.store(true, Ordering::SeqCst);
        let mut f = self.shutdown_flag.lock().expect("shutdown lock poisoned");
        *f = true;
        self.shutdown_cv.notify_all();
    }
}

/// Run one request on a pool worker: route progress frames, execute,
/// send the terminal frame, record metrics.
fn run_request(shared: &Shared, conn: &Conn, req: Request, cancel: Arc<AtomicBool>) {
    let started = Instant::now();
    kpt_obs::counter!("server.requests").incr();
    kind_counter(req.kind).incr();
    shared.inflight.fetch_add(1, Ordering::Relaxed);
    kpt_obs::gauge!("server.inflight").set(shared.inflight.load(Ordering::Relaxed));
    let mut span = kpt_obs::span("server.request");
    span.field("request", req.kind.name());
    span.field("id", req.id);
    let deadline_ms = req.timeout_ms.unwrap_or(shared.config.default_timeout_ms);
    let exec = Exec {
        config: &shared.config,
        sessions: &shared.sessions,
        req: &req,
        ctl: Ctl {
            cancel,
            deadline: Some(started + Duration::from_millis(deadline_ms)),
        },
    };
    let route = ProgressRoute::set(&conn.writer, req.id);
    let outcome = exec.run();
    drop(route);
    let frame = match outcome {
        Ok(f) => {
            span.field("outcome", "ok");
            f
        }
        Err(e) => {
            kpt_obs::counter!("server.errors").incr();
            span.field("outcome", e.code);
            Frame::error(Some(req.id), e.code, &e.message)
        }
    };
    let _ = conn.writer.send(&frame.finish());
    kind_latency(req.kind).record(started.elapsed().as_micros() as u64);
    shared.inflight.fetch_sub(1, Ordering::Relaxed);
    kpt_obs::gauge!("server.inflight").set(shared.inflight.load(Ordering::Relaxed));
    span.finish();
}

/// Read one newline-terminated frame, enforcing the size bound.
/// `Ok(None)` is EOF; `Ok(Some(Err(())))` is an over-long frame (the
/// stream is already resynchronized past its newline).
fn read_frame(
    reader: &mut impl BufRead,
    max_bytes: usize,
) -> io::Result<Option<Result<String, ()>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if buf.is_empty() && !overflow {
                return Ok(None);
            }
            break; // final frame without trailing newline
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if !overflow {
                    buf.extend_from_slice(&available[..i]);
                }
                reader.consume(i + 1);
                break;
            }
            None => {
                if !overflow {
                    buf.extend_from_slice(available);
                }
                let n = available.len();
                reader.consume(n);
            }
        }
        if buf.len() > max_bytes {
            overflow = true;
            buf.clear();
        }
    }
    if overflow || buf.len() > max_bytes {
        return Ok(Some(Err(())));
    }
    Ok(Some(Ok(String::from_utf8_lossy(&buf).into_owned())))
}

/// Serve one connection's frames until EOF. Shared by the TCP accept
/// loop and `--stdio` mode.
fn serve(shared: &Arc<Shared>, conn: &Arc<Conn>, reader: &mut impl BufRead) {
    loop {
        let line = match read_frame(reader, shared.config.max_frame_bytes) {
            Ok(None) | Err(_) => break,
            Ok(Some(Err(()))) => {
                let f = Frame::error(
                    None,
                    codes::TOO_LARGE,
                    &format!(
                        "frame exceeds {} bytes; discarded to the next newline",
                        shared.config.max_frame_bytes
                    ),
                );
                if conn.writer.send(&f.finish()).is_err() {
                    break;
                }
                continue;
            }
            Ok(Some(Ok(line))) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line, shared.config.max_frame_bytes) {
            Ok(req) => req,
            Err(e) => {
                kpt_obs::counter!("server.errors").incr();
                let f = Frame::error(e.id, e.code, &e.message);
                if conn.writer.send(&f.finish()).is_err() {
                    break;
                }
                continue;
            }
        };
        match req.kind {
            // Inline: must work while every worker is busy.
            RequestKind::Cancel => {
                kpt_obs::counter!("server.requests").incr();
                kind_counter(RequestKind::Cancel).incr();
                let target = req.target.unwrap_or(0);
                let flag = conn
                    .cancels
                    .lock()
                    .expect("cancels lock poisoned")
                    .get(&target)
                    .cloned();
                let cancelled = match flag {
                    Some(flag) => {
                        flag.store(true, Ordering::Relaxed);
                        true
                    }
                    None => false,
                };
                let mut f = Frame::result(req.id, RequestKind::Cancel);
                f.u64_field("target", target);
                f.bool_field("cancelled", cancelled);
                if conn.writer.send(&f.finish()).is_err() {
                    break;
                }
            }
            // Inline: acknowledge, then flip the drain flag. The owner
            // (Server::wait / run_stdio) performs the actual drain.
            RequestKind::Shutdown => {
                kpt_obs::counter!("server.requests").incr();
                kind_counter(RequestKind::Shutdown).incr();
                let mut f = Frame::result(req.id, RequestKind::Shutdown);
                f.bool_field("ok", true);
                let _ = conn.writer.send(&f.finish());
                shared.begin_shutdown();
            }
            _ => {
                if shared.shutting.load(Ordering::SeqCst) {
                    let f = Frame::error(
                        Some(req.id),
                        codes::SHUTTING_DOWN,
                        "server is draining; no new requests",
                    );
                    if conn.writer.send(&f.finish()).is_err() {
                        break;
                    }
                    continue;
                }
                let cancel = Arc::new(AtomicBool::new(false));
                conn.cancels
                    .lock()
                    .expect("cancels lock poisoned")
                    .insert(req.id, Arc::clone(&cancel));
                let job_shared = Arc::clone(shared);
                let job_conn = Arc::clone(conn);
                let req_id = req.id;
                let spawned = shared.pool.try_spawn(move || {
                    run_request(&job_shared, &job_conn, req, cancel);
                    job_conn
                        .cancels
                        .lock()
                        .expect("cancels lock poisoned")
                        .remove(&req_id);
                });
                if spawned.is_err() {
                    conn.cancels
                        .lock()
                        .expect("cancels lock poisoned")
                        .remove(&req_id);
                    kpt_obs::counter!("server.errors").incr();
                    let code = if shared.shutting.load(Ordering::SeqCst) {
                        codes::SHUTTING_DOWN
                    } else {
                        codes::BUSY
                    };
                    let f = Frame::error(
                        Some(req_id),
                        code,
                        "worker queue is full; retry after in-flight requests drain",
                    );
                    if conn.writer.send(&f.finish()).is_err() {
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The server lifecycle
// ---------------------------------------------------------------------

/// A running kpt-server bound to a TCP address.
///
/// Dropping the server shuts it down gracefully: accepted work drains,
/// terminal frames flush, then connections close.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    down: bool,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        install_progress_subscriber();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(config));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = thread::Builder::new()
            .name("kpt-server-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutting.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    kpt_obs::counter!("server.conns").incr();
                    let write_half = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    accept_conns.lock().expect("conns lock poisoned").push(
                        match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => continue,
                        },
                    );
                    let conn_shared = Arc::clone(&accept_shared);
                    let handle =
                        thread::Builder::new()
                            .name("kpt-server-conn".into())
                            .spawn(move || {
                                let conn = Arc::new(Conn {
                                    writer: Arc::new(FrameWriter::new(Box::new(write_half))),
                                    cancels: Mutex::new(HashMap::new()),
                                });
                                let mut reader = BufReader::new(stream);
                                serve(&conn_shared, &conn, &mut reader);
                            });
                    if let Ok(handle) = handle {
                        accept_threads
                            .lock()
                            .expect("conn threads lock poisoned")
                            .push(handle);
                    }
                }
            })?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            conns,
            conn_threads,
            down: false,
        })
    }

    /// The bound address (port resolved when binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The session arena (test and bench introspection).
    pub fn sessions(&self) -> &Sessions {
        &self.shared.sessions
    }

    /// Block until a `shutdown` request arrives (or [`Server::shutdown`]
    /// is called from another thread).
    pub fn wait(&self) {
        let mut flag = self
            .shared
            .shutdown_flag
            .lock()
            .expect("shutdown lock poisoned");
        while !*flag {
            flag = self
                .shared
                .shutdown_cv
                .wait(flag)
                .expect("shutdown lock poisoned");
        }
    }

    /// Graceful drain: stop accepting, refuse new requests, run accepted
    /// work to completion and flush its frames, close connections, join
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shared.begin_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Drain the pool: queued and running requests complete and their
        // terminal frames are written before any stream is torn down.
        self.shared.pool.shutdown();
        for stream in self.conns.lock().expect("conns lock poisoned").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self
            .conn_threads
            .lock()
            .expect("conn threads lock poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve JSONL frames on stdin/stdout until EOF or a `shutdown` request,
/// then drain the pool. The transport differs from TCP; the request
/// execution path is byte-for-byte the same.
pub fn run_stdio(config: ServerConfig) {
    install_progress_subscriber();
    let shared = Arc::new(Shared::new(config));
    let conn = Arc::new(Conn {
        writer: Arc::new(FrameWriter::new(Box::new(io::stdout()))),
        cancels: Mutex::new(HashMap::new()),
    });
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    serve(&shared, &conn, &mut reader);
    shared.pool.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_frame_bounds_and_resyncs() {
        let data = b"{\"id\":1}\nxxxxxxxxxxxxxxxxxxxxxxxx\n{\"id\":2}\n";
        let mut r = BufReader::with_capacity(8, &data[..]);
        let first = read_frame(&mut r, 16).unwrap().unwrap().unwrap();
        assert_eq!(first, "{\"id\":1}");
        // The 24-byte run exceeds the 16-byte bound...
        assert!(read_frame(&mut r, 16).unwrap().unwrap().is_err());
        // ...and the stream resynchronizes at the next newline.
        let third = read_frame(&mut r, 16).unwrap().unwrap().unwrap();
        assert_eq!(third, "{\"id\":2}");
        assert!(read_frame(&mut r, 16).unwrap().is_none());
    }

    #[test]
    fn read_frame_accepts_final_unterminated_line() {
        let mut r = BufReader::new(&b"{\"id\":9}"[..]);
        let only = read_frame(&mut r, 64).unwrap().unwrap().unwrap();
        assert_eq!(only, "{\"id\":9}");
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }
}
