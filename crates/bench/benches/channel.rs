//! Bench for the faulty-channel substrate: send/recv throughput across
//! fault configurations.

use kpt_channel::{FaultConfig, FaultyChannel};
use kpt_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    for (name, cfg) in [
        ("reliable", FaultConfig::reliable()),
        ("lossy_30", FaultConfig::lossy(0.3, 32)),
        ("paper_full", FaultConfig::paper(0.3, 0.15, 0.15, 32)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut ch = FaultyChannel::new(*cfg, 42);
                let mut delivered = 0u64;
                for i in 0..n {
                    ch.send(i);
                    if ch.recv().and_then(|d| d.intact()).is_some() {
                        delivered += 1;
                    }
                }
                delivered
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
