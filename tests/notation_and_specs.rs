//! Integration tests for the notation layer through the public facade:
//! textual program parsing, paper-layout printing, run monitoring, and
//! mixed specifications.

use knowledge_pt::prelude::*;
use knowledge_pt::unity::{parse_program, MixedSpec};

const DINING_TEXT: &str = r"
program handshake
declare
  turn : {mine, yours}
  a_done : boolean
  b_done : boolean
processes
  A = {turn, a_done}
  B = {turn, b_done}
init
  turn = mine /\ ~a_done /\ ~b_done
assign
  a_work: a_done := 1 || turn := 1 if turn = mine /\ ~a_done
  [] b_work: b_done := 1 || turn := 0 if turn = yours /\ ~b_done
";

#[test]
fn parse_verify_and_monitor() {
    let (space, program) = parse_program(DINING_TEXT).unwrap();
    let compiled = program.compile().unwrap();

    // Model-check: both sides finish.
    let both = parse_formula("a_done /\\ b_done").unwrap();
    let ctx = EvalContext::new(&space);
    let both_pred = ctx.eval(&both).unwrap();
    assert!(compiled.leads_to_holds(&Predicate::tt(&space), &both_pred));

    // Execute and monitor the run with formulas.
    let start = compiled.init().witness().unwrap();
    let mut sched = RoundRobin::new();
    let run = execute(&compiled, start, 10, &mut sched);
    let order = parse_formula("b_done => a_done").unwrap();
    assert!(run.all_satisfy(&ctx, &order).unwrap(), "A hands over first");
    assert!(run.first_satisfying(&ctx, &both).unwrap().is_some());

    // The pretty-printer emits the paper layout and the text reparses.
    let printed = program.to_string();
    assert!(printed.contains("program handshake"));
    assert!(printed.contains("A = {turn, a_done}"));
    let reparsable = printed
        .lines()
        .filter(|l| !l.trim_start().starts_with("1 state"))
        .collect::<Vec<_>>()
        .join("\n")
        .replace("init\n", "init\n  turn = mine /\\ ~a_done /\\ ~b_done\n");
    let (_, again) = parse_program(&reparsable).unwrap();
    assert_eq!(again.statements().len(), 2);
    let again_c = again.compile().unwrap();
    assert_eq!(again_c.si(), compiled.si());
}

#[test]
fn mixed_spec_over_parsed_program() {
    let (space, program) = parse_program(DINING_TEXT).unwrap();
    let ctx = EvalContext::new(&space);
    let a_done = ctx.eval(&parse_formula("a_done").unwrap()).unwrap();
    let b_done = ctx.eval(&parse_formula("b_done").unwrap()).unwrap();
    let spec = MixedSpec::new(program)
        .invariant("b-after-a", b_done.implies(&a_done))
        .stable("a-latched", a_done.clone())
        .leads_to("completes", Predicate::tt(&space), a_done.and(&b_done));
    let r = spec.check_implementable().unwrap();
    assert!(r.is_implementable(), "{:?}", r.violations);
}

#[test]
fn parsed_kbp_round_trips_through_the_solver() {
    // A parsed knowledge-based protocol goes straight into the eq. (25)
    // machinery.
    let src = r"
program parsed_kbp
declare
  b : boolean
processes
  P = {}
init
  ~b
assign
  s: b := 1 if ~K{P}(~b)
";
    let (_, program) = parse_program(src).unwrap();
    assert!(program.is_knowledge_based());
    let kbp = Kbp::new(program);
    let sols = kbp.solve_exhaustive(16).unwrap();
    // The self-referential blind-process KBP: two solutions (see
    // kbp_solutions.rs for the analysis).
    assert_eq!(sols.len(), 2);
}

#[test]
fn figures_from_text_equal_builtin_figures() {
    // The Figure-2 text parses to a program with the same solution
    // structure as the built-in constructor.
    let src = r"
program figure2
declare
  x : boolean
  y : boolean
  z : boolean
processes
  P0 = {y}
  P1 = {z}
init
  ~y
assign
  set_y: y := 1 if K{P0}(x)
  [] set_z: z := 1 if K{P1}(~y)
";
    let (space, program) = parse_program(src).unwrap();
    let parsed = Kbp::new(program);
    let builtin = figure2("~y").unwrap();
    let ps = parsed.solve_exhaustive(16).unwrap();
    let bs = builtin.solve_exhaustive(16).unwrap();
    assert_eq!(ps.len(), bs.len());
    let not_y = Predicate::var_is_true(&space, space.var("y").unwrap()).negate();
    assert_eq!(ps.strongest(), Some(&not_y));
    assert_eq!(bs.strongest(), Some(&not_y));
}
