//! Seeded-defect suite for the `kpt-lint` static analyzer.
//!
//! One deliberately broken program variant per diagnostic code, each
//! asserting that *exactly* that code fires — plus zero-findings checks
//! over every healthy in-tree model (the Figure 2 variants, muddy
//! children, the §6 standard protocol and Figure-3 KBP, and the
//! symbolic-scale escape-hatch instance). Figure 1 is the one model that
//! is *supposed* to be flagged: its eq. (25) circularity, reported both
//! symbolically (`KPT009`) and syntactically by the dataflow pass
//! (`KPT011`). The dataflow codes (`KPT010`-`KPT012`) are seeded at
//! `--depth dataflow` so the symbolic confirmations cannot mask them,
//! and the span tests drive `.kpt` text through `lint_source` and check
//! the caret rendering points at the guilty construct.

use knowledge_pt::prelude::*;
use knowledge_pt::seqtrans::{figure3_kbp, ModelOptions, StandardModel};

/// Codes of a report, as stable strings, in emission order.
fn codes(report: &LintReport) -> Vec<&'static str> {
    report.codes().iter().map(|c| c.code()).collect()
}

fn lint_codes(program: &Program) -> Vec<&'static str> {
    codes(&knowledge_pt::lint::lint_program(program))
}

// ---------------------------------------------------------------- seeded

#[test]
fn kpt001_unknown_identifier() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-001", &space)
        .init_str("~x")
        .unwrap()
        .statement(
            Statement::new("s")
                .guard_str("ghost")
                .unwrap()
                .assign_str("x", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    assert_eq!(codes(&report), ["KPT001"]);
    assert_eq!(report.error_count(), 1);
    // Errors in the cheap passes suppress the symbolic pass.
    assert!(!report.symbolic_ran);
}

#[test]
fn kpt001_unknown_assignment_target() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-001b", &space)
        .init_str("~x")
        .unwrap()
        .statement(Statement::new("s").assign_str("phantom", "1").unwrap())
        .build()
        .unwrap();
    assert_eq!(lint_codes(&program), ["KPT001"]);
}

#[test]
fn kpt002_update_out_of_range() {
    let space = StateSpace::builder()
        .nat_var("i", 4)
        .unwrap()
        .build()
        .unwrap();
    // `i := i + 1` with no guard overflows the domain at i = 3.
    let program = Program::builder("seed-002", &space)
        .init_str("i = 0")
        .unwrap()
        .statement(Statement::new("inc").assign_str("i", "i + 1").unwrap())
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    assert_eq!(codes(&report), ["KPT002"]);
    // The finding carries the offending state as a witness.
    let d = &report.diagnostics[0];
    assert_eq!(d.witnesses.len(), 1);
    assert!(d.witnesses[0]
        .assignment
        .iter()
        .any(|(var, val)| var == "i" && val == "3"));
}

#[test]
fn kpt003_param_shadows_variable() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .bool_var("y")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-003", &space)
        .init_str("~x /\\ ~y")
        .unwrap()
        .statement(
            Statement::new("s")
                .param("x", 1)
                .guard_str("x = 1")
                .unwrap()
                .assign_str("y", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    assert_eq!(codes(&report), ["KPT003"]);
    // A shadowing warning still lets the symbolic pass run.
    assert!(report.symbolic_ran);
}

#[test]
fn kpt004_empty_init() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-004", &space)
        .init_str("x /\\ ~x")
        .unwrap()
        .statement(
            Statement::new("s")
                .guard_str("x")
                .unwrap()
                .assign_str("x", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(lint_codes(&program), ["KPT004"]);
}

#[test]
fn kpt005_guard_reads_outside_view() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .bool_var("z")
        .unwrap()
        .build()
        .unwrap();
    // P0 sees only x, but its knowledge-guarded statement also tests z.
    let program = Program::builder("seed-005", &space)
        .init_str("~x /\\ ~z")
        .unwrap()
        .process("P0", ["x"])
        .unwrap()
        .statement(
            Statement::new("s")
                .guard_str("K{P0}(x) /\\ z")
                .unwrap()
                .assign_str("x", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(lint_codes(&program), ["KPT005"]);
}

#[test]
fn kpt005_update_reads_outside_view() {
    let space = StateSpace::builder()
        .nat_var("a", 3)
        .unwrap()
        .nat_var("b", 3)
        .unwrap()
        .build()
        .unwrap();
    // The guard is view-sound but the update copies a variable P0 cannot
    // see. Writing outside the view is fine; *reading* is not.
    let program = Program::builder("seed-005b", &space)
        .init_str("a = 0 /\\ b = 0")
        .unwrap()
        .process("P0", ["a"])
        .unwrap()
        .statement(
            Statement::new("copy")
                .guard_str("K{P0}(a = 0)")
                .unwrap()
                .assign_str("a", "b")
                .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(lint_codes(&program), ["KPT005"]);
}

#[test]
fn kpt006_unknown_process() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-006", &space)
        .init_str("~x")
        .unwrap()
        .statement(
            Statement::new("s")
                .guard_str("K{Nobody}(x)")
                .unwrap()
                .assign_str("x", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(lint_codes(&program), ["KPT006"]);
}

#[test]
fn kpt007_dead_guard() {
    let space = StateSpace::builder()
        .nat_var("i", 4)
        .unwrap()
        .build()
        .unwrap();
    // `i` never reaches 5 (it is not even in the domain), so the guard is
    // unsatisfiable within the strongest invariant.
    let program = Program::builder("seed-007", &space)
        .init_str("i = 0")
        .unwrap()
        .statement(
            Statement::new("inc")
                .guard_str("i < 3")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("dead")
                .guard_str("i = 5")
                .unwrap()
                .assign_str("i", "0")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    // The interval pass proves the same guard dead (`i` never leaves
    // [0, 3]), so the cheap KPT010 verdict rides along with KPT007 —
    // the soundness direction the differential fuzz campaign pins.
    assert_eq!(codes(&report), ["KPT007", "KPT010"]);
    assert_eq!(report.diagnostics[0].statement.as_deref(), Some("dead"));
}

#[test]
fn kpt007_requires_the_symbolic_pass() {
    let space = StateSpace::builder()
        .nat_var("i", 4)
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("seed-007b", &space)
        .init_str("i = 0")
        .unwrap()
        .statement(
            Statement::new("dead")
                .guard_str("i = 3")
                .unwrap()
                .assign_str("i", "0")
                .unwrap(),
        )
        .build()
        .unwrap();
    // Below dataflow depth nothing can prove the guard dead.
    let report = knowledge_pt::lint::lint_program_with(&program, &LintOptions::fast());
    assert!(!report.dataflow_ran);
    assert!(!report.symbolic_ran);
    assert!(report.is_clean());
    // The dataflow pass already catches it without the symbolic engine:
    // `i` stays 0, so `i = 3` is interval-dead.
    let report =
        knowledge_pt::lint::lint_program_with(&program, &LintOptions::up_to(Depth::Dataflow));
    assert!(report.dataflow_ran);
    assert!(!report.symbolic_ran);
    assert_eq!(codes(&report), ["KPT010"]);
}

#[test]
fn kpt008_write_write_race() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .build()
        .unwrap();
    // Two unconditional statements drive x to different values: the final
    // state depends on the scheduler.
    let program = Program::builder("seed-008", &space)
        .init_str("~x")
        .unwrap()
        .statement(Statement::new("set").assign_str("x", "1").unwrap())
        .statement(Statement::new("clear").assign_str("x", "0").unwrap())
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    assert_eq!(codes(&report), ["KPT008"]);
    assert_eq!(report.diagnostics[0].witnesses.len(), 1);
}

#[test]
fn kpt009_figure1_circularity() {
    // The paper's Figure 1: `grant` is guarded by K₀(¬x) while `take` —
    // enabled by grant's own write — sets x. Eq. (25) is non-monotone and
    // the protocol provably has no solution; the linter flags exactly
    // this — the symbolic KPT009 and its syntactic dataflow shadow
    // KPT011, both anchored on `grant`.
    let kbp = figure1().unwrap();
    let report = knowledge_pt::lint::lint_kbp(&kbp);
    assert_eq!(codes(&report), ["KPT009", "KPT011"]);
    for d in &report.diagnostics {
        assert_eq!(d.statement.as_deref(), Some("grant"), "{d}");
    }
    assert_eq!(report.warning_count(), 2);
    assert_eq!(report.error_count(), 0);
}

// -------------------------------------------------- dataflow (KPT010-012)

/// Dataflow-depth options: the interval/dependency/reachability passes
/// run, the symbolic confirmations do not — so the seeded defects below
/// assert *exactly* their dataflow code.
fn dataflow_codes(program: &Program) -> Vec<&'static str> {
    codes(&knowledge_pt::lint::lint_program_with(
        program,
        &LintOptions::up_to(Depth::Dataflow),
    ))
}

#[test]
fn kpt010_interval_dead_guard() {
    let space = StateSpace::builder()
        .nat_var("i", 8)
        .unwrap()
        .build()
        .unwrap();
    // `i` climbs from 0 but the guard `i < 3` caps the box at [0, 3];
    // `i = 7` can never hold, and the interval fixpoint proves it.
    let program = Program::builder("seed-010", &space)
        .init_str("i = 0")
        .unwrap()
        .statement(
            Statement::new("step")
                .guard_str("i < 3")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("never")
                .guard_str("i = 7")
                .unwrap()
                .assign_str("i", "0")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report =
        knowledge_pt::lint::lint_program_with(&program, &LintOptions::up_to(Depth::Dataflow));
    assert_eq!(codes(&report), ["KPT010"]);
    assert_eq!(report.diagnostics[0].statement.as_deref(), Some("never"));
    // The full pipeline must confirm symbolically: KPT010 ⊑ KPT007.
    let full = knowledge_pt::lint::lint_program(&program);
    assert_eq!(codes(&full), ["KPT007", "KPT010"]);
}

#[test]
fn kpt011_knowledge_dependency_cycle() {
    // Figure 1 again, but the cheap pass alone: the grant/take read-write
    // cycle is detected purely syntactically.
    let kbp = figure1().unwrap();
    let report =
        knowledge_pt::lint::lint_program_with(kbp.program(), &LintOptions::up_to(Depth::Dataflow));
    assert_eq!(codes(&report), ["KPT011"]);
    assert!(!report.symbolic_ran);
    assert_eq!(report.diagnostics[0].statement.as_deref(), Some("grant"));
}

#[test]
fn kpt012_unimplementable_knowledge() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .bool_var("y")
        .unwrap()
        .bool_var("h")
        .unwrap()
        .build()
        .unwrap();
    // P0 observes only x. `h` is flipped by an independent statement and
    // is neither init-correlated with x nor ever funnelled into anything
    // P0 can see — so `K{P0}(h)` can never be established.
    let program = Program::builder("seed-012", &space)
        .init_str("~x /\\ ~y /\\ ~h")
        .unwrap()
        .process("P0", ["x"])
        .unwrap()
        .statement(
            Statement::new("flip")
                .guard_str("~h")
                .unwrap()
                .assign_str("h", "1")
                .unwrap(),
        )
        .statement(
            Statement::new("blocked")
                .guard_str("K{P0}(h)")
                .unwrap()
                .assign_str("y", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    assert_eq!(dataflow_codes(&program), ["KPT012"]);
}

#[test]
fn kpt012_stays_silent_when_information_flows() {
    let space = StateSpace::builder()
        .bool_var("x")
        .unwrap()
        .bool_var("h")
        .unwrap()
        .build()
        .unwrap();
    // Same hidden variable, but `reveal` copies h into P0's view — the
    // reachable-information closure picks it up and KPT012 stays silent.
    let program = Program::builder("seed-012-ok", &space)
        .init_str("~x /\\ ~h")
        .unwrap()
        .process("P0", ["x"])
        .unwrap()
        .statement(
            Statement::new("flip")
                .guard_str("~h")
                .unwrap()
                .assign_str("h", "1")
                .unwrap(),
        )
        .statement(
            Statement::new("reveal")
                .guard_str("h")
                .unwrap()
                .assign_str("x", "1")
                .unwrap(),
        )
        .statement(
            Statement::new("act")
                .guard_str("K{P0}(h)")
                .unwrap()
                .assign_str("x", "0")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report =
        knowledge_pt::lint::lint_program_with(&program, &LintOptions::up_to(Depth::Dataflow));
    assert!(
        !report.has(DiagnosticCode::UnimplementableKnowledge),
        "{report}"
    );
}

// --------------------------------------------------------------- healthy

#[test]
fn healthy_models_are_clean() {
    let mut programs: Vec<(String, Program)> = Vec::new();
    for init in ["~y", "~y /\\ x"] {
        programs.push((
            format!("figure2[{init}]"),
            figure2(init).unwrap().program().clone(),
        ));
    }
    programs.push((
        "muddy".into(),
        knowledge_pt::core::muddy_children_n(2)
            .unwrap()
            .program()
            .clone(),
    ));
    programs.push((
        "muddy+memory".into(),
        knowledge_pt::core::muddy_children_with_memory_n(2)
            .unwrap()
            .program()
            .clone(),
    ));
    let model = StandardModel::build(2, 2, ModelOptions::default()).unwrap();
    programs.push(("seqtrans-std".into(), model.program().clone()));
    programs.push((
        "seqtrans-fig3".into(),
        figure3_kbp(&model).unwrap().program().clone(),
    ));

    for (name, program) in &programs {
        let report = knowledge_pt::lint::lint_program(program);
        assert!(report.is_clean(), "{name} must lint clean, got: {report}");
        assert!(report.dataflow_ran, "{name} must run the dataflow pass");
        assert!(report.symbolic_ran, "{name} must reach the symbolic pass");
    }
}

#[test]
fn escape_hatch_model_is_clean() {
    // The 159-free-state instance the exhaustive solver rejects: the
    // linter's symbolic pass must still handle it (and find nothing).
    let space = StateSpace::builder()
        .nat_var("i", 80)
        .unwrap()
        .bool_var("done")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("bdd-escape", &space)
        .init_str("i = 0 && !done")
        .unwrap()
        .process("P", ["i"])
        .unwrap()
        .statement(
            Statement::new("inc")
                .guard_str("i < 79")
                .unwrap()
                .assign_str("i", "i + 1")
                .unwrap(),
        )
        .statement(
            Statement::new("finish")
                .guard_str("K{P}(i >= 40)")
                .unwrap()
                .assign_str("done", "1")
                .unwrap(),
        )
        .build()
        .unwrap();
    let report = knowledge_pt::lint::lint_program(&program);
    assert!(report.is_clean(), "escape hatch: {report}");
    assert!(report.symbolic_ran);
}

// ------------------------------------------------------------- reporting

#[test]
fn report_json_round_trips_through_the_obs_parser() {
    let report = knowledge_pt::lint::lint_kbp(&figure1().unwrap());
    let json = report.to_json();
    let value = knowledge_pt::obs::parse_json(&json).expect("valid JSON");
    assert_eq!(
        value.get("program").and_then(|v| v.as_str()),
        Some("figure1")
    );
    let diags = value
        .get("diagnostics")
        .and_then(|v| v.as_array())
        .expect("diagnostics array");
    // Figure 1's circularity pair: the syntactic KPT011 and symbolic KPT009.
    assert_eq!(diags.len(), 2);
    let kpt009 = diags
        .iter()
        .find(|d| d.get("code").and_then(|v| v.as_str()) == Some("KPT009"))
        .expect("KPT009 in the JSON report");
    assert_eq!(
        kpt009.get("paper_ref").and_then(|v| v.as_str()),
        Some("eq. (25), Figure 1")
    );
    assert!(diags
        .iter()
        .any(|d| d.get("code").and_then(|v| v.as_str()) == Some("KPT011")));
}

#[test]
fn every_code_has_severity_and_paper_reference() {
    assert_eq!(DiagnosticCode::ALL.len(), 12);
    for code in DiagnosticCode::ALL {
        assert!(code.code().starts_with("KPT"));
        assert!(!code.paper_ref().is_empty());
        assert_eq!(DiagnosticCode::from_code(code.code()), Some(code));
        let _ = code.severity();
        let _ = code.depth();
    }
}

// ----------------------------------------------------------------- spans

#[test]
fn lint_source_diagnostics_carry_spans_and_carets() {
    // A textual model with an interval-dead guard: `i` never exceeds 3,
    // so `never`'s guard is provably false. Every diagnostic produced by
    // lint_source must carry a byte span, and the caret rendering must
    // point into the guilty guard's text.
    let src = "\
program span_demo
declare
  i : nat<8>
init
  i = 0
assign
  step: i := i + 1 if i < 3
  [] never: i := 0 if i = 7
";
    let report =
        knowledge_pt::lint::lint_source(src, &LintOptions::default()).expect("source elaborates");
    assert!(
        report.has(DiagnosticCode::IntervalDeadGuard),
        "expected KPT010: {report}"
    );
    assert!(report.has(DiagnosticCode::DeadGuard), "expected KPT007");
    for d in &report.diagnostics {
        let span = d
            .span
            .unwrap_or_else(|| panic!("diagnostic {d} has no span"));
        assert!(span.start + span.len <= src.len(), "span inside the source");
    }
    // The dead guard's span covers its source text.
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == DiagnosticCode::IntervalDeadGuard)
        .unwrap();
    let span = d.span.unwrap();
    assert_eq!(&src[span.start..span.start + span.len], "i = 7");
    // Caret rendering: the line is echoed with a marker underneath.
    let rendered = report.render_source(src);
    assert!(
        rendered.contains("i = 7") && rendered.contains('^'),
        "caret rendering points at the guard:\n{rendered}"
    );
}

#[test]
fn spans_survive_the_json_report() {
    let src = "\
program span_json
declare
  x : boolean
init
  ~x
assign
  never: x := 1 if x /\\ ~x
";
    let report =
        knowledge_pt::lint::lint_source(src, &LintOptions::default()).expect("source elaborates");
    assert!(!report.diagnostics.is_empty());
    let value = knowledge_pt::obs::parse_json(&report.to_json()).expect("valid JSON");
    let diags = value
        .get("diagnostics")
        .and_then(|v| v.as_array())
        .expect("diagnostics array");
    for d in diags {
        let span = d.get("span").expect("span field present");
        let start = span
            .get("start")
            .and_then(|v| v.as_u64())
            .expect("span.start");
        let len = span.get("len").and_then(|v| v.as_u64()).expect("span.len");
        assert!((start + len) as usize <= src.len());
    }
}
