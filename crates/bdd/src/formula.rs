//! Symbolic evaluation of `kpt_logic::Formula` — the same semantics as
//! `kpt_logic::EvalContext` (parameters, enum-label fallback in comparison
//! context, domain-bounded quantifiers, knowledge atoms), producing BDD
//! roots instead of bitsets.
//!
//! Comparisons are the only atoms that need value arithmetic; they are
//! translated by enumerating the *support* of the two sides (the product
//! of the mentioned variables' domains, never the whole state space) and
//! OR-ing one cube per satisfying combination.

use std::collections::HashMap;
use std::sync::Arc;

use kpt_logic::{CmpOp, EvalError, Expr, Formula};
use kpt_state::{Domain, VarId, VarSet};

use crate::error::BddError;
use crate::knowledge::SymbolicKnowledge;
use crate::manager::{Manager, NodeId, FALSE};
use crate::predicate::SymbolicPredicate;
use crate::space::BddSpace;
use crate::transition::SUPPORT_ENUM_MAX;

/// Evaluation context for symbolic formula evaluation: a space, named
/// integer parameters, and optionally a knowledge operator for `K{i}`
/// atoms.
pub struct SymbolicEvalContext<'a> {
    space: &'a Arc<BddSpace>,
    params: HashMap<String, i64>,
    knowledge: Option<&'a SymbolicKnowledge>,
}

impl<'a> SymbolicEvalContext<'a> {
    /// A context with no parameters and no knowledge semantics.
    pub fn new(space: &'a Arc<BddSpace>) -> Self {
        SymbolicEvalContext {
            space,
            params: HashMap::new(),
            knowledge: None,
        }
    }

    /// Bind a named parameter.
    #[must_use]
    pub fn with_param(mut self, name: &str, value: i64) -> Self {
        self.params.insert(name.to_owned(), value);
        self
    }

    /// Bind every parameter in `params`.
    #[must_use]
    pub fn with_params(mut self, params: &HashMap<String, i64>) -> Self {
        for (k, v) in params {
            self.params.insert(k.clone(), *v);
        }
        self
    }

    /// Attach knowledge semantics for `K{i}` atoms.
    #[must_use]
    pub fn with_knowledge(mut self, k: &'a SymbolicKnowledge) -> Self {
        self.knowledge = Some(k);
        self
    }

    /// Evaluate a formula to a symbolic predicate.
    ///
    /// # Errors
    /// The same failures as `kpt_logic::EvalContext::eval`, wrapped in
    /// [`BddError::Eval`], plus [`BddError::SupportTooLarge`] when a
    /// comparison mentions too many variable values to enumerate.
    pub fn eval(&self, f: &Formula) -> Result<SymbolicPredicate, BddError> {
        let mut mgr = self.space.lock();
        let root = self.eval_raw(&mut mgr, f)?;
        drop(mgr);
        Ok(SymbolicPredicate::new(self.space, root))
    }

    /// Evaluate and test validity over all valid states.
    ///
    /// # Errors
    /// As for [`SymbolicEvalContext::eval`].
    pub fn holds_everywhere(&self, f: &Formula) -> Result<bool, BddError> {
        Ok(self.eval(f)?.everywhere())
    }

    pub(crate) fn eval_raw(&self, mgr: &mut Manager, f: &Formula) -> Result<NodeId, BddError> {
        let space = self.space;
        let st_space = space.space();
        match f {
            Formula::Const(b) => Ok(if *b { space.domain_ok_cur() } else { FALSE }),
            Formula::BoolVar(name) => {
                if let Some(&v) = self.params.get(name) {
                    return match v {
                        0 => Ok(FALSE),
                        1 => Ok(space.domain_ok_cur()),
                        _ => Err(EvalError::Type(format!(
                            "parameter `{name}` used as boolean but has value {v}"
                        ))
                        .into()),
                    };
                }
                let var = st_space
                    .var(name)
                    .map_err(|_| EvalError::UnknownIdentifier(name.clone()))?;
                match st_space.domain(var) {
                    Domain::Bool => Ok(space.var_fn_raw(mgr, var, |x| x != 0)),
                    d => Err(EvalError::Type(format!(
                        "variable `{name}` of domain {d} used as boolean atom"
                    ))
                    .into()),
                }
            }
            Formula::Cmp(op, lhs, rhs) => self.eval_cmp(mgr, *op, lhs, rhs),
            Formula::Not(g) => {
                let inner = self.eval_raw(mgr, g)?;
                let n = mgr.not(inner);
                Ok(mgr.and(n, space.domain_ok_cur()))
            }
            Formula::And(a, b) => {
                let l = self.eval_raw(mgr, a)?;
                let r = self.eval_raw(mgr, b)?;
                Ok(mgr.and(l, r))
            }
            Formula::Or(a, b) => {
                let l = self.eval_raw(mgr, a)?;
                let r = self.eval_raw(mgr, b)?;
                Ok(mgr.or(l, r))
            }
            Formula::Implies(a, b) => {
                let l = self.eval_raw(mgr, a)?;
                let r = self.eval_raw(mgr, b)?;
                let imp = mgr.implies(l, r);
                Ok(mgr.and(imp, space.domain_ok_cur()))
            }
            Formula::Iff(a, b) => {
                let l = self.eval_raw(mgr, a)?;
                let r = self.eval_raw(mgr, b)?;
                let eq = mgr.iff(l, r);
                Ok(mgr.and(eq, space.domain_ok_cur()))
            }
            Formula::Forall(name, body) => {
                let var = self.quantified_var(name)?;
                let inner = self.eval_raw(mgr, body)?;
                Ok(space.forall_vars_raw(mgr, inner, [var]))
            }
            Formula::Exists(name, body) => {
                let var = self.quantified_var(name)?;
                let inner = self.eval_raw(mgr, body)?;
                Ok(space.exists_vars_raw(mgr, inner, [var]))
            }
            Formula::Knows(process, body) => {
                let inner = self.eval_raw(mgr, body)?;
                match self.knowledge {
                    Some(k) => {
                        let view = k.view(process)?;
                        Ok(k.knows_view_raw(mgr, view, inner))
                    }
                    None => Err(EvalError::KnowledgeUnavailable.into()),
                }
            }
        }
    }

    fn quantified_var(&self, name: &str) -> Result<VarId, BddError> {
        self.space
            .space()
            .var(name)
            .map_err(|_| EvalError::UnknownIdentifier(name.to_owned()).into())
    }

    fn eval_cmp(
        &self,
        mgr: &mut Manager,
        op: CmpOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<NodeId, BddError> {
        let l = self.compile(lhs);
        let r = self.compile(rhs);
        let (l, r) = match (l, r) {
            (Ok(l), Ok(r)) => (l, r),
            // One side is an unresolved bare identifier: try to read it as
            // an enum label of the other side's variable.
            (Err(name), Ok(r)) => {
                let code = self.resolve_label(&name, &r)?;
                (CExpr::Const(code), r)
            }
            (Ok(l), Err(name)) => {
                let code = self.resolve_label(&name, &l)?;
                (l, CExpr::Const(code))
            }
            (Err(name), Err(_)) => return Err(EvalError::UnknownIdentifier(name).into()),
        };
        let st_space = self.space.space();
        let mut support = VarSet::default();
        l.support(&mut support);
        r.support(&mut support);
        let vars: Vec<VarId> = support.iter().collect();
        let combos: u64 = vars
            .iter()
            .map(|v| st_space.domain(*v).size())
            .try_fold(1u64, |acc, s| acc.checked_mul(s))
            .unwrap_or(u64::MAX);
        if combos > SUPPORT_ENUM_MAX {
            return Err(BddError::SupportTooLarge {
                statement: format!("comparison `{}`", op.symbol()),
                combinations: combos,
                limit: SUPPORT_ENUM_MAX,
            });
        }
        let mut values: HashMap<VarId, u64> = HashMap::new();
        let mut acc = FALSE;
        for combo in 0..combos {
            let mut rest = combo;
            for v in &vars {
                let size = st_space.domain(*v).size();
                values.insert(*v, rest % size);
                rest /= size;
            }
            if op.apply(l.eval(&values), r.eval(&values)) {
                let mut cube = crate::manager::TRUE;
                for v in vars.iter().rev() {
                    let c = self.space.value_cube(mgr, *v, values[v], false);
                    cube = mgr.and(cube, c);
                }
                acc = mgr.or(acc, cube);
            }
        }
        Ok(mgr.and(acc, self.space.domain_ok_cur()))
    }

    fn resolve_label(&self, label: &str, peer: &CExpr) -> Result<i64, BddError> {
        if let CExpr::Var(v) = peer {
            if let Some(code) = self.space.space().domain(*v).label_code(label) {
                return Ok(code as i64);
            }
        }
        Err(EvalError::UnknownIdentifier(label.to_owned()).into())
    }

    /// Compile an expression; `Err(name)` is an unresolved bare identifier
    /// (possibly an enum label in comparison context) — the same contract
    /// as `kpt_logic::EvalContext`.
    fn compile(&self, e: &Expr) -> Result<CExpr, String> {
        match e {
            Expr::Const(n) => Ok(CExpr::Const(*n)),
            Expr::Ident(name) => {
                if let Some(&v) = self.params.get(name) {
                    Ok(CExpr::Const(v))
                } else if let Ok(var) = self.space.space().var(name) {
                    Ok(CExpr::Var(var))
                } else {
                    Err(name.clone())
                }
            }
            Expr::Add(a, b) => Ok(CExpr::Add(
                Box::new(self.compile(a)?),
                Box::new(self.compile(b)?),
            )),
            Expr::Sub(a, b) => Ok(CExpr::Sub(
                Box::new(self.compile(a)?),
                Box::new(self.compile(b)?),
            )),
        }
    }
}

/// A compiled side of a comparison, mirroring the private `CExpr` of
/// `kpt_logic::eval` but evaluated over support valuations instead of
/// explicit states.
#[derive(Debug)]
pub(crate) enum CExpr {
    Const(i64),
    Var(VarId),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    pub(crate) fn support(&self, out: &mut VarSet) {
        match self {
            CExpr::Const(_) => {}
            CExpr::Var(v) => out.insert(*v),
            CExpr::Add(a, b) | CExpr::Sub(a, b) => {
                a.support(out);
                b.support(out);
            }
        }
    }

    pub(crate) fn eval(&self, values: &HashMap<VarId, u64>) -> i64 {
        match self {
            CExpr::Const(n) => *n,
            CExpr::Var(v) => values[v] as i64,
            CExpr::Add(a, b) => a.eval(values) + b.eval(values),
            CExpr::Sub(a, b) => a.eval(values) - b.eval(values),
        }
    }

    /// Evaluate at an explicit state (used to pinpoint out-of-range
    /// assignment witnesses).
    pub(crate) fn eval_state(&self, space: &kpt_state::StateSpace, state: u64) -> i64 {
        match self {
            CExpr::Const(n) => *n,
            CExpr::Var(v) => space.value(state, *v) as i64,
            CExpr::Add(a, b) => a.eval_state(space, state) + b.eval_state(space, state),
            CExpr::Sub(a, b) => a.eval_state(space, state) - b.eval_state(space, state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_logic::parse_formula;
    use kpt_state::StateSpace;

    fn setup() -> (Arc<StateSpace>, Arc<BddSpace>) {
        let space = StateSpace::builder()
            .bool_var("b")
            .unwrap()
            .nat_var("i", 4)
            .unwrap()
            .nat_var("j", 4)
            .unwrap()
            .enum_var("z", ["bot", "m0", "m1"])
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        (space, bdd)
    }

    fn agree(src: &str, space: &Arc<StateSpace>, bdd: &Arc<BddSpace>) {
        let f = parse_formula(src).unwrap();
        let explicit = kpt_logic::EvalContext::new(space)
            .with_param("k", 2)
            .eval(&f)
            .unwrap();
        let symbolic = SymbolicEvalContext::new(bdd)
            .with_param("k", 2)
            .eval(&f)
            .unwrap();
        assert_eq!(symbolic.to_explicit(), explicit, "formula `{src}`");
    }

    #[test]
    fn formulas_agree_with_explicit_evaluation() {
        let (space, bdd) = setup();
        for src in [
            "true",
            "false",
            "b",
            "~b",
            "i = 2",
            "i != j",
            "i + 1 <= j",
            "i - j >= 0",
            "i = k",
            "z = m1",
            "bot = z",
            "b && i < 2",
            "b || i < 2",
            "(i <= j) => (j >= i)",
            "(i = j) <=> (j = i)",
            "forall i :: i <= 3",
            "exists j :: j > i",
            "forall i :: (exists j :: j = i)",
        ] {
            agree(src, &space, &bdd);
        }
    }

    #[test]
    fn errors_mirror_explicit_evaluation() {
        let (_, bdd) = setup();
        let ctx = SymbolicEvalContext::new(&bdd);
        let f = parse_formula("nosuch = 3").unwrap();
        assert!(matches!(
            ctx.eval(&f),
            Err(BddError::Eval(EvalError::UnknownIdentifier(_)))
        ));
        let f = parse_formula("i = 1 && K{P}(b)").unwrap();
        assert!(matches!(
            ctx.eval(&f),
            Err(BddError::Eval(EvalError::KnowledgeUnavailable))
        ));
        let f = parse_formula("i").unwrap();
        assert!(matches!(
            ctx.eval(&f),
            Err(BddError::Eval(EvalError::Type(_)))
        ));
    }
}
