//! Explainable verdicts for UNITY property checks.
//!
//! The deciders on [`CompiledProgram`] return bare booleans — right for
//! proof replay, useless for a human asking *why* `invariant p` failed.
//! [`explain_property`] re-runs the check and, on failure, decodes a
//! bounded sample of offending states through the space's variable names
//! into a [`kpt_obs::Verdict`], which is also reported to the trace (kind
//! `verdict.pass` / `verdict.fail`).

use kpt_obs::Verdict;
use kpt_state::{witness_state, witnesses, Predicate};

use crate::compiled::CompiledProgram;
use crate::proof::Property;

/// How many offending states a failing verdict decodes.
const MAX_WITNESSES: usize = 4;

/// Check `property` against `program` and explain the outcome. `label`
/// names the obligation in the verdict (e.g. `"phase0: invariant w⊑x"`).
///
/// Witness selection per property:
/// * `invariant p` — reachable states violating `p` (`SI ∧ ¬p`);
/// * `stable p` / `p unless q` — states the program can reach *in one
///   step* from the protected region that land outside it;
/// * `p ensures q` — the `p ∧ ¬q` states no single statement rescues;
/// * `p ↦ q` — the start state and fair trap of the counterexample
///   schedule found by the SCC analysis.
pub fn explain_property(program: &CompiledProgram, label: &str, property: &Property) -> Verdict {
    kpt_obs::counter!("unity.obligations").incr();
    let verdict = match property {
        Property::Invariant(p) => {
            let violations = program.si().and(&p.negate());
            if violations.is_false() {
                Verdict::pass(
                    format!("invariant {label}"),
                    format!("all {} reachable states satisfy p", program.si().count()),
                )
            } else {
                Verdict::fail(
                    format!("invariant {label}"),
                    format!(
                        "{} of {} reachable states violate p",
                        violations.count(),
                        program.si().count()
                    ),
                    witnesses(&violations, MAX_WITNESSES),
                )
            }
        }
        Property::Stable(p) => escape_verdict(program, label, "stable", p, p),
        Property::Unless(p, q) => {
            let protected = p.and(&q.negate());
            let safe = p.or(q);
            escape_verdict(program, label, "unless", &protected, &safe)
        }
        Property::Ensures(p, q) => {
            if program.ensures(p, q) {
                Verdict::pass(
                    format!("ensures {label}"),
                    "unless holds and some statement establishes q from every p∧¬q state"
                        .to_owned(),
                )
            } else {
                let pending = p.and(&q.negate());
                let detail = if program.unless(p, q) {
                    "unless holds but no single statement establishes q from every p∧¬q state"
                } else {
                    "the unless side condition itself fails"
                };
                Verdict::fail(
                    format!("ensures {label}"),
                    detail.to_owned(),
                    witnesses(&pending, MAX_WITNESSES),
                )
            }
        }
        Property::LeadsTo(p, q) => {
            let report = program.leads_to(p, q);
            match report.counterexample() {
                None => Verdict::pass(
                    format!("leads-to {label}"),
                    "every fair execution from p reaches q".to_owned(),
                ),
                Some(cex) => {
                    let space = program.space();
                    let mut ws = vec![witness_state(space, cex.start)];
                    for &s in cex.trap.iter().take(MAX_WITNESSES - 1) {
                        if s != cex.start {
                            ws.push(witness_state(space, s));
                        }
                    }
                    Verdict::fail(
                        format!("leads-to {label}"),
                        format!(
                            "a fair schedule of {} steps from the first witness \
                             avoids q forever (trap of {} states; remaining \
                             witnesses sample it)",
                            cex.schedule.len(),
                            cex.trap.len()
                        ),
                        ws,
                    )
                }
            }
        }
    };
    kpt_obs::report_verdict(&verdict);
    verdict
}

/// Shared shape of `stable`/`unless` explanations: the one-step escape set
/// `SP.protected ∧ ¬safe` must be empty; its members are the witnesses.
fn escape_verdict(
    program: &CompiledProgram,
    label: &str,
    kind: &str,
    protected: &Predicate,
    safe: &Predicate,
) -> Verdict {
    let escapes = program.sp(protected).and(&safe.negate());
    if escapes.is_false() {
        Verdict::pass(
            format!("{kind} {label}"),
            "no statement steps out of the protected region".to_owned(),
        )
    } else {
        Verdict::fail(
            format!("{kind} {label}"),
            format!(
                "{} states are reachable in one step from the protected \
                 region but lie outside it",
                escapes.count()
            ),
            witnesses(&escapes, MAX_WITNESSES),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::statement::Statement;
    use kpt_state::StateSpace;

    fn toggle() -> CompiledProgram {
        let space = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .bool_var("y")
            .unwrap()
            .build()
            .unwrap();
        Program::builder("toggle", &space)
            .init_str("~x /\\ ~y")
            .unwrap()
            .statement(
                Statement::new("flip")
                    .guard_str("~x")
                    .unwrap()
                    .assign_str("x", "1")
                    .unwrap(),
            )
            .statement(
                Statement::new("latch")
                    .guard_str("x")
                    .unwrap()
                    .assign_str("y", "1")
                    .unwrap(),
            )
            .build()
            .unwrap()
            .compile()
            .unwrap()
    }

    #[test]
    fn failing_invariant_names_concrete_states() {
        let program = toggle();
        let space = program.space();
        let not_x = Predicate::var_is_true(space, space.var("x").unwrap()).negate();
        let v = explain_property(&program, "~x", &Property::Invariant(not_x));
        assert!(!v.holds);
        assert!(!v.witnesses.is_empty());
        // The witness is decoded via variable names: x is true there.
        let w = &v.witnesses[0];
        assert!(
            w.assignment
                .contains(&("x".to_string(), "true".to_string())),
            "{w}"
        );
        assert!(v.to_string().contains("x=true"));
    }

    #[test]
    fn holding_invariant_passes() {
        let program = toggle();
        let space = program.space();
        // y ⇒ x is invariant: y only latches once x is up and x never drops.
        let x = Predicate::var_is_true(space, space.var("x").unwrap());
        let y = Predicate::var_is_true(space, space.var("y").unwrap());
        let v = explain_property(&program, "y⇒x", &Property::Invariant(y.implies(&x)));
        assert!(v.holds);
        assert!(v.witnesses.is_empty());
    }

    #[test]
    fn failing_stable_explains_escape() {
        let program = toggle();
        let space = program.space();
        let not_y = Predicate::var_is_true(space, space.var("y").unwrap()).negate();
        let v = explain_property(&program, "~y", &Property::Stable(not_y));
        assert!(!v.holds);
        assert!(v.witnesses.iter().any(|w| w
            .assignment
            .contains(&("y".to_string(), "true".to_string()))));
    }

    #[test]
    fn leads_to_counterexample_is_decoded() {
        let space = StateSpace::builder()
            .bool_var("x")
            .unwrap()
            .bool_var("y")
            .unwrap()
            .build()
            .unwrap();
        // x flips forever; y latches only under x — the adversary can
        // starve `latch` while ~x, but fairness forces every statement;
        // instead use the lib.rs example where true ↦ y genuinely fails.
        let program = Program::builder("toggle2", &space)
            .init_str("~x /\\ ~y")
            .unwrap()
            .statement(
                Statement::new("flip_up")
                    .guard_str("~x")
                    .unwrap()
                    .assign_str("x", "1")
                    .unwrap(),
            )
            .statement(
                Statement::new("flip_dn")
                    .guard_str("x")
                    .unwrap()
                    .assign_str("x", "0")
                    .unwrap(),
            )
            .statement(
                Statement::new("latch")
                    .guard_str("x")
                    .unwrap()
                    .assign_str("y", "1")
                    .unwrap(),
            )
            .build()
            .unwrap()
            .compile()
            .unwrap();
        let y = Predicate::var_is_true(&space, space.var("y").unwrap());
        let v = explain_property(
            &program,
            "true↦y",
            &Property::LeadsTo(Predicate::tt(&space), y),
        );
        assert!(!v.holds);
        assert!(!v.witnesses.is_empty());
        assert!(v.witnesses[0]
            .assignment
            .iter()
            .any(|(name, _)| name == "y"));
    }
}
