//! The kpt-server wire protocol: JSON Lines over a byte stream.
//!
//! Every frame — in either direction — is one JSON object on one line.
//! Clients send *requests*; the server answers each request id with
//! exactly one terminal frame (`result` or `error`), possibly preceded by
//! any number of `progress` frames carrying forwarded `*.progress` trace
//! events from the in-flight computation.
//!
//! ## Requests
//!
//! ```json
//! {"id":1,"type":"parse","source":"program p ..."}
//! {"id":2,"type":"lint","source":"...","symbolic":true}
//! {"id":3,"type":"solve","source":"...","engine":"symbolic","max_iterations":64,
//!  "timeout_ms":5000,"node_budget":1000000}
//! {"id":4,"type":"verify","source":"...","invariant":"said => bknows",
//!  "leads_from":"said","leads_to":"bknows"}
//! {"id":5,"type":"explain","source":"..."}
//! {"id":6,"type":"cancel","target":3}
//! {"id":7,"type":"shutdown"}
//! ```
//!
//! `id` is a client-chosen request identifier echoed on every frame the
//! request produces; ids of in-flight requests must be unique per
//! connection (the server does not check — a duplicated id merely makes
//! the two answers indistinguishable). All other keys are per-type.
//!
//! ## Responses
//!
//! * `{"type":"result","id":N,"request":"solve", ...payload}` — success.
//! * `{"type":"error","id":N,"code":"timeout","message":"..."}` — failure;
//!   `id` is `null` when the frame was too malformed to carry one. An
//!   error never tears down the connection: the server resynchronizes at
//!   the next newline and keeps reading.
//! * `{"type":"progress","id":N,"kind":"server.solve.progress", ...}` —
//!   streamed while request `N` runs.
//!
//! Error codes are the [`codes`] constants; clients should treat unknown
//! codes as [`codes::INTERNAL`].

use kpt_obs::{json_escape_into, JsonValue, Verdict};

/// Terminal error codes, one flat namespace.
pub mod codes {
    /// The line was not a JSON object.
    pub const MALFORMED: &str = "malformed";
    /// The object violated the request schema (missing/ill-typed keys).
    pub const INVALID: &str = "invalid";
    /// The `.kpt` source failed to parse or elaborate.
    pub const PARSE: &str = "parse";
    /// A frame or state space exceeded a configured size bound.
    pub const TOO_LARGE: &str = "too_large";
    /// The request's deadline elapsed.
    pub const TIMEOUT: &str = "timeout";
    /// A `cancel` request aborted this request.
    pub const CANCELLED: &str = "cancelled";
    /// The symbolic engine exceeded the request's node budget.
    pub const BUDGET: &str = "budget";
    /// The worker pool's queue is full — retry later.
    pub const BUSY: &str = "busy";
    /// The KBP has no iterative solution (cycle or inconclusive), so the
    /// requested property cannot be evaluated against one.
    pub const UNSOLVED: &str = "unsolved";
    /// A property formula failed to parse or evaluate.
    pub const EVAL: &str = "eval";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// An engine error that maps to nothing above.
    pub const INTERNAL: &str = "internal";
}

/// Which solver backend a `solve` request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `kpt_core::Kbp` — exact, state-enumerating.
    Explicit,
    /// `kpt_bdd::SymbolicKbp` — ROBDD-backed, node-budgeted.
    Symbolic,
}

/// The request types the server executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Elaborate the source and report its dimensions.
    Parse,
    /// Run the static analyzer (same entry point as the `kpt_lint` CLI).
    Lint,
    /// Run the eq. (25) iterative solver.
    Solve,
    /// Solve, then check UNITY properties against the solution.
    Verify,
    /// Solve and explain the outcome as a witnessed verdict.
    Explain,
    /// Abort an in-flight request on the same connection.
    Cancel,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl RequestKind {
    /// The wire name, also used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Parse => "parse",
            RequestKind::Lint => "lint",
            RequestKind::Solve => "solve",
            RequestKind::Verify => "verify",
            RequestKind::Explain => "explain",
            RequestKind::Cancel => "cancel",
            RequestKind::Shutdown => "shutdown",
        }
    }
}

/// One parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on every frame this request produces.
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// `.kpt` source (parse/lint/solve/verify/explain).
    pub source: Option<String>,
    /// Solver backend; defaults to explicit.
    pub engine: Engine,
    /// Iteration cap for eq. (25); `None` takes the server default.
    pub max_iterations: Option<usize>,
    /// Per-request deadline; `None` takes the server default, `0` expires
    /// immediately (useful for deterministic timeout tests).
    pub timeout_ms: Option<u64>,
    /// Live-node budget for the symbolic engine.
    pub node_budget: Option<usize>,
    /// `verify`: invariant formula to check against the solution.
    pub invariant: Option<String>,
    /// `verify`: antecedent of a leads-to obligation.
    pub leads_from: Option<String>,
    /// `verify`: consequent of a leads-to obligation.
    pub leads_to: Option<String>,
    /// `cancel`: the id of the request to abort.
    pub target: Option<u64>,
    /// `lint`: run the symbolic pass too (default true).
    pub symbolic_lint: bool,
}

/// A schema violation: error code plus a one-line message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The request id, when the frame carried one.
    pub id: Option<u64>,
}

impl ProtoError {
    fn new(code: &'static str, id: Option<u64>, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
            id,
        }
    }
}

fn opt_str(v: &JsonValue, key: &str, id: Option<u64>) -> Result<Option<String>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtoError::new(
            codes::INVALID,
            id,
            format!("`{key}` must be a string"),
        )),
    }
}

fn opt_u64(v: &JsonValue, key: &str, id: Option<u64>) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => n.as_u64().map(Some).ok_or_else(|| {
            ProtoError::new(
                codes::INVALID,
                id,
                format!("`{key}` must be a non-negative integer"),
            )
        }),
    }
}

/// Parse one request line. `max_bytes` bounds the accepted frame size;
/// the connection layer enforces the same bound while reading, so this
/// check only catches frames handed in through other paths (stdio tests).
pub fn parse_request(line: &str, max_bytes: usize) -> Result<Request, ProtoError> {
    if line.len() > max_bytes {
        return Err(ProtoError::new(
            codes::TOO_LARGE,
            None,
            format!("frame of {} bytes exceeds limit {}", line.len(), max_bytes),
        ));
    }
    let v = kpt_obs::parse_json(line)
        .map_err(|e| ProtoError::new(codes::MALFORMED, None, format!("bad JSON: {e}")))?;
    if !matches!(v, JsonValue::Object(_)) {
        return Err(ProtoError::new(
            codes::MALFORMED,
            None,
            "frame must be a JSON object",
        ));
    }
    let id = opt_u64(&v, "id", None)?;
    let kind = match opt_str(&v, "type", id)? {
        Some(t) => match t.as_str() {
            "parse" => RequestKind::Parse,
            "lint" => RequestKind::Lint,
            "solve" => RequestKind::Solve,
            "verify" => RequestKind::Verify,
            "explain" => RequestKind::Explain,
            "cancel" => RequestKind::Cancel,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(ProtoError::new(
                    codes::INVALID,
                    id,
                    format!("unknown request type `{other}`"),
                ))
            }
        },
        None => return Err(ProtoError::new(codes::INVALID, id, "missing `type`")),
    };
    let id = match id {
        Some(id) => id,
        None => return Err(ProtoError::new(codes::INVALID, None, "missing `id`")),
    };
    let engine = match opt_str(&v, "engine", Some(id))? {
        None => Engine::Explicit,
        Some(e) => match e.as_str() {
            "explicit" => Engine::Explicit,
            "symbolic" => Engine::Symbolic,
            other => {
                return Err(ProtoError::new(
                    codes::INVALID,
                    Some(id),
                    format!("unknown engine `{other}` (want explicit|symbolic)"),
                ))
            }
        },
    };
    let source = opt_str(&v, "source", Some(id))?;
    if matches!(
        kind,
        RequestKind::Parse
            | RequestKind::Lint
            | RequestKind::Solve
            | RequestKind::Verify
            | RequestKind::Explain
    ) && source.is_none()
    {
        return Err(ProtoError::new(
            codes::INVALID,
            Some(id),
            format!("`{}` requires `source`", kind.name()),
        ));
    }
    let target = opt_u64(&v, "target", Some(id))?;
    if kind == RequestKind::Cancel && target.is_none() {
        return Err(ProtoError::new(
            codes::INVALID,
            Some(id),
            "`cancel` requires `target`",
        ));
    }
    let symbolic_lint = match v.get("symbolic") {
        None | Some(JsonValue::Null) => true,
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => {
            return Err(ProtoError::new(
                codes::INVALID,
                Some(id),
                "`symbolic` must be a boolean",
            ))
        }
    };
    Ok(Request {
        id,
        kind,
        source,
        engine,
        max_iterations: opt_u64(&v, "max_iterations", Some(id))?.map(|n| n as usize),
        timeout_ms: opt_u64(&v, "timeout_ms", Some(id))?,
        node_budget: opt_u64(&v, "node_budget", Some(id))?.map(|n| n as usize),
        invariant: opt_str(&v, "invariant", Some(id))?,
        leads_from: opt_str(&v, "leads_from", Some(id))?,
        leads_to: opt_str(&v, "leads_to", Some(id))?,
        target,
        symbolic_lint,
    })
}

/// Incremental builder for one response frame (no trailing newline).
#[derive(Debug)]
pub struct Frame {
    buf: String,
}

impl Frame {
    fn open(frame_type: &str, id: Option<u64>) -> Frame {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"type\":\"");
        buf.push_str(frame_type);
        buf.push_str("\",\"id\":");
        match id {
            Some(id) => buf.push_str(&id.to_string()),
            None => buf.push_str("null"),
        }
        Frame { buf }
    }

    /// A `result` frame answering request `id` of type `request`.
    pub fn result(id: u64, request: RequestKind) -> Frame {
        let mut f = Frame::open("result", Some(id));
        f.str_field("request", request.name());
        f
    }

    /// An `error` frame; `id` is `None` when the offending frame carried
    /// no usable id.
    pub fn error(id: Option<u64>, code: &str, message: &str) -> Frame {
        let mut f = Frame::open("error", id);
        f.str_field("code", code);
        f.str_field("message", message);
        f
    }

    /// A `progress` frame for in-flight request `id`, carrying the trace
    /// event kind that produced it.
    pub fn progress(id: u64, kind: &str) -> Frame {
        let mut f = Frame::open("progress", Some(id));
        f.str_field("kind", kind);
        f
    }

    /// Append a string field (escaped).
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        json_escape_into(value, &mut self.buf);
        self.buf.push('"');
    }

    /// Append an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Append a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Append a field whose value is already-rendered JSON.
    pub fn raw_field(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Append a trace event field, preserving its JSON type.
    pub fn event_field(&mut self, key: &str, value: &kpt_obs::Field) {
        match value {
            kpt_obs::Field::U64(v) => self.u64_field(key, *v),
            kpt_obs::Field::I64(v) => {
                self.key(key);
                self.buf.push_str(&v.to_string());
            }
            kpt_obs::Field::F64(v) => {
                self.key(key);
                if v.is_finite() {
                    self.buf.push_str(&format!("{v}"));
                } else {
                    self.buf.push_str("null");
                }
            }
            kpt_obs::Field::Bool(v) => self.bool_field(key, *v),
            kpt_obs::Field::Str(s) => self.str_field(key, s),
        }
    }

    fn key(&mut self, key: &str) {
        self.buf.push_str(",\"");
        json_escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render a [`Verdict`] as a JSON object:
/// `{"obligation":…,"holds":…,"detail":…,"witnesses":[{"index":N,"state":"a=1, b=0"},…]}`.
pub fn verdict_json(v: &Verdict) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"obligation\":\"");
    json_escape_into(&v.obligation, &mut out);
    out.push_str("\",\"holds\":");
    out.push_str(if v.holds { "true" } else { "false" });
    out.push_str(",\"detail\":\"");
    json_escape_into(&v.detail, &mut out);
    out.push_str("\",\"witnesses\":[");
    for (i, w) in v.witnesses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"index\":");
        out.push_str(&w.index.to_string());
        out.push_str(",\"state\":\"");
        let rendered = w
            .assignment
            .iter()
            .map(|(k, val)| format!("{k}={val}"))
            .collect::<Vec<_>>()
            .join(", ");
        json_escape_into(&rendered, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_solve_request() {
        let r = parse_request(
            r#"{"id":7,"type":"solve","source":"program p\n","engine":"symbolic",
                "max_iterations":9,"timeout_ms":250,"node_budget":4096}"#,
            1 << 20,
        )
        .expect("parses");
        assert_eq!(r.id, 7);
        assert_eq!(r.kind, RequestKind::Solve);
        assert_eq!(r.engine, Engine::Symbolic);
        assert_eq!(r.max_iterations, Some(9));
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.node_budget, Some(4096));
    }

    #[test]
    fn schema_violations_carry_the_id_when_present() {
        let e = parse_request(r#"{"id":3,"type":"warp"}"#, 1 << 20).unwrap_err();
        assert_eq!(e.code, codes::INVALID);
        assert_eq!(e.id, Some(3));
        let e = parse_request("not json", 1 << 20).unwrap_err();
        assert_eq!(e.code, codes::MALFORMED);
        assert_eq!(e.id, None);
        let e = parse_request(r#"{"id":1,"type":"cancel"}"#, 1 << 20).unwrap_err();
        assert_eq!(e.code, codes::INVALID);
        let e = parse_request(r#"{"id":1,"type":"solve"}"#, 1 << 20).unwrap_err();
        assert_eq!(e.code, codes::INVALID);
        assert!(e.message.contains("source"));
    }

    #[test]
    fn frames_render_escaped_json_that_reparses() {
        let mut f = Frame::result(5, RequestKind::Parse);
        f.str_field("program", "has \"quotes\"\nand newline");
        f.u64_field("states", 64);
        f.bool_field("ok", true);
        let line = f.finish();
        let v = kpt_obs::parse_json(&line).expect("frame reparses");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("result"));
        assert_eq!(v.get("id").and_then(|t| t.as_u64()), Some(5));
        assert_eq!(v.get("states").and_then(|t| t.as_u64()), Some(64));
        assert_eq!(
            v.get("program").and_then(|t| t.as_str()),
            Some("has \"quotes\"\nand newline")
        );
        let err = Frame::error(None, codes::MALFORMED, "bad \\ frame").finish();
        let v = kpt_obs::parse_json(&err).expect("error frame reparses");
        assert!(matches!(v.get("id"), Some(JsonValue::Null)));
    }

    #[test]
    fn verdicts_render_with_witnesses() {
        let v = Verdict::fail(
            "invariant p",
            "1 of 4 states violate p",
            vec![kpt_obs::WitnessState {
                index: 3,
                assignment: vec![("a".into(), "1".into())],
            }],
        );
        let json = verdict_json(&v);
        let parsed = kpt_obs::parse_json(&json).expect("verdict json parses");
        assert_eq!(parsed.get("holds").and_then(|b| b.as_bool()), Some(false));
        let ws = parsed.get("witnesses").and_then(|w| w.as_array()).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].get("state").and_then(|s| s.as_str()), Some("a=1"));
    }
}
