//! Frontier-style symbolic fixpoints: `sst` closure and the strongest
//! invariant `SI` (paper eqs. 1/3/5) over BDD transition relations.
//!
//! Each round images only the *frontier* (states discovered last round),
//! exactly like `kpt_transformers::sst_frontier`, but the image is a
//! relational product instead of a bitset scatter. Convergence is the O(1)
//! root-id comparison that restricted canonical roots buy.

use crate::manager::{Manager, NodeId, FALSE};
use crate::predicate::SymbolicPredicate;
use crate::transition::SymbolicTransition;

/// Round-by-round behaviour of one symbolic fixpoint run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolicFixpointStats {
    /// Frontier rounds until the frontier emptied.
    pub rounds: u64,
    /// Reachable ROBDD nodes of the final fixpoint.
    pub nodes: usize,
}

/// `sst.p`: the strongest predicate stable under every transition that is
/// implied by `p` — the reachable closure of `p`.
pub fn symbolic_sst(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
) -> SymbolicPredicate {
    symbolic_sst_with_stats(p, transitions).0
}

/// [`symbolic_sst`] plus its round/node statistics.
pub fn symbolic_sst_with_stats(
    p: &SymbolicPredicate,
    transitions: &[SymbolicTransition],
) -> (SymbolicPredicate, SymbolicFixpointStats) {
    let space = p.space();
    for t in transitions {
        assert!(
            std::sync::Arc::ptr_eq(t.space(), space),
            "transition from a different BDD space"
        );
    }
    let mut span = kpt_obs::span("bdd.fixpoint");
    kpt_obs::counter!("bdd.fixpoint.runs").incr();
    let mut mgr = space.lock();
    let rels: Vec<NodeId> = transitions.iter().map(|t| t.rel()).collect();
    let (root, stats) = sst_raw(space, &mut mgr, p.root(), &rels);
    drop(mgr);
    kpt_obs::histogram!("bdd.si.nodes").record(stats.nodes as u64);
    span.field("rounds", stats.rounds);
    span.field("nodes", stats.nodes as u64);
    span.finish();
    (SymbolicPredicate::new(space, root), stats)
}

/// The paper's `SI`: `sst` of the initial condition.
pub fn symbolic_strongest_invariant(
    transitions: &[SymbolicTransition],
    init: &SymbolicPredicate,
) -> SymbolicPredicate {
    symbolic_sst(init, transitions)
}

/// Core frontier loop over raw relation roots, shared with the KBP solver;
/// the caller holds the manager lock.
pub(crate) fn sst_raw(
    space: &crate::space::BddSpace,
    mgr: &mut Manager,
    init: NodeId,
    rels: &[NodeId],
) -> (NodeId, SymbolicFixpointStats) {
    let mut reached = init;
    let mut frontier = init;
    let mut rounds = 0u64;
    while frontier != FALSE {
        rounds += 1;
        kpt_obs::counter!("bdd.fixpoint.rounds").incr();
        let mut image = FALSE;
        for &rel in rels {
            let conj = mgr.and(frontier, rel);
            let img = mgr.exists(conj, space.cur_levels());
            let img = space.shift_to_cur(mgr, img);
            image = mgr.or(image, img);
        }
        let not_reached = mgr.not(reached);
        frontier = mgr.and(image, not_reached);
        reached = mgr.or(reached, frontier);
    }
    let nodes = mgr.reachable_nodes(reached);
    (reached, SymbolicFixpointStats { rounds, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::BddSpace;
    use kpt_state::StateSpace;

    #[test]
    fn counter_chain_reaches_everything_above_init() {
        let space = StateSpace::builder()
            .nat_var("i", 10)
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        let i = space.var("i").unwrap();
        let guard = SymbolicPredicate::from_var_fn(&bdd, i, |x| x < 9);
        let inc = SymbolicTransition::builder(&bdd)
            .guard(&guard)
            .assign(i, &[i], |v| v[0] + 1)
            .build()
            .unwrap();
        let init = SymbolicPredicate::var_eq(&bdd, i, 3);
        let (si, stats) = symbolic_sst_with_stats(&init, std::slice::from_ref(&inc));
        assert_eq!(si.count(), 7); // 3..=9
        assert!(si.entails(&SymbolicPredicate::from_var_fn(&bdd, i, |x| x >= 3)));
        assert_eq!(stats.rounds, 7); // 6 discovery rounds + 1 empty round
    }

    #[test]
    fn si_is_a_fixed_point() {
        let space = StateSpace::builder()
            .nat_var("i", 8)
            .unwrap()
            .build()
            .unwrap();
        let bdd = BddSpace::new(&space);
        let i = space.var("i").unwrap();
        let dec = SymbolicTransition::builder(&bdd)
            .assign(i, &[i], |v| v[0].saturating_sub(1))
            .build()
            .unwrap();
        let init = SymbolicPredicate::var_eq(&bdd, i, 5);
        let si = symbolic_strongest_invariant(std::slice::from_ref(&dec), &init);
        // sp(SI) ⇒ SI and init ⇒ SI.
        assert!(dec.sp(&si).entails(&si));
        assert!(init.entails(&si));
        assert_eq!(si.count(), 6); // 0..=5
                                   // Running sst again from SI is a no-op (canonical equality).
        assert_eq!(symbolic_sst(&si, std::slice::from_ref(&dec)), si);
    }
}
