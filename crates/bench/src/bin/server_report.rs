//! kpt-server load report: smoke-checks the wire protocol, fires a
//! pipelined burst of mixed JSONL requests at an in-process server and
//! verifies every id gets exactly one uncorrupted terminal frame, then
//! measures closed-loop request latency under session-arena eviction
//! churn. Writes `BENCH_server.json` (throughput + p50/p99 cases) plus a
//! one-shot table on stdout; exits nonzero if any smoke or integrity
//! check fails.
//!
//! Usage: `cargo run --release -p kpt-bench --bin server_report`
//! (`KPT_BENCH_JSON` overrides the output path, `KPT_BENCH_FAST=1` runs a
//! shorter closed-loop phase; the burst stays at `BURST_CONNS ×
//! BURST_PER_CONN` requests in both modes).

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use kpt_obs::JsonValue;
use kpt_server::{Server, ServerConfig, SessionConfig};
use kpt_testkit::{results_to_json, CaseResult};

const BURST_CONNS: usize = 25;
const BURST_PER_CONN: usize = 40;

/// The toy model every fast request exercises.
const TOY: &str = "program toy\ndeclare\n  req : boolean\n  done : boolean\nprocesses\n  \
                   C = {req}\n  S = {req, done}\ninit\n  ~req /\\ ~done\nassign\n  \
                   request: req := 1 if ~req\n  [] serve: done := 1 if req /\\ ~done\n";

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connects to server");
        Client {
            writer: stream.try_clone().expect("stream clones"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, frame: &str) {
        self.writer
            .write_all(format!("{frame}\n").as_bytes())
            .expect("request writes");
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("frame reads");
        assert!(n > 0, "server closed the stream mid-conversation");
        kpt_obs::parse_json(line.trim_end()).expect("server frame is JSON")
    }

    /// Read to the terminal (`result`/`error`) frame for `id`, skipping
    /// progress frames. Panics on a frame for any other id: callers use
    /// one in-flight request per connection.
    fn recv_terminal(&mut self, id: u64) -> JsonValue {
        loop {
            let f = self.recv();
            assert_eq!(
                f.get("id").and_then(JsonValue::as_u64),
                Some(id),
                "interleaved frame for another request on a serial connection"
            );
            if f.get("type").and_then(JsonValue::as_str) != Some("progress") {
                return f;
            }
        }
    }
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    kpt_obs::json_escape_into(s, &mut out);
    out
}

fn solve_frame(id: u64, source: &str) -> String {
    format!(
        "{{\"id\":{id},\"type\":\"solve\",\"source\":\"{}\"}}",
        json_str(source)
    )
}

fn lint_frame(id: u64, source: &str) -> String {
    format!(
        "{{\"id\":{id},\"type\":\"lint\",\"source\":\"{}\"}}",
        json_str(source)
    )
}

fn check(ok: bool, what: &str) {
    if ok {
        println!("smoke: {what}: ok");
    } else {
        eprintln!("server_report: SMOKE FAILURE: {what}");
        std::process::exit(1);
    }
}

/// Protocol smoke: round-trips, malformed-frame recovery, cancel of an
/// unknown target, typed timeout — the cheap subset of the e2e suite,
/// run against the same server the load phases use.
fn smoke(server: &Server) {
    let mut c = Client::connect(server);

    c.send(&solve_frame(1, TOY));
    let f = c.recv_terminal(1);
    check(
        field_str(&f, "outcome") == "converged",
        "toy solve converges",
    );

    c.send("not json at all");
    let f = c.recv();
    check(
        field_str(&f, "code") == "malformed",
        "malformed frame yields a typed error",
    );

    c.send(&lint_frame(3, TOY));
    let f = c.recv_terminal(3);
    check(
        field_str(&f, "type") == "result",
        "connection survives the malformed frame",
    );

    c.send("{\"id\":4,\"type\":\"cancel\",\"target\":12345}");
    let f = c.recv_terminal(4);
    check(
        f.get("cancelled").and_then(JsonValue::as_bool) == Some(false),
        "cancel of an unknown target reports false",
    );

    c.send(&format!(
        "{{\"id\":5,\"type\":\"solve\",\"source\":\"{}\",\"timeout_ms\":0}}",
        json_str(TOY)
    ));
    let f = c.recv_terminal(5);
    check(
        field_str(&f, "code") == "timeout",
        "an expired deadline is a typed timeout error",
    );
}

/// The integrity phase: `BURST_CONNS` connections each pipeline
/// `BURST_PER_CONN` mixed requests (send everything, then read
/// everything), and every id must come back with exactly one uncorrupted
/// terminal `result`. Returns (total requests, wall seconds).
fn burst(server: &Server, sources: &[String]) -> (usize, f64) {
    let total = BURST_CONNS * BURST_PER_CONN;
    let start = Instant::now();
    let handles: Vec<_> = (0..BURST_CONNS)
        .map(|conn| {
            let mut c = Client::connect(server);
            let sources = sources.to_vec();
            std::thread::spawn(move || {
                let base = (conn as u64 + 1) * 10_000;
                for i in 0..BURST_PER_CONN {
                    let id = base + i as u64;
                    let src = &sources[(conn + i) % sources.len()];
                    // Mixed kinds: lint / solve / parse in rotation.
                    let frame = match i % 3 {
                        0 => lint_frame(id, src),
                        1 => solve_frame(id, src),
                        _ => format!(
                            "{{\"id\":{id},\"type\":\"parse\",\"source\":\"{}\"}}",
                            json_str(src)
                        ),
                    };
                    c.send(&frame);
                }
                // Workers complete out of order, so terminal frames for
                // this connection's ids arrive in any order: collect by
                // id and demand exactly one uncorrupted result each.
                let mut seen: std::collections::HashMap<u64, JsonValue> = Default::default();
                while seen.len() < BURST_PER_CONN {
                    let f = c.recv();
                    if f.get("type").and_then(JsonValue::as_str) == Some("progress") {
                        continue;
                    }
                    let id = f
                        .get("id")
                        .and_then(JsonValue::as_u64)
                        .expect("terminal frame carries its request id");
                    assert!(
                        (base..base + BURST_PER_CONN as u64).contains(&id),
                        "frame for a request this connection never sent: {id}"
                    );
                    assert_eq!(
                        field_str(&f, "type"),
                        "result",
                        "burst request {id} failed: {f:?}"
                    );
                    assert!(
                        seen.insert(id, f).is_none(),
                        "duplicate terminal frame for request {id}"
                    );
                }
                seen.len()
            })
        })
        .collect();
    let mut answered = 0usize;
    for h in handles {
        answered += h.join().expect("burst connection thread panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    check(
        answered == total,
        &format!("burst: all {total} pipelined requests answered (got {answered})"),
    );
    (total, secs)
}

/// Closed-loop latency: `threads` clients each send one request at a
/// time over their own connection, alternating lint and solve across
/// `sources`. Returns (lint, solve) latency samples in ns.
fn closed_loop(server: &Server, sources: &[String], threads: usize, rounds: usize) -> LatencySets {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mut c = Client::connect(server);
            let sources = sources.to_vec();
            std::thread::spawn(move || {
                let mut lint = Vec::with_capacity(rounds);
                let mut solve = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let id = (t * rounds + r + 1) as u64;
                    let src = &sources[(t + r) % sources.len()];
                    let (frame, bucket) = if r % 2 == 0 {
                        (lint_frame(id, src), &mut lint)
                    } else {
                        (solve_frame(id, src), &mut solve)
                    };
                    let start = Instant::now();
                    c.send(&frame);
                    let f = c.recv_terminal(id);
                    bucket.push(start.elapsed().as_nanos() as u64);
                    assert_eq!(
                        field_str(&f, "type"),
                        "result",
                        "closed-loop request {id} failed: {f:?}"
                    );
                }
                (lint, solve)
            })
        })
        .collect();
    let mut all = LatencySets::default();
    for h in handles {
        let (lint, solve) = h.join().expect("closed-loop thread panicked");
        all.lint.extend(lint);
        all.solve.extend(solve);
    }
    all.lint.sort_unstable();
    all.solve.sort_unstable();
    all
}

#[derive(Default)]
struct LatencySets {
    lint: Vec<u64>,
    solve: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A latency distribution as a bench case: the median field carries the
/// gated statistic (the percentile), min/mean carry the distribution's
/// own min/mean so `bench_diff`'s spread term sees the real variance.
fn latency_case(case: &str, sorted: &[u64], p: f64) -> CaseResult {
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    CaseResult {
        group: "server".to_owned(),
        case: case.to_owned(),
        median_ns: percentile(sorted, p) as f64,
        mean_ns: mean,
        min_ns: sorted[0] as f64,
        samples: sorted.len(),
        iters_per_sample: 1,
    }
}

fn main() {
    let (config, fast) = kpt_bench::report_config("BENCH_server.json", 0, 0);
    let json_path = config.json_path.clone().expect("report json path");

    // Exercise real concurrency even on one core: two workers minimum.
    let workers = kpt_testkit::pool::num_threads().max(2);

    // Phase servers. The load server has an arena large enough that the
    // burst and latency phases measure the warm steady state; the churn
    // server's arena is deliberately too small for its rotation, so LRU
    // eviction is part of every measured solve.
    let mut load_server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity: 2 * BURST_CONNS * BURST_PER_CONN,
            ..ServerConfig::default()
        },
    )
    .expect("load server binds");
    let mut churn_server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            sessions: SessionConfig {
                max_models: 2,
                max_bytes: 64 << 20,
            },
            ..ServerConfig::default()
        },
    )
    .expect("churn server binds");

    // Cheap models for the steady-state phases; the full rotation (with
    // the heavyweight zoo members) only feeds the eviction phase, where
    // re-elaboration is the point.
    let cheap: Vec<String> = vec![TOY.to_owned(), kpt_core::muddy_children_kpt(2)];
    let rotation: Vec<String> = vec![
        TOY.to_owned(),
        kpt_core::muddy_children_kpt(2),
        kpt_core::attacking_generals_kpt().to_owned(),
        kpt_core::dining_cryptographers_kpt().to_owned(),
    ];

    smoke(&load_server);

    let (burst_total, burst_secs) = burst(&load_server, &cheap);
    let throughput = burst_total as f64 / burst_secs;

    let (threads, rounds) = if fast { (4, 30) } else { (4, 150) };
    let lat = closed_loop(&load_server, &cheap, threads, rounds);

    let (churn_threads, churn_rounds) = if fast { (2, 8) } else { (2, 24) };
    let churn = closed_loop(&churn_server, &rotation, churn_threads, churn_rounds);

    let sessions = churn_server.sessions();
    let (hits, misses, evictions) = (sessions.hits(), sessions.misses(), sessions.evictions());
    check(
        evictions > 0,
        "rotating 4 models through a 2-model arena actually evicts",
    );

    let results = vec![
        CaseResult {
            group: "server".to_owned(),
            case: "burst_request".to_owned(),
            median_ns: burst_secs * 1e9 / burst_total as f64,
            mean_ns: burst_secs * 1e9 / burst_total as f64,
            // Per-request cost at perfect parallelism: the achievable
            // floor, so the spread term reflects scheduling variance.
            min_ns: burst_secs * 1e9 / (burst_total as f64 * workers as f64),
            samples: burst_total,
            iters_per_sample: 1,
        },
        latency_case("lint_p50", &lat.lint, 0.50),
        latency_case("lint_p99", &lat.lint, 0.99),
        latency_case("solve_p50", &lat.solve, 0.50),
        latency_case("solve_p99", &lat.solve, 0.99),
        latency_case("evict_solve_p50", &churn.solve, 0.50),
    ];

    println!("\n== kpt-server load report ({workers} workers) ==");
    println!(
        "burst      {burst_total} pipelined requests over {BURST_CONNS} connections in \
         {burst_secs:.3}s ({throughput:.0} req/s)"
    );
    for (name, set) in [
        ("lint", &lat.lint),
        ("solve", &lat.solve),
        ("evict", &churn.solve),
    ] {
        println!(
            "{name:<10} n={:<5} p50={:>9.1}µs  p99={:>9.1}µs  min={:>9.1}µs",
            set.len(),
            percentile(set, 0.50) as f64 / 1e3,
            percentile(set, 0.99) as f64 / 1e3,
            set[0] as f64 / 1e3,
        );
    }
    println!("sessions   churn arena: hits={hits} misses={misses} evictions={evictions}");

    load_server.shutdown();
    churn_server.shutdown();

    std::fs::write(&json_path, results_to_json(&results)).expect("report writes");
    println!("results written to {json_path}");
}
