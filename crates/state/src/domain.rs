//! Variable domains: the finite sets of values a program variable ranges over.
//!
//! The paper treats predicates as semantic objects over an arbitrary state
//! space; this reproduction works over *finite* spaces, so every variable is
//! declared with a finite [`Domain`]. Values are stored internally as raw
//! codes `0..size`; [`Domain`] provides the typed view.

use std::fmt;

/// The finite domain of a single program variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Domain {
    /// `{false, true}`, encoded as `{0, 1}`.
    Bool,
    /// Bounded natural numbers `0..size` (i.e. `0ꓸꓸ=size-1`), encoded as
    /// themselves. Used for the paper's `nat` variables restricted to a
    /// bounded instance.
    Nat {
        /// Number of values; the domain is `0..size`.
        size: u64,
    },
    /// A named finite enumeration, encoded by label position. Used e.g. for
    /// `nat ∪ ⊥` and `(nat, A) ∪ ⊥` message variables.
    Enum {
        /// The labels, in encoding order.
        labels: Vec<String>,
    },
}

impl Domain {
    /// Construct a bounded-natural domain `0..size`.
    ///
    /// # Examples
    /// ```
    /// use kpt_state::Domain;
    /// assert_eq!(Domain::nat(4).size(), 4);
    /// ```
    pub fn nat(size: u64) -> Self {
        Domain::Nat { size }
    }

    /// Construct an enumeration domain from labels.
    ///
    /// # Examples
    /// ```
    /// use kpt_state::Domain;
    /// let d = Domain::enumeration(["bot", "a", "b"]);
    /// assert_eq!(d.size(), 3);
    /// assert_eq!(d.label_code("a"), Some(1));
    /// ```
    pub fn enumeration<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Domain::Enum {
            labels: labels.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u64 {
        match self {
            Domain::Bool => 2,
            Domain::Nat { size } => *size,
            Domain::Enum { labels } => labels.len() as u64,
        }
    }

    /// Whether `value` is a valid raw code for this domain.
    pub fn contains(&self, value: u64) -> bool {
        value < self.size()
    }

    /// The encoding of an enum label, if this is an enum domain containing it.
    pub fn label_code(&self, label: &str) -> Option<u64> {
        match self {
            Domain::Enum { labels } => labels.iter().position(|l| l == label).map(|p| p as u64),
            _ => None,
        }
    }

    /// The label for a raw code, if this is an enum domain and in range.
    pub fn code_label(&self, code: u64) -> Option<&str> {
        match self {
            Domain::Enum { labels } => labels.get(code as usize).map(String::as_str),
            _ => None,
        }
    }

    /// Render a raw code as the typed value it denotes.
    pub fn render(&self, code: u64) -> String {
        match self {
            Domain::Bool => (code != 0).to_string(),
            Domain::Nat { .. } => code.to_string(),
            Domain::Enum { .. } => self
                .code_label(code)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("<invalid:{code}>")),
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Bool => write!(f, "boolean"),
            Domain::Nat { size } => write!(f, "nat<{size}>"),
            Domain::Enum { labels } => {
                write!(f, "{{")?;
                for (i, l) in labels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A typed value of some [`Domain`]. Mostly a convenience for display and
/// test assertions; the engine works on raw codes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A boolean value.
    Bool(bool),
    /// A bounded natural.
    Nat(u64),
    /// An enum label.
    Enum(String),
}

impl Value {
    /// Decode a raw code against a domain.
    pub fn decode(domain: &Domain, code: u64) -> Option<Value> {
        if !domain.contains(code) {
            return None;
        }
        Some(match domain {
            Domain::Bool => Value::Bool(code != 0),
            Domain::Nat { .. } => Value::Nat(code),
            Domain::Enum { .. } => Value::Enum(domain.code_label(code)?.to_owned()),
        })
    }

    /// Encode this value as a raw code of `domain`, if compatible.
    pub fn encode(&self, domain: &Domain) -> Option<u64> {
        match (self, domain) {
            (Value::Bool(b), Domain::Bool) => Some(u64::from(*b)),
            (Value::Nat(n), Domain::Nat { size }) if n < size => Some(*n),
            (Value::Enum(l), Domain::Enum { .. }) => domain.label_code(l),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Enum(l) => write!(f, "{l}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_domain() {
        let d = Domain::Bool;
        assert_eq!(d.size(), 2);
        assert!(d.contains(1));
        assert!(!d.contains(2));
        assert_eq!(d.render(0), "false");
        assert_eq!(d.render(1), "true");
    }

    #[test]
    fn nat_domain() {
        let d = Domain::nat(5);
        assert_eq!(d.size(), 5);
        assert!(d.contains(4));
        assert!(!d.contains(5));
        assert_eq!(d.render(3), "3");
    }

    #[test]
    fn enum_domain_roundtrip() {
        let d = Domain::enumeration(["bot", "zero", "one"]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.label_code("zero"), Some(1));
        assert_eq!(d.code_label(2), Some("one"));
        assert_eq!(d.label_code("nope"), None);
        assert_eq!(d.render(0), "bot");
    }

    #[test]
    fn value_encode_decode() {
        let d = Domain::enumeration(["a", "b"]);
        let v = Value::decode(&d, 1).unwrap();
        assert_eq!(v, Value::Enum("b".into()));
        assert_eq!(v.encode(&d), Some(1));
        assert_eq!(Value::Bool(true).encode(&Domain::Bool), Some(1));
        assert_eq!(Value::Nat(7).encode(&Domain::nat(3)), None);
        assert_eq!(Value::Nat(2).encode(&Domain::nat(3)), Some(2));
        // Cross-type encodings fail.
        assert_eq!(Value::Bool(true).encode(&Domain::nat(3)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Domain::Bool.to_string(), "boolean");
        assert_eq!(Domain::nat(4).to_string(), "nat<4>");
        assert_eq!(Domain::enumeration(["x", "y"]).to_string(), "{x, y}");
        assert_eq!(Value::Enum("x".into()).to_string(), "x");
    }

    #[test]
    fn decode_out_of_range_is_none() {
        assert_eq!(Value::decode(&Domain::Bool, 2), None);
        assert_eq!(Value::decode(&Domain::nat(1), 1), None);
    }
}
