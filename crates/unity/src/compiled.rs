//! Compiled UNITY programs: exact transition semantics plus the UNITY
//! property checkers of §5.
//!
//! A [`CompiledProgram`] holds one [`DetTransition`] per statement. The
//! paper's proof rules become *decision procedures* here because the
//! strongest invariant `SI` is exactly computable (eq. 5):
//!
//! * `invariant p  ≡  [SI ⇒ p]` — [`CompiledProgram::invariant`];
//! * `p unless q` per eq. (27) — [`CompiledProgram::unless`];
//! * `p ensures q` per eq. (28) — [`CompiledProgram::ensures`];
//! * `stable p ≡ p unless false` (eq. 33) — [`CompiledProgram::stable`];
//! * `p ↦ q` — decided by the SCC-based model checker in
//!   [`crate::leads_to`], surfaced as [`CompiledProgram::leads_to`].

use std::sync::{Arc, OnceLock};

use kpt_state::{Predicate, StateSpace};
use kpt_transformers::{sp_union, strongest_invariant_frontier, DetTransition};

use crate::leadsto::{leads_to, LeadsToReport};
use crate::program::Process;

/// A UNITY program compiled to exact transition tables.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    space: Arc<StateSpace>,
    init: Predicate,
    statement_names: Vec<String>,
    transitions: Vec<DetTransition>,
    processes: Vec<Process>,
    si: OnceLock<Predicate>,
}

impl CompiledProgram {
    pub(crate) fn new(
        name: String,
        space: &Arc<StateSpace>,
        init: Predicate,
        statement_names: Vec<String>,
        transitions: Vec<DetTransition>,
        processes: Vec<Process>,
    ) -> Self {
        CompiledProgram {
            name,
            space: Arc::clone(space),
            init,
            statement_names,
            transitions,
            processes,
            si: OnceLock::new(),
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state space.
    pub fn space(&self) -> &Arc<StateSpace> {
        &self.space
    }

    /// The initial-state predicate.
    pub fn init(&self) -> &Predicate {
        &self.init
    }

    /// Number of statements.
    pub fn num_statements(&self) -> usize {
        self.transitions.len()
    }

    /// Name of statement `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn statement_name(&self, idx: usize) -> &str {
        &self.statement_names[idx]
    }

    /// The compiled transitions, one per statement.
    pub fn transitions(&self) -> &[DetTransition] {
        &self.transitions
    }

    /// The declared processes.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Execute statement `idx` atomically from `state`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn step(&self, idx: usize, state: u64) -> u64 {
        self.transitions[idx].step(state)
    }

    /// The whole-program strongest postcondition `SP.p` of eq. (26).
    #[must_use]
    pub fn sp(&self, p: &Predicate) -> Predicate {
        sp_union(&self.transitions, p)
    }

    /// The strongest invariant `SI = sst.init` (eq. 5): the exact set of
    /// reachable states. Computed once and cached, by frontier propagation
    /// over the statement transitions.
    pub fn si(&self) -> &Predicate {
        self.si
            .get_or_init(|| strongest_invariant_frontier(&self.transitions, &self.init))
    }

    /// `invariant p ≡ [SI ⇒ p]` (eq. 5).
    pub fn invariant(&self, p: &Predicate) -> bool {
        self.si().entails(p)
    }

    /// `stable p`: once true, `p` stays true — `p unless false` (eq. 33).
    /// Checked relative to `SI`, like all properties in the modified logic
    /// of \[San91\].
    pub fn stable(&self, p: &Predicate) -> bool {
        self.unless(p, &Predicate::ff(&self.space))
    }

    /// `p unless q` per eq. (27):
    /// `(∀ s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.(p ∨ q))])`.
    pub fn unless(&self, p: &Predicate, q: &Predicate) -> bool {
        let si = self.si();
        let pre = p.minus(q).and(si);
        let post = p.or(q);
        self.transitions.iter().all(|t| pre.entails(&t.wp(&post)))
    }

    /// `p ensures q` per eq. (28): `p unless q` and some single statement
    /// establishes `q` from every `SI ∧ p ∧ ¬q` state.
    pub fn ensures(&self, p: &Predicate, q: &Predicate) -> bool {
        self.ensures_by(p, q).is_some()
    }

    /// Like [`CompiledProgram::ensures`], but returns the index of a
    /// witnessing statement.
    pub fn ensures_by(&self, p: &Predicate, q: &Predicate) -> Option<usize> {
        if !self.unless(p, q) {
            return None;
        }
        let pre = p.minus(q).and(self.si());
        self.transitions.iter().position(|t| pre.entails(&t.wp(q)))
    }

    /// Decide `p ↦ q` under UNITY's unconditional fairness, with a
    /// counterexample report on failure.
    pub fn leads_to(&self, p: &Predicate, q: &Predicate) -> LeadsToReport {
        leads_to(self, p, q)
    }

    /// Whether `p ↦ q` holds (convenience over [`CompiledProgram::leads_to`]).
    pub fn leads_to_holds(&self, p: &Predicate, q: &Predicate) -> bool {
        self.leads_to(p, q).holds()
    }

    /// The *fixed point* predicate `FP`: states where no statement changes
    /// anything (§5: "the analogy to termination is reaching a fixed
    /// point").
    #[must_use]
    pub fn fixed_point(&self) -> Predicate {
        let mut fp = Predicate::tt(&self.space);
        for t in &self.transitions {
            fp.and_assign(&t.fixed_states());
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::statement::Statement;

    fn counter() -> CompiledProgram {
        let space = StateSpace::builder()
            .nat_var("i", 5)
            .unwrap()
            .bool_var("flag")
            .unwrap()
            .build()
            .unwrap();
        Program::builder("counter", &space)
            .init_str("i = 0 /\\ ~flag")
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 4")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .statement(
                Statement::new("raise")
                    .guard_str("i = 4")
                    .unwrap()
                    .assign_str("flag", "1")
                    .unwrap(),
            )
            .build()
            .unwrap()
            .compile()
            .unwrap()
    }

    #[test]
    fn si_is_reachable_set() {
        let c = counter();
        let sp = c.space().clone();
        let i = sp.var("i").unwrap();
        let flag = sp.var("flag").unwrap();
        let si = c.si();
        // Reachable: flag can only be true when i = 4.
        for idx in 0..sp.num_states() {
            let reach = !sp.value_bool(idx, flag) || sp.value(idx, i) == 4;
            assert_eq!(si.holds(idx), reach, "state {}", sp.render_state(idx));
        }
    }

    #[test]
    fn invariant_check() {
        let c = counter();
        let sp = c.space().clone();
        let flag = sp.var("flag").unwrap();
        let i = sp.var("i").unwrap();
        let inv = Predicate::var_is_true(&sp, flag).implies(&Predicate::var_eq(&sp, i, 4));
        assert!(c.invariant(&inv));
        assert!(!c.invariant(&Predicate::var_eq(&sp, i, 0)));
        assert!(c.invariant(&Predicate::tt(&sp)));
    }

    #[test]
    fn unless_and_stable() {
        let c = counter();
        let sp = c.space().clone();
        let i = sp.var("i").unwrap();
        // i = 2 unless i = 3.
        assert!(c.unless(&Predicate::var_eq(&sp, i, 2), &Predicate::var_eq(&sp, i, 3)));
        // i = 2 is not stable.
        assert!(!c.stable(&Predicate::var_eq(&sp, i, 2)));
        // i >= 2 is stable.
        let ge2 = Predicate::from_var_fn(&sp, i, |v| v >= 2);
        assert!(c.stable(&ge2));
        // false and true are trivially stable.
        assert!(c.stable(&Predicate::ff(&sp)));
        assert!(c.stable(&Predicate::tt(&sp)));
    }

    #[test]
    fn ensures_needs_single_witness_statement() {
        let c = counter();
        let sp = c.space().clone();
        let i = sp.var("i").unwrap();
        let p = Predicate::var_eq(&sp, i, 2);
        let q = Predicate::var_eq(&sp, i, 3);
        assert_eq!(c.ensures_by(&p, &q), Some(0));
        // i = 2 does not ensure i = 4 (no single statement gets there).
        assert!(!c.ensures(&p, &Predicate::var_eq(&sp, i, 4)));
    }

    #[test]
    fn fixed_point_is_terminal_state() {
        let c = counter();
        let sp = c.space().clone();
        let fp = c.fixed_point();
        // FP: i = 4 ∧ flag (inc disabled, raise idempotent... raise sets
        // flag, so FP requires flag already true).
        let i = sp.var("i").unwrap();
        let flag = sp.var("flag").unwrap();
        for idx in fp.iter() {
            assert_eq!(sp.value(idx, i), 4);
            assert!(sp.value_bool(idx, flag));
        }
        assert!(!fp.is_false());
    }

    #[test]
    fn unless_uses_si() {
        // A property that fails somewhere unreachable but holds on SI.
        let c = counter();
        let sp = c.space().clone();
        let i = sp.var("i").unwrap();
        let flag = sp.var("flag").unwrap();
        // In unreachable states (flag ∧ i<4), "inc" would break p = ¬flag ∨ i=4...
        // Construct: p = flag => i = 4 is invariant hence stable *on SI*.
        let p = Predicate::var_is_true(&sp, flag).implies(&Predicate::var_eq(&sp, i, 4));
        assert!(c.stable(&p));
    }
}
