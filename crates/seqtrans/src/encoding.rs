//! Finite encodings for the bounded sequence-transmission instances.
//!
//! The paper's Figure 4 state uses unbounded objects: the infinite input
//! sequence `x`, the delivered prefix `w`, message slots `z : nat ∪ ⊥` and
//! `z' : (nat, A) ∪ ⊥`, and history variables. A bounded instance with
//! alphabet size `a` and sequence length `l` encodes each as a finite
//! domain:
//!
//! | paper object | encoding |
//! |---|---|
//! | `x : seq of A` (unknown input!) | `xseq`: one of `a^l` values — kept in the **state** so that knowledge about `x` is non-trivial |
//! | `w : seq of A` (delivered) | one of `Σ_{m≤l} a^m` values (all sequences of length ≤ l) |
//! | `z : nat ∪ ⊥` (ack slot) | `⊥` or `ack m` for `m ∈ 0..=l` |
//! | `z' : (nat, A) ∪ ⊥` (data slot) | `⊥` or `(k, α)` for `k < l`, `α < a` |
//! | `ch̄_S` (data history) | `msS`: highest data index ever sent (`none` or `0..l-1`) — exact for this protocol because sends are monotone in `i` |
//! | `ch̄_R` (ack history) | `msR`: highest ack ever sent (`none` or `0..=l`) |
//!
//! All code/decode arithmetic lives here so the model, the knowledge
//! predicates and the tests share one definition.

/// Encoding parameters and arithmetic for one bounded instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoding {
    a: usize,
    l: usize,
}

impl Encoding {
    /// An instance with alphabet size `a` (2–6) and sequence length `l`
    /// (1–6). Bounds keep the state space enumerable.
    ///
    /// # Panics
    /// Panics if `a` or `l` is out of range.
    pub fn new(a: usize, l: usize) -> Self {
        assert!((2..=6).contains(&a), "alphabet size {a} out of range 2..=6");
        assert!(
            (1..=6).contains(&l),
            "sequence length {l} out of range 1..=6"
        );
        Encoding { a, l }
    }

    /// Alphabet size `|A|`.
    pub fn alphabet(&self) -> usize {
        self.a
    }

    /// Sequence length `|x|`.
    pub fn len(&self) -> usize {
        self.l
    }

    /// Always false: instances have length ≥ 1 (provided to satisfy the
    /// `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The letter for digit `d` (`0 → 'a'`, `1 → 'b'`, …).
    ///
    /// # Panics
    /// Panics if `d` is not a valid digit.
    pub fn letter(&self, d: u64) -> char {
        assert!((d as usize) < self.a, "digit {d} out of range");
        (b'a' + d as u8) as char
    }

    // ----- xseq: all a^l full sequences --------------------------------

    /// Number of possible input sequences, `a^l`.
    pub fn x_count(&self) -> u64 {
        (self.a as u64).pow(self.l as u32)
    }

    /// The `k`-th element of the input sequence encoded by `code`
    /// (big-endian: element 0 is the leading letter of the label).
    ///
    /// # Panics
    /// Panics if `k ≥ l` or `code` is out of range.
    pub fn x_digit(&self, code: u64, k: usize) -> u64 {
        assert!(k < self.l, "element index {k} out of range");
        assert!(code < self.x_count(), "xseq code out of range");
        let shift = (self.a as u64).pow((self.l - 1 - k) as u32);
        (code / shift) % self.a as u64
    }

    /// Encode a full sequence of `l` digits.
    ///
    /// # Panics
    /// Panics on wrong length or invalid digits.
    pub fn x_encode(&self, digits: &[u64]) -> u64 {
        assert_eq!(digits.len(), self.l, "sequence must have length l");
        digits.iter().fold(0u64, |acc, &d| {
            assert!((d as usize) < self.a, "digit out of range");
            acc * self.a as u64 + d
        })
    }

    /// Labels for the `xseq` enum domain (e.g. `"ab"`, `"ba"` for a=2, l=2).
    pub fn x_labels(&self) -> Vec<String> {
        (0..self.x_count())
            .map(|c| {
                (0..self.l)
                    .map(|k| self.letter(self.x_digit(c, k)))
                    .collect()
            })
            .collect()
    }

    // ----- w: all sequences of length 0..=l ----------------------------

    /// Number of possible delivered prefixes, `Σ_{m=0}^{l} a^m`.
    pub fn w_count(&self) -> u64 {
        (0..=self.l as u32).map(|m| (self.a as u64).pow(m)).sum()
    }

    fn w_offset(&self, len: usize) -> u64 {
        (0..len as u32).map(|m| (self.a as u64).pow(m)).sum()
    }

    /// Length of the sequence encoded by `code`.
    ///
    /// # Panics
    /// Panics if `code` is out of range.
    pub fn w_len(&self, code: u64) -> usize {
        assert!(code < self.w_count(), "w code out of range");
        let mut len = 0;
        while len < self.l && code >= self.w_offset(len + 1) {
            len += 1;
        }
        len
    }

    /// The `p`-th element of the sequence encoded by `code`.
    ///
    /// # Panics
    /// Panics if `p` is out of range for the encoded sequence.
    pub fn w_digit(&self, code: u64, p: usize) -> u64 {
        let len = self.w_len(code);
        assert!(p < len, "position {p} out of range for length {len}");
        let rel = code - self.w_offset(len);
        let shift = (self.a as u64).pow((len - 1 - p) as u32);
        (rel / shift) % self.a as u64
    }

    /// The code of `w ; d` (append one digit).
    ///
    /// # Panics
    /// Panics if the sequence is already full or `d` is invalid.
    pub fn w_append(&self, code: u64, d: u64) -> u64 {
        let len = self.w_len(code);
        assert!(len < self.l, "cannot append to a full sequence");
        assert!((d as usize) < self.a, "digit out of range");
        let rel = code - self.w_offset(len);
        self.w_offset(len + 1) + rel * self.a as u64 + d
    }

    /// Labels for the `w` enum domain; the empty sequence is `"-"`.
    pub fn w_labels(&self) -> Vec<String> {
        (0..self.w_count())
            .map(|c| {
                let len = self.w_len(c);
                if len == 0 {
                    "-".to_owned()
                } else {
                    (0..len).map(|p| self.letter(self.w_digit(c, p))).collect()
                }
            })
            .collect()
    }

    /// Whether the prefix encoded by `w` matches the leading elements of
    /// the input sequence encoded by `x` — the paper's `w ⊑ x`.
    pub fn w_prefix_of_x(&self, w: u64, x: u64) -> bool {
        let len = self.w_len(w);
        (0..len).all(|p| self.w_digit(w, p) == self.x_digit(x, p))
    }

    // ----- z (ack slot): ⊥ or ack m for m ∈ 0..=l ----------------------

    /// Number of ack-slot values.
    pub fn z_count(&self) -> u64 {
        self.l as u64 + 2
    }

    /// Code of `⊥` in the ack slot.
    pub fn z_bot(&self) -> u64 {
        0
    }

    /// Code of `ack m`.
    ///
    /// # Panics
    /// Panics if `m > l`.
    pub fn z_ack(&self, m: u64) -> u64 {
        assert!(m <= self.l as u64, "ack number out of range");
        m + 1
    }

    /// Decode an ack-slot value (`None` for `⊥`).
    pub fn z_decode(&self, code: u64) -> Option<u64> {
        (code > 0).then(|| code - 1)
    }

    /// Ack-slot labels: `bot`, `ack0`, ….
    pub fn z_labels(&self) -> Vec<String> {
        std::iter::once("bot".to_owned())
            .chain((0..=self.l).map(|m| format!("ack{m}")))
            .collect()
    }

    // ----- z' (data slot): ⊥ or (k, α) for k < l -----------------------

    /// Number of data-slot values.
    pub fn zp_count(&self) -> u64 {
        (self.l * self.a) as u64 + 1
    }

    /// Code of `⊥` in the data slot.
    pub fn zp_bot(&self) -> u64 {
        0
    }

    /// Code of the data message `(k, α)`.
    ///
    /// # Panics
    /// Panics if `k ≥ l` or `α` invalid.
    pub fn zp_pair(&self, k: u64, alpha: u64) -> u64 {
        assert!((k as usize) < self.l, "data index out of range");
        assert!((alpha as usize) < self.a, "digit out of range");
        1 + k * self.a as u64 + alpha
    }

    /// Decode a data-slot value (`None` for `⊥`).
    pub fn zp_decode(&self, code: u64) -> Option<(u64, u64)> {
        (code > 0).then(|| {
            let rel = code - 1;
            (rel / self.a as u64, rel % self.a as u64)
        })
    }

    /// Data-slot labels: `bot`, `d0a`, `d0b`, `d1a`, ….
    pub fn zp_labels(&self) -> Vec<String> {
        std::iter::once("bot".to_owned())
            .chain(
                (0..self.l as u64)
                    .flat_map(|k| (0..self.a as u64).map(move |d| (k, d)).collect::<Vec<_>>())
                    .map(|(k, d)| format!("d{k}{}", self.letter(d))),
            )
            .collect()
    }

    // ----- history summaries -------------------------------------------

    /// Values of `msS` (highest data index sent): `none` or `0..l-1`.
    pub fn ms_data_count(&self) -> u64 {
        self.l as u64 + 1
    }

    /// Values of `msR` (highest ack sent): `none` or `0..=l`.
    pub fn ms_ack_count(&self) -> u64 {
        self.l as u64 + 2
    }

    /// Code for "no message sent yet".
    pub fn ms_none(&self) -> u64 {
        0
    }

    /// Code for "highest index sent is `k`".
    pub fn ms_at(&self, k: u64) -> u64 {
        k + 1
    }

    /// Decode a history summary (`None` for "nothing sent").
    pub fn ms_decode(&self, code: u64) -> Option<u64> {
        (code > 0).then(|| code - 1)
    }

    /// Labels for `msS`.
    pub fn ms_data_labels(&self) -> Vec<String> {
        std::iter::once("none".to_owned())
            .chain((0..self.l).map(|k| format!("s{k}")))
            .collect()
    }

    /// Labels for `msR`.
    pub fn ms_ack_labels(&self) -> Vec<String> {
        std::iter::once("none".to_owned())
            .chain((0..=self.l).map(|k| format!("s{k}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_roundtrip() {
        let e = Encoding::new(2, 3);
        assert_eq!(e.x_count(), 8);
        for code in 0..8 {
            let digits: Vec<u64> = (0..3).map(|k| e.x_digit(code, k)).collect();
            assert_eq!(e.x_encode(&digits), code);
        }
        assert_eq!(e.x_labels()[0], "aaa");
        assert_eq!(e.x_labels()[7], "bbb");
        assert_eq!(e.x_labels()[4], "baa"); // big-endian: element 0 leads
        assert_eq!(e.x_digit(4, 0), 1);
        assert_eq!(e.x_digit(4, 2), 0);
    }

    #[test]
    fn w_layout() {
        let e = Encoding::new(2, 2);
        assert_eq!(e.w_count(), 7); // -, a, b, aa, ab, ba, bb
        assert_eq!(e.w_len(0), 0);
        assert_eq!(e.w_len(1), 1);
        assert_eq!(e.w_len(3), 2);
        assert_eq!(e.w_labels(), vec!["-", "a", "b", "aa", "ab", "ba", "bb"]);
    }

    #[test]
    fn w_append_builds_sequences() {
        let e = Encoding::new(2, 3);
        let mut w = 0u64;
        w = e.w_append(w, 1); // "b"
        assert_eq!(e.w_len(w), 1);
        assert_eq!(e.w_digit(w, 0), 1);
        w = e.w_append(w, 0); // "ba"
        assert_eq!(e.w_len(w), 2);
        assert_eq!(e.w_digit(w, 0), 1);
        assert_eq!(e.w_digit(w, 1), 0);
        w = e.w_append(w, 1); // "bab"
        assert_eq!(e.w_len(w), 3);
        assert_eq!(e.w_digit(w, 2), 1);
        assert_eq!(e.w_labels()[w as usize], "bab");
    }

    #[test]
    #[should_panic(expected = "full sequence")]
    fn w_append_overflow_panics() {
        let e = Encoding::new(2, 1);
        let w = e.w_append(0, 0);
        let _ = e.w_append(w, 0);
    }

    #[test]
    fn prefix_relation() {
        let e = Encoding::new(2, 3);
        let x = e.x_encode(&[1, 0, 1]); // "bab"
        let mut w = 0u64;
        assert!(e.w_prefix_of_x(w, x)); // ε ⊑ x
        w = e.w_append(w, 1);
        assert!(e.w_prefix_of_x(w, x)); // "b"
        let wrong = e.w_append(0, 0); // "a"
        assert!(!e.w_prefix_of_x(wrong, x));
        w = e.w_append(w, 0);
        w = e.w_append(w, 1);
        assert!(e.w_prefix_of_x(w, x)); // "bab" ⊑ "bab"
    }

    #[test]
    fn z_slot_codes() {
        let e = Encoding::new(3, 2);
        assert_eq!(e.z_count(), 4);
        assert_eq!(e.z_decode(e.z_bot()), None);
        for m in 0..=2 {
            assert_eq!(e.z_decode(e.z_ack(m)), Some(m));
        }
        assert_eq!(e.z_labels(), vec!["bot", "ack0", "ack1", "ack2"]);
    }

    #[test]
    fn zp_slot_codes() {
        let e = Encoding::new(2, 2);
        assert_eq!(e.zp_count(), 5);
        assert_eq!(e.zp_decode(e.zp_bot()), None);
        for k in 0..2 {
            for d in 0..2 {
                assert_eq!(e.zp_decode(e.zp_pair(k, d)), Some((k, d)));
            }
        }
        assert_eq!(e.zp_labels(), vec!["bot", "d0a", "d0b", "d1a", "d1b"]);
    }

    #[test]
    fn history_summaries() {
        let e = Encoding::new(2, 2);
        assert_eq!(e.ms_data_count(), 3);
        assert_eq!(e.ms_ack_count(), 4);
        assert_eq!(e.ms_decode(e.ms_none()), None);
        assert_eq!(e.ms_decode(e.ms_at(1)), Some(1));
        assert_eq!(e.ms_data_labels(), vec!["none", "s0", "s1"]);
        assert_eq!(e.ms_ack_labels(), vec!["none", "s0", "s1", "s2"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_alphabet_panics() {
        let _ = Encoding::new(1, 2);
    }

    #[test]
    fn letters() {
        let e = Encoding::new(3, 1);
        assert_eq!(e.letter(0), 'a');
        assert_eq!(e.letter(2), 'c');
    }
}
