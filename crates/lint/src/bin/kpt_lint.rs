//! `kpt_lint` — run the static analyzer over in-tree models or `.kpt`
//! files.
//!
//! Usage: `kpt_lint [--json] [--depth D] [--deny CODES] [--allow CODES]
//! [--no-symbolic] [NAME | FILE.kpt ...]`
//!
//! With no arguments every registered model is linted — in parallel over
//! the kpt-testkit worker pool (`KPT_THREADS` controls the width; reports
//! stay in registry order and are bit-identical to a serial run). An
//! argument that names an existing file (or ends in `.kpt`) is read and
//! linted through [`kpt_lint::lint_source`] — the same entry point
//! kpt-server's `lint` request uses — with parse errors *and* findings
//! rendered as caret diagnostics against the source. Other arguments
//! select registry models by name.
//!
//! * `--json` prints one JSON array of lint reports (spans included)
//!   instead of the human summary.
//! * `--depth decl|view|dataflow|symbolic` stops the pipeline after the
//!   named pass; `full` is an alias for `symbolic`. `--no-symbolic` keeps
//!   its historical meaning of skipping only the symbolic pass (the
//!   dataflow pass still runs).
//! * `--deny KPT008,KPT011` fails the run if any listed code fires, even
//!   at warning severity; `--allow KPT003` drops the listed codes from
//!   every report before verdicts are computed.
//!
//! The exit code encodes the expectation baked into the registry: the
//! healthy models must be clean and Figure 1 must carry exactly its
//! eq. (25) circularity warnings (`KPT009` from the symbolic pass, and
//! its syntactic shadow `KPT011` from the dataflow pass). Any other
//! finding — or a missing expected one — exits nonzero, which is what CI
//! asserts. Expected codes whose producing pass did not run (because of
//! `--depth`/`--no-symbolic`) are not held against the run. For file
//! arguments (no baked-in expectation) the run fails on parse errors,
//! error-severity findings, and denied codes; other warnings pass.

use std::process::ExitCode;

use kpt_lint::{
    lint_registry, lint_source, registry, Depth, DiagnosticCode, LintOptions, LintReport,
    RegistryCase,
};

fn print_human(case: &RegistryCase, report: &LintReport, expected: &[&str], ok: bool) {
    let verdict = if ok { "ok" } else { "UNEXPECTED" };
    println!(
        "== {} ({} finding{}, {}) ==",
        case.name,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        verdict
    );
    if report.diagnostics.is_empty() {
        println!("   clean");
    }
    match &case.source {
        // Source-backed cases point carets at the offending text.
        Some(src) if report.diagnostics.iter().any(|d| d.span.is_some()) => {
            for line in report.render_source(src).lines() {
                println!("   {line}");
            }
        }
        _ => {
            for d in &report.diagnostics {
                println!("   {d}");
            }
        }
    }
    if !ok {
        println!("   expected codes: {expected:?}");
    }
}

/// Is this CLI argument a `.kpt` file path rather than a registry name?
fn is_file_arg(arg: &str) -> bool {
    arg.ends_with(".kpt") || std::path::Path::new(arg).is_file()
}

/// Lint one on-disk `.kpt` file through the shared [`lint_source`] entry
/// point. Returns the report (when the source elaborates) and whether the
/// file passes: parse failures, error-severity findings, and denied codes
/// fail; other warnings pass.
fn lint_file(
    path: &str,
    options: &LintOptions,
    filter: &CodeFilter,
    json: bool,
) -> (Option<LintReport>, bool) {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return (None, false);
        }
    };
    match lint_source(&src, options) {
        Ok(mut report) => {
            filter.apply(&mut report);
            let ok = report.error_count() == 0 && !filter.denied(&report);
            if !json {
                println!(
                    "== {path} ({} finding{}, {}) ==",
                    report.diagnostics.len(),
                    if report.diagnostics.len() == 1 {
                        ""
                    } else {
                        "s"
                    },
                    if ok { "ok" } else { "errors" }
                );
                if report.diagnostics.is_empty() {
                    println!("   clean");
                }
                // Every lint_source diagnostic carries a span; point the
                // caret at the construct instead of echoing the name.
                for line in report.render_source(&src).lines() {
                    println!("   {line}");
                }
            }
            (Some(report), ok)
        }
        Err(e) => {
            // The caret rendering points at the offending span in-line.
            eprintln!("{path}: {}", e.render(&src));
            (None, false)
        }
    }
}

/// The `--deny`/`--allow` code lists.
#[derive(Default)]
struct CodeFilter {
    deny: Vec<DiagnosticCode>,
    allow: Vec<DiagnosticCode>,
}

impl CodeFilter {
    fn parse_into(list: &mut Vec<DiagnosticCode>, arg: &str) -> Result<(), String> {
        for code in arg.split(',').filter(|c| !c.is_empty()) {
            match DiagnosticCode::from_code(code) {
                Some(c) => list.push(c),
                None => return Err(format!("unknown diagnostic code `{code}`")),
            }
        }
        Ok(())
    }

    /// Drop allowed codes from the report.
    fn apply(&self, report: &mut LintReport) {
        if !self.allow.is_empty() {
            report.diagnostics.retain(|d| !self.allow.contains(&d.code));
        }
    }

    /// Whether the report carries a denied code.
    fn denied(&self, report: &LintReport) -> bool {
        report
            .diagnostics
            .iter()
            .any(|d| self.deny.contains(&d.code))
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut options = LintOptions::default();
    let mut filter = CodeFilter::default();
    let mut names: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--json" => {
                json = true;
                Ok(())
            }
            "--no-symbolic" => {
                options.symbolic = false;
                Ok(())
            }
            "--depth" => flag_value("--depth")
                .and_then(|v| v.parse::<Depth>())
                .map(|d| options = LintOptions::up_to(d)),
            "--deny" => {
                flag_value("--deny").and_then(|v| CodeFilter::parse_into(&mut filter.deny, &v))
            }
            "--allow" => {
                flag_value("--allow").and_then(|v| CodeFilter::parse_into(&mut filter.allow, &v))
            }
            "--help" | "-h" => {
                println!(
                    "usage: kpt_lint [--json] [--depth decl|view|dataflow|symbolic] \
                     [--deny CODE,..] [--allow CODE,..] [--no-symbolic] [NAME | FILE.kpt ...]"
                );
                return ExitCode::SUCCESS;
            }
            other if is_file_arg(other) => {
                files.push(other.to_owned());
                Ok(())
            }
            other => {
                names.push(other.to_owned());
                Ok(())
            }
        };
        if let Err(e) = result {
            eprintln!("kpt_lint: {e}");
            return ExitCode::FAILURE;
        }
    }

    let cases: Vec<RegistryCase> = if names.is_empty() && !files.is_empty() {
        Vec::new()
    } else {
        registry()
            .into_iter()
            .filter(|c| names.is_empty() || names.iter().any(|n| n == c.name))
            .collect()
    };
    if cases.is_empty() && files.is_empty() {
        eprintln!("no model matches {names:?}");
        return ExitCode::FAILURE;
    }

    let mut all_ok = true;
    let mut reports = Vec::new();
    for path in &files {
        let (report, ok) = lint_file(path, &options, &filter, json);
        all_ok &= ok;
        if let Some(report) = report {
            reports.push(report);
        }
    }
    for (case, mut report) in cases.iter().zip(lint_registry(&cases, &options)) {
        filter.apply(&mut report);
        let codes: Vec<&str> = report.codes().iter().map(|c| c.code()).collect();
        // An expected code is only held against the run when the pass
        // that produces it actually ran under the selected depth.
        let expected: Vec<&str> = case
            .expected
            .iter()
            .copied()
            .filter(|c| {
                if filter.allow.iter().any(|a| a.code() == *c) {
                    return false;
                }
                match DiagnosticCode::from_code(c).map(DiagnosticCode::depth) {
                    Some(Depth::Symbolic) => report.symbolic_ran,
                    Some(Depth::Dataflow) => report.dataflow_ran,
                    _ => true,
                }
            })
            .collect();
        let ok = codes == expected && !filter.denied(&report);
        all_ok &= ok;
        if !json {
            print_human(case, &report, &expected, ok);
        }
        reports.push(report);
    }

    if json {
        let items: Vec<String> = reports.iter().map(LintReport::to_json).collect();
        println!("[{}]", items.join(","));
    } else {
        let total = cases.len() + files.len();
        println!(
            "{} model{} linted; {}",
            total,
            if total == 1 { "" } else { "s" },
            if all_ok {
                "all findings as expected"
            } else {
                "UNEXPECTED findings present"
            }
        );
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
