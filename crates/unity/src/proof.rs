//! A certificate-producing proof kernel for the UNITY logic of §5 and the
//! appendix metatheorems (§8).
//!
//! The paper's §6 derivation is a chain of applications of the primitive
//! rules (27)–(33) and metatheorems (substitution, consequence weakening,
//! conjunction, cancellation, generalized disjunction, PSP). This module
//! lets those proofs be *replayed*: a [`Thm`] can only be constructed by a
//! rule whose semantic side conditions were checked against the program
//! (or by an explicit, labelled [`ProofContext::assume`], mirroring the
//! paper's `properties` sections, e.g. (Kbp-1)–(Kbp-4)).
//!
//! Soundness invariant (tested property): any theorem whose assumptions all
//! model-check also model-checks.

use std::fmt;

use kpt_state::Predicate;

use crate::compiled::CompiledProgram;
use crate::error::ProofError;

/// A UNITY property, the judgement forms of the specification language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Property {
    /// `invariant p` (eq. 5).
    Invariant(Predicate),
    /// `stable p` (eq. 33).
    Stable(Predicate),
    /// `p unless q` (eq. 27).
    Unless(Predicate, Predicate),
    /// `p ensures q` (eq. 28).
    Ensures(Predicate, Predicate),
    /// `p ↦ q` (eqs. 29–31).
    LeadsTo(Predicate, Predicate),
}

impl Property {
    /// Decide the property by model checking against `program`.
    pub fn check(&self, program: &CompiledProgram) -> bool {
        match self {
            Property::Invariant(p) => program.invariant(p),
            Property::Stable(p) => program.stable(p),
            Property::Unless(p, q) => program.unless(p, q),
            Property::Ensures(p, q) => program.ensures(p, q),
            Property::LeadsTo(p, q) => program.leads_to_holds(p, q),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Property::Invariant(_) => "invariant",
            Property::Stable(_) => "stable",
            Property::Unless(..) => "unless",
            Property::Ensures(..) => "ensures",
            Property::LeadsTo(..) => "leads-to",
        }
    }
}

/// A theorem: a [`Property`] together with the derivation that produced it.
#[derive(Debug, Clone)]
pub struct Thm {
    property: Property,
    rule: &'static str,
    premises: Vec<Thm>,
    assumed: bool,
}

impl Thm {
    /// The proved property.
    pub fn property(&self) -> &Property {
        &self.property
    }

    /// The rule that produced this theorem.
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// The premise theorems.
    pub fn premises(&self) -> &[Thm] {
        &self.premises
    }

    /// All assumptions (leaves introduced by [`ProofContext::assume`]) in
    /// the derivation tree.
    pub fn assumptions(&self) -> Vec<&Property> {
        let mut out = Vec::new();
        self.collect_assumptions(&mut out);
        out
    }

    fn collect_assumptions<'a>(&'a self, out: &mut Vec<&'a Property>) {
        if self.assumed {
            out.push(&self.property);
        }
        for p in &self.premises {
            p.collect_assumptions(out);
        }
    }

    /// Whether the derivation is assumption-free (every leaf was checked
    /// against the program text).
    pub fn is_assumption_free(&self) -> bool {
        self.assumptions().is_empty()
    }

    /// Render the derivation tree, one rule per line, indented by depth.
    pub fn derivation(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.rule);
        out.push_str(": ");
        out.push_str(&self.property.to_string());
        out.push('\n');
        for p in &self.premises {
            p.render(depth + 1, out);
        }
    }

    fn derived(property: Property, rule: &'static str, premises: Vec<Thm>) -> Thm {
        Thm {
            property,
            rule,
            premises,
            assumed: false,
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Invariant(p) => write!(f, "invariant ({} states)", p.count()),
            Property::Stable(p) => write!(f, "stable ({} states)", p.count()),
            Property::Unless(p, q) => {
                write!(f, "({} states) unless ({} states)", p.count(), q.count())
            }
            Property::Ensures(p, q) => {
                write!(f, "({} states) ensures ({} states)", p.count(), q.count())
            }
            Property::LeadsTo(p, q) => {
                write!(f, "({} states) leads-to ({} states)", p.count(), q.count())
            }
        }
    }
}

/// The proof kernel: all rules are methods checking their side conditions
/// against one compiled program.
pub struct ProofContext<'a> {
    program: &'a CompiledProgram,
}

impl<'a> ProofContext<'a> {
    /// A kernel for `program`.
    pub fn new(program: &'a CompiledProgram) -> Self {
        ProofContext { program }
    }

    /// The program being reasoned about.
    pub fn program(&self) -> &'a CompiledProgram {
        self.program
    }

    fn si(&self) -> &Predicate {
        self.program.si()
    }

    /// `[SI ⇒ (p ⇒ q)]` — entailment on reachable states, the judgement
    /// used by all side conditions (the substitution axiom of §8.1 lets any
    /// invariant strengthen the antecedent, and `SI` is the strongest one).
    pub fn entails_on_si(&self, p: &Predicate, q: &Predicate) -> bool {
        self.si().and(p).entails(q)
    }

    // ------------------------------------------------------------------
    // Assumptions (the paper's `properties` sections).
    // ------------------------------------------------------------------

    /// Introduce an assumption, as the paper does for channel-liveness and
    /// stability properties (Kbp-1..4, St-1..4). The resulting theorem is
    /// marked and propagates through [`Thm::assumptions`].
    pub fn assume(&self, property: Property) -> Thm {
        Thm {
            property,
            rule: "assume",
            premises: Vec::new(),
            assumed: true,
        }
    }

    // ------------------------------------------------------------------
    // Primitive rules, checked against the program text.
    // ------------------------------------------------------------------

    /// Rule (32): `invariant I ∧ (∀s :: [(p ∧ I) ⇒ wp.s.p]) ⇒ invariant p`,
    /// together with the initial-state obligation `[init ⇒ p]`. Pass
    /// `None` for `I` to use `I = true` ("a convenient choice").
    ///
    /// # Errors
    /// [`ProofError`] if an obligation fails or `aux` is not an invariant
    /// theorem.
    pub fn invariant_text(&self, p: &Predicate, aux: Option<&Thm>) -> Result<Thm, ProofError> {
        let i = match aux {
            None => Predicate::tt(self.program.space()),
            Some(thm) => match thm.property() {
                Property::Invariant(i) => i.clone(),
                _ => {
                    return Err(ProofError::PremiseShape {
                        rule: "invariant-text",
                        expected: "an invariant theorem as auxiliary".into(),
                    })
                }
            },
        };
        if !self.program.init().entails(p) {
            return Err(ProofError::Obligation {
                rule: "invariant-text",
                detail: obligation_witness(
                    "[init => p]",
                    self.program,
                    &self.program.init().minus(p),
                ),
            });
        }
        let pre = p.and(&i);
        for (idx, t) in self.program.transitions().iter().enumerate() {
            let wp = t.wp(p);
            if !pre.entails(&wp) {
                return Err(ProofError::Obligation {
                    rule: "invariant-text",
                    detail: obligation_witness(
                        &format!("[(p /\\ I) => wp.{}.p]", self.program.statement_name(idx)),
                        self.program,
                        &pre.minus(&wp),
                    ),
                });
            }
        }
        Ok(Thm::derived(
            Property::Invariant(p.clone()),
            "invariant-text",
            aux.into_iter().cloned().collect(),
        ))
    }

    /// Rule (27), from the program text:
    /// `p unless q ≡ (∀s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.(p ∨ q))])`.
    ///
    /// # Errors
    /// [`ProofError::Obligation`] with a witness state if some statement
    /// violates the condition.
    pub fn unless_text(&self, p: &Predicate, q: &Predicate) -> Result<Thm, ProofError> {
        let pre = p.minus(q).and(self.si());
        let post = p.or(q);
        for (idx, t) in self.program.transitions().iter().enumerate() {
            let wp = t.wp(&post);
            if !pre.entails(&wp) {
                return Err(ProofError::Obligation {
                    rule: "unless-text",
                    detail: obligation_witness(
                        &format!(
                            "[SI => ((p /\\ ~q) => wp.{}.(p \\/ q))]",
                            self.program.statement_name(idx)
                        ),
                        self.program,
                        &pre.minus(&wp),
                    ),
                });
            }
        }
        Ok(Thm::derived(
            Property::Unless(p.clone(), q.clone()),
            "unless-text",
            vec![],
        ))
    }

    /// `stable p ≡ p unless false` (eq. 33), from the program text.
    ///
    /// # Errors
    /// As for [`ProofContext::unless_text`].
    pub fn stable_text(&self, p: &Predicate) -> Result<Thm, ProofError> {
        let u = self.unless_text(p, &Predicate::ff(self.program.space()))?;
        Ok(Thm::derived(
            Property::Stable(p.clone()),
            "stable-text",
            vec![u],
        ))
    }

    /// Rule (28), from the program text: `p ensures q` requires
    /// `p unless q` plus a single statement establishing `q` from every
    /// `SI ∧ p ∧ ¬q` state.
    ///
    /// # Errors
    /// [`ProofError::Obligation`] if no witnessing statement exists.
    pub fn ensures_text(&self, p: &Predicate, q: &Predicate) -> Result<Thm, ProofError> {
        let unless = self.unless_text(p, q)?;
        let pre = p.minus(q).and(self.si());
        let witness = self
            .program
            .transitions()
            .iter()
            .position(|t| pre.entails(&t.wp(q)));
        match witness {
            Some(_) => Ok(Thm::derived(
                Property::Ensures(p.clone(), q.clone()),
                "ensures-text",
                vec![unless],
            )),
            None => Err(ProofError::Obligation {
                rule: "ensures-text",
                detail: "no single statement establishes q from every SI /\\ p /\\ ~q state".into(),
            }),
        }
    }

    /// Combine `p unless q` (an assumption or derived theorem) with an
    /// existence obligation checked against the text, yielding
    /// `p ensures q`. This is how the paper proves (40): the `unless` part
    /// comes from the metatheory (assumed stability), only the transition
    /// obligation is discharged against the text.
    ///
    /// # Errors
    /// Shape errors, or the existence obligation failing.
    pub fn ensures_from_unless(&self, unless: &Thm) -> Result<Thm, ProofError> {
        let (p, q) = match unless.property() {
            Property::Unless(p, q) => (p.clone(), q.clone()),
            _ => {
                return Err(ProofError::PremiseShape {
                    rule: "ensures-from-unless",
                    expected: "an unless theorem".into(),
                })
            }
        };
        let pre = p.minus(&q).and(self.si());
        if !self
            .program
            .transitions()
            .iter()
            .any(|t| pre.entails(&t.wp(&q)))
        {
            return Err(ProofError::Obligation {
                rule: "ensures-from-unless",
                detail: "no single statement establishes q from every SI /\\ p /\\ ~q state".into(),
            });
        }
        Ok(Thm::derived(
            Property::Ensures(p, q),
            "ensures-from-unless",
            vec![unless.clone()],
        ))
    }

    // ------------------------------------------------------------------
    // Leads-to introduction rules (29)–(31).
    // ------------------------------------------------------------------

    /// Rule (29): `p ensures q ⊢ p ↦ q`.
    ///
    /// # Errors
    /// Shape error if the premise is not an `ensures` theorem.
    pub fn leads_to_basis(&self, ensures: &Thm) -> Result<Thm, ProofError> {
        match ensures.property() {
            Property::Ensures(p, q) => Ok(Thm::derived(
                Property::LeadsTo(p.clone(), q.clone()),
                "leads-to-basis",
                vec![ensures.clone()],
            )),
            _ => Err(ProofError::PremiseShape {
                rule: "leads-to-basis",
                expected: "an ensures theorem".into(),
            }),
        }
    }

    /// Rule (30): `p ↦ r, r ↦ q ⊢ p ↦ q`. The intermediate predicates must
    /// agree on reachable states.
    ///
    /// # Errors
    /// Shape or side-condition errors.
    pub fn leads_to_trans(&self, first: &Thm, second: &Thm) -> Result<Thm, ProofError> {
        match (first.property(), second.property()) {
            (Property::LeadsTo(p, r1), Property::LeadsTo(r2, q)) => {
                if !self.entails_on_si(r1, r2) {
                    return Err(ProofError::SideCondition {
                        rule: "leads-to-trans",
                        condition: "[SI => (r => r')] between the premises".into(),
                    });
                }
                Ok(Thm::derived(
                    Property::LeadsTo(p.clone(), q.clone()),
                    "leads-to-trans",
                    vec![first.clone(), second.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "leads-to-trans",
                expected: "two leads-to theorems".into(),
            }),
        }
    }

    /// Rule (31), finite form: from `p.m ↦ q` for every `m`, conclude
    /// `(∃m :: p.m) ↦ q`. All premises must share `q` (up to SI).
    ///
    /// # Errors
    /// Shape or side-condition errors; at least one premise is required.
    pub fn leads_to_disj(&self, premises: &[Thm]) -> Result<Thm, ProofError> {
        if premises.is_empty() {
            return Err(ProofError::PremiseShape {
                rule: "leads-to-disj",
                expected: "a non-empty premise family".into(),
            });
        }
        let mut union = Predicate::ff(self.program.space());
        let mut q0: Option<Predicate> = None;
        for t in premises {
            match t.property() {
                Property::LeadsTo(p, q) => {
                    union = union.or(p);
                    match &q0 {
                        None => q0 = Some(q.clone()),
                        Some(prev) => {
                            if prev != q {
                                return Err(ProofError::SideCondition {
                                    rule: "leads-to-disj",
                                    condition: "all premises must share the same consequent".into(),
                                });
                            }
                        }
                    }
                }
                _ => {
                    return Err(ProofError::PremiseShape {
                        rule: "leads-to-disj",
                        expected: "leads-to theorems".into(),
                    })
                }
            }
        }
        Ok(Thm::derived(
            Property::LeadsTo(union, q0.expect("non-empty family")),
            "leads-to-disj",
            premises.to_vec(),
        ))
    }

    /// "Leads-to implication": `[SI ⇒ (p ⇒ q)] ⊢ p ↦ q` (used throughout
    /// §6.2, e.g. in the proofs of (44) and (45)). Sound because a state
    /// satisfying `p` already satisfies `q`.
    ///
    /// # Errors
    /// Side-condition error if the entailment fails on reachable states.
    pub fn leads_to_implication(&self, p: &Predicate, q: &Predicate) -> Result<Thm, ProofError> {
        if !self.entails_on_si(p, q) {
            return Err(ProofError::SideCondition {
                rule: "leads-to-implication",
                condition: "[SI => (p => q)]".into(),
            });
        }
        Ok(Thm::derived(
            Property::LeadsTo(p.clone(), q.clone()),
            "leads-to-implication",
            vec![],
        ))
    }

    // ------------------------------------------------------------------
    // §8 metatheorems.
    // ------------------------------------------------------------------

    /// §8.1 substitution: any predicate in a property may be replaced by an
    /// SI-equivalent one (`invariant ≡ true` on reachable states).
    ///
    /// # Errors
    /// Side-condition error if the replacement is not SI-equivalent, or
    /// shape error if the property kinds differ.
    pub fn substitution(&self, thm: &Thm, replacement: Property) -> Result<Thm, ProofError> {
        let pairs: Vec<(&Predicate, &Predicate)> = match (thm.property(), &replacement) {
            (Property::Invariant(a), Property::Invariant(b))
            | (Property::Stable(a), Property::Stable(b)) => vec![(a, b)],
            (Property::Unless(a, b), Property::Unless(c, d))
            | (Property::Ensures(a, b), Property::Ensures(c, d))
            | (Property::LeadsTo(a, b), Property::LeadsTo(c, d)) => vec![(a, c), (b, d)],
            _ => {
                return Err(ProofError::PremiseShape {
                    rule: "substitution",
                    expected: format!("a {} property", thm.property().kind()),
                })
            }
        };
        for (old, new) in pairs {
            let equiv = old.iff(new);
            if !self.si().entails(&equiv) {
                return Err(ProofError::SideCondition {
                    rule: "substitution",
                    condition: "[SI => (old ≡ new)] for every replaced predicate".into(),
                });
            }
        }
        Ok(Thm::derived(replacement, "substitution", vec![thm.clone()]))
    }

    /// §8.2 consequence weakening for unless: `p unless q, [q ⇒ r] ⊢
    /// p unless r`.
    ///
    /// # Errors
    /// Shape or side-condition errors.
    pub fn weaken_unless(&self, thm: &Thm, r: &Predicate) -> Result<Thm, ProofError> {
        match thm.property() {
            Property::Unless(p, q) => {
                if !self.entails_on_si(q, r) {
                    return Err(ProofError::SideCondition {
                        rule: "weaken-unless",
                        condition: "[SI => (q => r)]".into(),
                    });
                }
                Ok(Thm::derived(
                    Property::Unless(p.clone(), r.clone()),
                    "weaken-unless",
                    vec![thm.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "weaken-unless",
                expected: "an unless theorem".into(),
            }),
        }
    }

    /// §8.2 consequence weakening for leads-to: `p ↦ q, [q ⇒ r] ⊢ p ↦ r`.
    ///
    /// # Errors
    /// Shape or side-condition errors.
    pub fn weaken_leads_to(&self, thm: &Thm, r: &Predicate) -> Result<Thm, ProofError> {
        match thm.property() {
            Property::LeadsTo(p, q) => {
                if !self.entails_on_si(q, r) {
                    return Err(ProofError::SideCondition {
                        rule: "weaken-leads-to",
                        condition: "[SI => (q => r)]".into(),
                    });
                }
                Ok(Thm::derived(
                    Property::LeadsTo(p.clone(), r.clone()),
                    "weaken-leads-to",
                    vec![thm.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "weaken-leads-to",
                expected: "a leads-to theorem".into(),
            }),
        }
    }

    /// Antecedent strengthening for leads-to: `[p' ⇒ p], p ↦ q ⊢ p' ↦ q`
    /// (used as "strengthen ant." in the proof of (47); derivable from
    /// leads-to implication and transitivity, provided here directly).
    ///
    /// # Errors
    /// Shape or side-condition errors.
    pub fn strengthen_leads_to(&self, p2: &Predicate, thm: &Thm) -> Result<Thm, ProofError> {
        match thm.property() {
            Property::LeadsTo(p, q) => {
                if !self.entails_on_si(p2, p) {
                    return Err(ProofError::SideCondition {
                        rule: "strengthen-leads-to",
                        condition: "[SI => (p' => p)]".into(),
                    });
                }
                Ok(Thm::derived(
                    Property::LeadsTo(p2.clone(), q.clone()),
                    "strengthen-leads-to",
                    vec![thm.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "strengthen-leads-to",
                expected: "a leads-to theorem".into(),
            }),
        }
    }

    /// §8.3 simple conjunction: `p unless q, p' unless q' ⊢
    /// (p ∧ p') unless (q ∨ q')`.
    ///
    /// # Errors
    /// Shape errors.
    pub fn conjunction_unless(&self, a: &Thm, b: &Thm) -> Result<Thm, ProofError> {
        match (a.property(), b.property()) {
            (Property::Unless(p, q), Property::Unless(p2, q2)) => Ok(Thm::derived(
                Property::Unless(p.and(p2), q.or(q2)),
                "conjunction-unless",
                vec![a.clone(), b.clone()],
            )),
            _ => Err(ProofError::PremiseShape {
                rule: "conjunction-unless",
                expected: "two unless theorems".into(),
            }),
        }
    }

    /// §8.3 general conjunction: `p unless q, p' unless q' ⊢ (p ∧ p')
    /// unless ((p ∧ q') ∨ (p' ∧ q) ∨ (q ∧ q'))`.
    ///
    /// # Errors
    /// Shape errors.
    pub fn conjunction_unless_general(&self, a: &Thm, b: &Thm) -> Result<Thm, ProofError> {
        match (a.property(), b.property()) {
            (Property::Unless(p, q), Property::Unless(p2, q2)) => {
                let rhs = p.and(q2).or(&p2.and(q)).or(&q.and(q2));
                Ok(Thm::derived(
                    Property::Unless(p.and(p2), rhs),
                    "conjunction-unless-general",
                    vec![a.clone(), b.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "conjunction-unless-general",
                expected: "two unless theorems".into(),
            }),
        }
    }

    /// §8.4 cancellation: `p unless q, q unless r ⊢ (p ∨ q) unless r`.
    ///
    /// # Errors
    /// Shape or side-condition errors (the premises must chain through the
    /// same `q`).
    pub fn cancellation(&self, a: &Thm, b: &Thm) -> Result<Thm, ProofError> {
        match (a.property(), b.property()) {
            (Property::Unless(p, q1), Property::Unless(q2, r)) => {
                if q1 != q2 {
                    return Err(ProofError::SideCondition {
                        rule: "cancellation",
                        condition: "the premises must share the middle predicate q".into(),
                    });
                }
                Ok(Thm::derived(
                    Property::Unless(p.or(q1), r.clone()),
                    "cancellation",
                    vec![a.clone(), b.clone()],
                ))
            }
            _ => Err(ProofError::PremiseShape {
                rule: "cancellation",
                expected: "two unless theorems".into(),
            }),
        }
    }

    /// §8.5 generalized disjunction (finite family):
    /// `(∀i :: p.i unless q.i) ⊢ (∃i :: p.i) unless
    /// ((∀i :: ¬p.i ∨ q.i) ∧ (∃i :: q.i))`.
    ///
    /// # Errors
    /// Shape errors; at least one premise is required.
    pub fn general_disjunction_unless(&self, premises: &[Thm]) -> Result<Thm, ProofError> {
        if premises.is_empty() {
            return Err(ProofError::PremiseShape {
                rule: "general-disjunction-unless",
                expected: "a non-empty premise family".into(),
            });
        }
        let space = self.program.space();
        let mut any_p = Predicate::ff(space);
        let mut all_npq = Predicate::tt(space);
        let mut any_q = Predicate::ff(space);
        for t in premises {
            match t.property() {
                Property::Unless(p, q) => {
                    any_p = any_p.or(p);
                    all_npq = all_npq.and(&p.negate().or(q));
                    any_q = any_q.or(q);
                }
                _ => {
                    return Err(ProofError::PremiseShape {
                        rule: "general-disjunction-unless",
                        expected: "unless theorems".into(),
                    })
                }
            }
        }
        Ok(Thm::derived(
            Property::Unless(any_p, all_npq.and(&any_q)),
            "general-disjunction-unless",
            premises.to_vec(),
        ))
    }

    /// §8.6 PSP (progress-safety-progress): `p ↦ q, r unless b ⊢
    /// (p ∧ r) ↦ ((q ∧ r) ∨ b)`.
    ///
    /// # Errors
    /// Shape errors.
    pub fn psp(&self, progress: &Thm, safety: &Thm) -> Result<Thm, ProofError> {
        match (progress.property(), safety.property()) {
            (Property::LeadsTo(p, q), Property::Unless(r, b)) => Ok(Thm::derived(
                Property::LeadsTo(p.and(r), q.and(r).or(b)),
                "psp",
                vec![progress.clone(), safety.clone()],
            )),
            _ => Err(ProofError::PremiseShape {
                rule: "psp",
                expected: "a leads-to theorem and an unless theorem".into(),
            }),
        }
    }

    /// Well-founded induction over a finite rank (used for the paper's
    /// proof of (47)): from `metric[m] ↦ ((∃ m' < m :: metric[m']) ∨ q)`
    /// for every `m`, conclude `(∃m :: metric[m]) ↦ q`.
    ///
    /// The `premises[m]` theorem must have exactly that shape (antecedent
    /// equal to `metric[m]`, consequent equal to the union of lower metrics
    /// or `q`).
    ///
    /// # Errors
    /// Shape or side-condition errors.
    pub fn leads_to_induction(
        &self,
        metric: &[Predicate],
        q: &Predicate,
        premises: &[Thm],
    ) -> Result<Thm, ProofError> {
        if metric.is_empty() || metric.len() != premises.len() {
            return Err(ProofError::PremiseShape {
                rule: "leads-to-induction",
                expected: "one premise per metric level".into(),
            });
        }
        let space = self.program.space();
        let mut lower = Predicate::ff(space);
        for (m, (level, thm)) in metric.iter().zip(premises).enumerate() {
            match thm.property() {
                Property::LeadsTo(p, c) => {
                    let expected = lower.or(q);
                    if p != level || c != &expected {
                        return Err(ProofError::SideCondition {
                            rule: "leads-to-induction",
                            condition: format!(
                                "premise {m} must prove metric[{m}] |-> (lower \\/ q)"
                            ),
                        });
                    }
                }
                _ => {
                    return Err(ProofError::PremiseShape {
                        rule: "leads-to-induction",
                        expected: "leads-to theorems".into(),
                    })
                }
            }
            lower = lower.or(level);
        }
        Ok(Thm::derived(
            Property::LeadsTo(lower, q.clone()),
            "leads-to-induction",
            premises.to_vec(),
        ))
    }

    /// Derive `stable p` from `p unless false`.
    ///
    /// # Errors
    /// Shape error unless the premise is `p unless false`.
    pub fn stable_from_unless(&self, thm: &Thm) -> Result<Thm, ProofError> {
        match thm.property() {
            Property::Unless(p, q) if q.is_false() => Ok(Thm::derived(
                Property::Stable(p.clone()),
                "stable-from-unless",
                vec![thm.clone()],
            )),
            _ => Err(ProofError::PremiseShape {
                rule: "stable-from-unless",
                expected: "p unless false".into(),
            }),
        }
    }

    /// View `stable p` as `p unless false` (eq. 33, other direction).
    ///
    /// # Errors
    /// Shape error unless the premise is a stable theorem.
    pub fn unless_from_stable(&self, thm: &Thm) -> Result<Thm, ProofError> {
        match thm.property() {
            Property::Stable(p) => Ok(Thm::derived(
                Property::Unless(p.clone(), Predicate::ff(self.program.space())),
                "unless-from-stable",
                vec![thm.clone()],
            )),
            _ => Err(ProofError::PremiseShape {
                rule: "unless-from-stable",
                expected: "a stable theorem".into(),
            }),
        }
    }
}

fn obligation_witness(
    condition: &str,
    program: &CompiledProgram,
    violations: &Predicate,
) -> String {
    match violations.witness() {
        Some(s) => format!(
            "{condition} fails at state {{{}}}",
            program.space().render_state(s)
        ),
        None => format!("{condition} fails (no witness?)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::statement::Statement;
    use kpt_state::StateSpace;
    use std::sync::Arc;

    fn counter() -> CompiledProgram {
        let space = StateSpace::builder()
            .nat_var("i", 5)
            .unwrap()
            .build()
            .unwrap();
        Program::builder("counter", &space)
            .init_str("i = 0")
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 4")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .build()
            .unwrap()
            .compile()
            .unwrap()
    }

    fn eq(c: &CompiledProgram, k: u64) -> Predicate {
        let sp = c.space();
        Predicate::var_eq(sp, sp.var("i").unwrap(), k)
    }

    fn ge(c: &CompiledProgram, k: u64) -> Predicate {
        let sp = c.space();
        Predicate::from_var_fn(sp, sp.var("i").unwrap(), |v| v >= k)
    }

    #[test]
    fn primitive_rules_produce_checked_theorems() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let inv = ctx.invariant_text(&ge(&c, 0), None).unwrap();
        assert!(inv.is_assumption_free());
        assert!(inv.property().check(&c));

        let unless = ctx.unless_text(&eq(&c, 2), &eq(&c, 3)).unwrap();
        assert!(unless.property().check(&c));

        let ens = ctx.ensures_text(&eq(&c, 2), &eq(&c, 3)).unwrap();
        assert!(ens.property().check(&c));

        let stable = ctx.stable_text(&ge(&c, 2)).unwrap();
        assert!(stable.property().check(&c));
    }

    #[test]
    fn failing_obligations_are_reported_with_witnesses() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        // i = 2 is not invariant.
        let e = ctx.invariant_text(&eq(&c, 2), None).unwrap_err();
        assert!(matches!(e, ProofError::Obligation { .. }));
        assert!(e.to_string().contains("init"));
        // i <= 2 is not stable.
        let le2 = ge(&c, 3).negate();
        let e = ctx.stable_text(&le2).unwrap_err();
        assert!(e.to_string().contains("fails at state"), "{e}");
        // ensures without a witnessing statement: i=0 ensures i=2.
        let e = ctx.ensures_text(&eq(&c, 0), &eq(&c, 2)).unwrap_err();
        assert!(matches!(e, ProofError::Obligation { .. }));
    }

    #[test]
    fn leads_to_chain() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        // 0 ↦ 1 ↦ 2, then transitivity, then disjunction.
        let e01 = ctx
            .leads_to_basis(&ctx.ensures_text(&eq(&c, 0), &eq(&c, 1)).unwrap())
            .unwrap();
        let e12 = ctx
            .leads_to_basis(&ctx.ensures_text(&eq(&c, 1), &eq(&c, 2)).unwrap())
            .unwrap();
        let t = ctx.leads_to_trans(&e01, &e12).unwrap();
        assert!(t.property().check(&c));
        assert_eq!(t.rule(), "leads-to-trans");
        // Disjunction with i=1 ↦ i=2.
        let d = ctx.leads_to_disj(&[t.clone(), e12]).unwrap();
        assert!(d.property().check(&c));
        // Derivation tree renders.
        let tree = t.derivation();
        assert!(tree.contains("leads-to-trans"));
        assert!(tree.contains("  leads-to-basis"));
    }

    #[test]
    fn assumptions_are_tracked() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let assumed = ctx.assume(Property::LeadsTo(eq(&c, 0), eq(&c, 4)));
        assert!(!assumed.is_assumption_free());
        let weakened = ctx.weaken_leads_to(&assumed, &ge(&c, 4)).unwrap();
        assert_eq!(weakened.assumptions().len(), 1);
    }

    #[test]
    fn metatheorems_check_side_conditions() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let u = ctx.unless_text(&eq(&c, 1), &eq(&c, 2)).unwrap();
        // Weakening to a superset is fine.
        assert!(ctx.weaken_unless(&u, &ge(&c, 2)).is_ok());
        // "Weakening" to a non-superset is rejected.
        assert!(matches!(
            ctx.weaken_unless(&u, &eq(&c, 3)),
            Err(ProofError::SideCondition { .. })
        ));
        // PSP.
        let lt = ctx
            .leads_to_basis(&ctx.ensures_text(&eq(&c, 1), &eq(&c, 2)).unwrap())
            .unwrap();
        let safety = ctx
            .unless_text(&ge(&c, 1), &Predicate::ff(c.space()))
            .unwrap();
        let psp = ctx.psp(&lt, &safety).unwrap();
        assert!(psp.property().check(&c));
        // Cancellation requires matching middles.
        let u12 = ctx.unless_text(&eq(&c, 1), &eq(&c, 2)).unwrap();
        let u23 = ctx.unless_text(&eq(&c, 2), &eq(&c, 3)).unwrap();
        let canc = ctx.cancellation(&u12, &u23).unwrap();
        assert!(canc.property().check(&c));
        let u34 = ctx.unless_text(&eq(&c, 3), &eq(&c, 4)).unwrap();
        assert!(ctx.cancellation(&u12, &u34).is_err());
    }

    #[test]
    fn conjunction_rules() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let a = ctx
            .unless_text(&ge(&c, 1), &Predicate::ff(c.space()))
            .unwrap();
        let b = ctx.unless_text(&eq(&c, 2), &eq(&c, 3)).unwrap();
        let simple = ctx.conjunction_unless(&a, &b).unwrap();
        assert!(simple.property().check(&c));
        let general = ctx.conjunction_unless_general(&a, &b).unwrap();
        assert!(general.property().check(&c));
    }

    #[test]
    fn general_disjunction() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let fam: Vec<Thm> = (0..4)
            .map(|k| ctx.unless_text(&eq(&c, k), &eq(&c, k + 1)).unwrap())
            .collect();
        let d = ctx.general_disjunction_unless(&fam).unwrap();
        assert!(d.property().check(&c));
        assert!(ctx.general_disjunction_unless(&[]).is_err());
    }

    #[test]
    fn substitution_needs_si_equivalence() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let inv = ctx.invariant_text(&ge(&c, 0), None).unwrap();
        // ge 0 is everywhere true; substitute with tt.
        let subst = ctx
            .substitution(&inv, Property::Invariant(Predicate::tt(c.space())))
            .unwrap();
        assert!(subst.property().check(&c));
        // Substituting with something inequivalent fails.
        assert!(ctx
            .substitution(&inv, Property::Invariant(eq(&c, 0)))
            .is_err());
        // Kind mismatch fails.
        assert!(ctx
            .substitution(&inv, Property::Stable(Predicate::tt(c.space())))
            .is_err());
    }

    #[test]
    fn leads_to_implication_and_strengthening() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let li = ctx.leads_to_implication(&eq(&c, 3), &ge(&c, 2)).unwrap();
        assert!(li.property().check(&c));
        assert!(ctx.leads_to_implication(&eq(&c, 1), &ge(&c, 2)).is_err());
        let st = ctx
            .strengthen_leads_to(&eq(&c, 3).and(&ge(&c, 2)), &li)
            .unwrap();
        assert!(st.property().check(&c));
    }

    #[test]
    fn induction_over_distance_to_goal() {
        // metric[m] = (i = 4 - m); premise m: metric[m] ↦ lower ∨ q with
        // q = (i = 4). So metric[0] = i=4 ↦ q directly.
        let c = counter();
        let ctx = ProofContext::new(&c);
        let q = eq(&c, 4);
        let metric: Vec<Predicate> = (0..5).map(|m| eq(&c, 4 - m)).collect();
        let mut premises = Vec::new();
        let mut lower = Predicate::ff(c.space());
        for m in 0..5u64 {
            let target = lower.or(&q);
            let thm = if m == 0 {
                ctx.leads_to_implication(&metric[0], &target).unwrap()
            } else {
                // i = 4-m ensures i = 4-m+1 which implies lower ∨ q.
                let e = ctx
                    .ensures_text(&metric[m as usize], &eq(&c, 4 - m + 1))
                    .unwrap();
                let l = ctx.leads_to_basis(&e).unwrap();
                ctx.weaken_leads_to(&l, &target).unwrap()
            };
            premises.push(thm);
            lower = lower.or(&metric[m as usize]);
        }
        let ind = ctx.leads_to_induction(&metric, &q, &premises).unwrap();
        assert!(ind.property().check(&c));
        // The conclusion is true ↦ i=4 in effect (metrics cover everything).
        match ind.property() {
            Property::LeadsTo(p, _) => assert!(p.everywhere()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn stable_unless_interconversion() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        let s = ctx.stable_text(&ge(&c, 2)).unwrap();
        let u = ctx.unless_from_stable(&s).unwrap();
        assert!(matches!(u.property(), Property::Unless(_, q) if q.is_false()));
        let s2 = ctx.stable_from_unless(&u).unwrap();
        assert_eq!(s2.property(), s.property());
    }

    #[test]
    fn certified_theorems_model_check_true() {
        // The kernel soundness invariant, exercised across rules above, is
        // rechecked wholesale here for a sample derivation.
        let c = counter();
        let ctx = ProofContext::new(&c);
        let thms = [
            ctx.invariant_text(&ge(&c, 0), None).unwrap(),
            ctx.stable_text(&ge(&c, 1)).unwrap(),
            ctx.unless_text(&eq(&c, 0), &eq(&c, 1)).unwrap(),
            ctx.ensures_text(&eq(&c, 0), &eq(&c, 1)).unwrap(),
        ];
        for t in &thms {
            assert!(t.property().check(&c), "{}", t.derivation());
        }
    }

    #[test]
    fn space_accessor() {
        let c = counter();
        let ctx = ProofContext::new(&c);
        assert!(Arc::ptr_eq(ctx.program().space(), c.space()));
    }
}
