//! A minimal property-testing harness: run a check over many seeded random
//! cases, and on failure report the case seed so the exact input can be
//! replayed.
//!
//! This replaces the external `proptest` dependency with the two features
//! the workspace actually relies on — randomised case generation and
//! reproducibility — at zero dependencies. There is no shrinking; instead
//! every failure message carries the `(base seed, case index)` pair, and
//! [`replay`] re-runs a single case under a debugger or with extra logging.
//!
//! # Examples
//! ```
//! use kpt_testkit::{check, Rng};
//! check("addition commutes", 64, |rng| {
//!     let (a, b) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng;

/// Default base seed; override with the `KPT_PROP_SEED` environment
/// variable to explore a different part of the input space.
const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

fn base_seed() -> u64 {
    std::env::var("KPT_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Number of cases multiplier; `KPT_PROP_CASES_SCALE` scales every suite
/// (e.g. `4` for a heavier nightly run, `0` is treated as `1`).
fn case_scale() -> u32 {
    std::env::var("KPT_PROP_CASES_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Guard that announces the failing case when the checked closure panics.
struct CaseReporter<'a> {
    name: &'a str,
    seed: u64,
    case: u32,
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "\nproperty `{}` failed at case {} (base seed {:#x}).\n\
                 Replay with kpt_testkit::replay(\"{}\", {:#x}, {}, ..) or \
                 KPT_PROP_SEED={} to pin the suite.\n",
                self.name, self.case, self.seed, self.name, self.seed, self.case, self.seed
            );
        }
    }
}

/// Run `body` over `cases` independently seeded random cases.
///
/// Each case receives its own [`Rng`] derived from `(base seed, case
/// index)`, so failures are reproducible and cases are order-independent.
///
/// # Panics
/// Propagates the first panic from `body`, after printing the case seed.
pub fn check<F: FnMut(&mut Rng)>(name: &str, cases: u32, mut body: F) {
    let seed = base_seed();
    let cases = cases.saturating_mul(case_scale());
    for case in 0..cases {
        let _reporter = CaseReporter { name, seed, case };
        let mut rng = Rng::seed_from_u64(seed).split(u64::from(case));
        body(&mut rng);
    }
}

/// Re-run a single case of a property (used when diagnosing a reported
/// failure).
pub fn replay<F: FnMut(&mut Rng)>(name: &str, seed: u64, case: u32, mut body: F) {
    let _reporter = CaseReporter { name, seed, case };
    let mut rng = Rng::seed_from_u64(seed).split(u64::from(case));
    body(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut n = 0u32;
        check("count", 17, |_| n += 1);
        assert_eq!(n % 17, 0, "scale multiplies the base count");
        assert!(n >= 17);
    }

    #[test]
    fn cases_see_distinct_streams() {
        let mut firsts = Vec::new();
        check("distinct", 8, |rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert!(firsts.len() >= 7, "streams should differ");
    }

    #[test]
    fn replay_matches_check_stream() {
        let mut recorded = Vec::new();
        let seed = base_seed();
        check("record", 3, |rng| recorded.push(rng.next_u64()));
        for (case, &expect) in recorded.iter().enumerate().take(3) {
            replay("record", seed, case as u32, |rng| {
                assert_eq!(rng.next_u64(), expect);
            });
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        check("fails", 4, |_| panic!("boom"));
    }
}
