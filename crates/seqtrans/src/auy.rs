//! A protocol in the AUY model [AUY79/AUWY82] — the third member of the
//! protocol family §6 cites: "the sender and receiver communicate
//! synchronously over a channel that allows only one bit messages".
//!
//! The AUY papers study the automaton size and transmission rate of such
//! protocols; this module provides an executable family member so the
//! message-count comparison of experiment E11 covers all three cited
//! models. Each element of `x` is serialised into `⌈log₂|A|⌉` logical
//! bits; each logical bit is carried by an **alternating-bit protocol at
//! the bit level**, respecting the one-bit-message constraint:
//!
//! ```text
//! sender:   msg1 = parity     msg2 = data bit      (two 1-bit messages)
//! receiver: echo = parity of the last accepted pair (its 1-bit ack)
//! ```
//!
//! The receiver accepts a pair exactly when both messages arrive intact
//! and the parity is the one it expects — so retransmissions after a lost
//! echo are filtered by parity, never double-accumulated. Faults are
//! erasures (loss or detectable corruption ⇒ the bit is simply missing
//! that round), matching the paper's detectable-corruption channel.

use kpt_channel::{Delivery, FaultConfig, FaultyChannel};

use crate::sim::{SimConfig, SimReport};

/// Bits needed per symbol for an alphabet of `a` symbols.
fn bits_per_symbol(a: usize) -> u32 {
    usize::BITS - (a.max(2) - 1).leading_zeros()
}

/// Run the bit-serialised AUY-model protocol. See the module docs for the
/// wire format. In [`SimReport`], `data_sent` counts forward one-bit
/// messages and `acks_sent` counts echo bits.
///
/// # Panics
/// Panics if the fault model duplicates or reorders (the model is
/// synchronous), if a value in `x` is outside the alphabet, or on a
/// safety violation.
#[must_use]
pub fn run_auy(config: &SimConfig, alphabet: usize) -> SimReport {
    assert_eq!(
        (config.data_faults.duplication, config.data_faults.reorder),
        (0.0, 0.0),
        "the AUY model is synchronous: no duplication or reordering"
    );
    assert!(
        config.x.iter().all(|&v| (v as usize) < alphabet),
        "x contains symbols outside the alphabet"
    );
    let bits = bits_per_symbol(alphabet);
    let total = config.x.len();
    let mut forward: FaultyChannel<bool> =
        FaultyChannel::new(noise_only(config.data_faults), config.seed.wrapping_mul(2));
    let mut echo: FaultyChannel<bool> = FaultyChannel::new(
        noise_only(config.ack_faults),
        config.seed.wrapping_mul(2).wrapping_add(1),
    );

    // Sender state.
    let mut sym_index = 0usize;
    let mut bit_index = 0u32;
    let mut parity = false;
    // Receiver state.
    let mut w: Vec<u8> = Vec::new();
    let mut partial: u8 = 0;
    let mut got_bits = 0u32;
    let mut expected = false;
    let mut last_echo = true; // parity of the last ACCEPTED pair (= ¬expected)

    let (mut data_sent, mut acks_sent) = (0u64, 0u64);
    let mut steps = 0u64;

    while sym_index < total && steps < config.max_steps {
        let logical = (config.x[sym_index] >> (bits - 1 - bit_index)) & 1 == 1;
        // Two one-bit messages: parity, then the data bit.
        forward.send(parity);
        forward.send(logical);
        data_sent += 2;
        let p = recv_bit(&mut forward);
        let d = recv_bit(&mut forward);
        // Receiver: accept on an intact, expected-parity pair.
        if let (Some(p), Some(d)) = (p, d) {
            if p == expected {
                partial = (partial << 1) | u8::from(d);
                got_bits += 1;
                last_echo = p;
                expected = !expected;
                if got_bits == bits {
                    w.push(partial);
                    assert!(
                        w.as_slice() == &config.x[..w.len()],
                        "auy safety violation: {w:?}"
                    );
                    partial = 0;
                    got_bits = 0;
                }
            }
            // Duplicate pair (parity mismatch): ignored, re-echo below.
        }
        // Receiver echoes the parity of its last accepted pair.
        echo.send(last_echo);
        acks_sent += 1;
        // Sender: advance exactly when the echo confirms its parity.
        if recv_bit(&mut echo) == Some(parity) {
            parity = !parity;
            bit_index += 1;
            if bit_index == bits {
                bit_index = 0;
                sym_index += 1;
            }
        }
        steps += 3;
    }

    SimReport {
        completed: sym_index >= total,
        delivered: w,
        data_sent,
        acks_sent,
        steps,
    }
}

/// Fold a fault model into a *slot-preserving erasure* model: synchrony
/// means every round has a slot, so a "lost" bit still occupies its slot
/// and arrives as the detectable ⊥ — i.e. loss is folded into corruption.
/// (Dropping the message entirely would desynchronise the framing, which
/// the AUY timing model rules out.)
fn noise_only(f: FaultConfig) -> FaultConfig {
    FaultConfig {
        loss: 0.0,
        duplication: 0.0,
        // Cap below 1: a round needs three consecutive intact bits, so a
        // saturated erasure rate (which the fairness bound only punctures
        // one bit at a time) would deadlock the synchronous framing.
        corruption: (f.loss + f.corruption).min(0.85),
        reorder: 0.0,
        fairness_bound: f.fairness_bound,
    }
}

fn recv_bit(ch: &mut FaultyChannel<bool>) -> Option<bool> {
    match ch.recv() {
        Some(Delivery::Intact(b)) => Some(b),
        _ => None,
    }
}

/// A [`SimConfig`] suitable for [`run_auy`] (loss/corruption only).
#[must_use]
pub fn auy_config(x: Vec<u8>, noise: f64, seed: u64) -> SimConfig {
    SimConfig {
        x,
        data_faults: FaultConfig::paper(noise, 0.0, noise, 32),
        ack_faults: FaultConfig::paper(noise, 0.0, noise, 32),
        seed,
        apriori_prefix: 0,
        max_steps: 10_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_symbol_is_ceil_log2() {
        assert_eq!(bits_per_symbol(2), 1);
        assert_eq!(bits_per_symbol(3), 2);
        assert_eq!(bits_per_symbol(4), 2);
        assert_eq!(bits_per_symbol(5), 3);
        assert_eq!(bits_per_symbol(8), 3);
    }

    #[test]
    fn reliable_run_costs_exactly_the_bit_budget() {
        let x: Vec<u8> = (0..32).map(|i| (i % 4) as u8).collect();
        let r = run_auy(&SimConfig::reliable(x.clone()), 4);
        assert!(r.completed);
        assert_eq!(r.delivered, x);
        // 2 bits/symbol, each logical bit = 2 forward messages + 1 echo.
        assert_eq!(r.data_sent, 32 * 2 * 2);
        assert_eq!(r.acks_sent, 32 * 2);
    }

    #[test]
    fn noisy_runs_still_deliver() {
        let x: Vec<u8> = (0..20).map(|i| (i % 2) as u8).collect();
        for seed in 0..6 {
            let r = run_auy(&auy_config(x.clone(), 0.3, seed), 2);
            assert!(r.completed, "seed {seed}: {r:?}");
            assert_eq!(r.delivered, x, "seed {seed}");
            assert!(r.data_sent > 40, "noise must cost retransmissions");
        }
    }

    #[test]
    fn binary_alphabet_is_cheapest_per_element() {
        let n = 24usize;
        let x2: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let x4: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
        let r2 = run_auy(&SimConfig::reliable(x2), 2);
        let r4 = run_auy(&SimConfig::reliable(x4), 4);
        assert_eq!(r2.data_sent * 2, r4.data_sent);
    }

    #[test]
    #[should_panic(expected = "synchronous")]
    fn duplication_rejected() {
        let mut cfg = SimConfig::reliable(vec![0, 1]);
        cfg.data_faults.duplication = 0.5;
        let _ = run_auy(&cfg, 2);
    }

    #[test]
    #[should_panic(expected = "outside the alphabet")]
    fn alphabet_violation_rejected() {
        let _ = run_auy(&SimConfig::reliable(vec![5]), 2);
    }

    #[test]
    fn determinism() {
        let x: Vec<u8> = (0..15).map(|i| (i % 2) as u8).collect();
        let a = run_auy(&auy_config(x.clone(), 0.4, 9), 2);
        let b = run_auy(&auy_config(x, 0.4, 9), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_pairs_are_filtered_by_parity() {
        // Drop only echoes: the sender retransmits pairs the receiver has
        // already accepted; parity must prevent double accumulation.
        let x: Vec<u8> = vec![1, 0, 1, 1];
        let mut cfg = SimConfig::reliable(x.clone());
        cfg.ack_faults = FaultConfig::lossy(0.6, 8);
        cfg.seed = 3;
        let r = run_auy(&cfg, 2);
        assert!(r.completed);
        assert_eq!(r.delivered, x);
    }
}
