//! The symbolic KBP solver: eq. (25)'s iteration
//! `x_{k+1} = SI(program[K @ x_k])` computed entirely over BDDs.
//!
//! This is the escape hatch `kpt_core::Kbp::solve_exhaustive` points at
//! when it rejects a search with `SearchTooLarge`: the iteration touches
//! one candidate per step instead of `2^free` of them, and each step is a
//! frontier fixpoint over transition relations instead of a bitset sweep.
//!
//! A program is translated **once**: per statement we precompute the
//! update relation (from the assignments' support, never the full state
//! space, unless an opaque `update_with` closure forces a bounded explicit
//! sweep) and a `bad` set of pre-states whose assignment goes out of
//! range. The update stays *conjunctively partitioned* — one small BDD per
//! assignment plus identity and domain parts — so per candidate only the
//! knowledge guards are re-evaluated, checked against `bad` (mirroring
//! `UnityError::UpdateOutOfRange` on enabled states exactly), and paired
//! with the partition for early-quantified fixpoint images; the monolithic
//! `ite(guard, update, identity)` relation is never materialised.
//!
//! Everything the solver holds across fixpoint rounds — the initial set,
//! static guards, `bad` sets, partition parts, and the SI cache's keys and
//! values — is rooted against garbage collection and released on drop.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kpt_logic::Formula;
use kpt_state::{VarId, VarSet};
use kpt_unity::{Guard, Program};

use crate::error::BddError;
use crate::fixpoint::sst_raw_bounded;
use crate::formula::{CExpr, SymbolicEvalContext};
use crate::knowledge::SymbolicKnowledge;
use crate::manager::{BddConfig, Manager, NodeId, FALSE, TRUE};
use crate::predicate::SymbolicPredicate;
use crate::space::BddSpace;
use crate::transition::{
    ImageRel, Part, PartSet, SymbolicTransition, OPAQUE_ENUM_MAX, SUPPORT_ENUM_MAX,
};

/// Memoized `candidate → SI` pairs before a clear-on-full eviction;
/// matches `kpt_core::Kbp`'s cache capacity.
const SI_CACHE_CAP: usize = 4096;

#[derive(Default)]
struct SiCache {
    /// `candidate → SI`. Both sides are rooted while the entry lives, so
    /// no GC sweep can free (or recycle the id of) either one.
    map: HashMap<NodeId, NodeId>,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

/// How a statement's guard is obtained per candidate.
enum GuardSpec {
    /// Knowledge-free: evaluated once at translation time.
    Static(NodeId),
    /// Mentions `K{i}`: re-evaluated at every candidate invariant.
    Knowledge(Formula),
}

/// One translated statement.
struct SymStatement {
    name: String,
    guard: GuardSpec,
    /// Update relation on guard-enabled states (both copies in-domain),
    /// kept as a conjunctive partition with early-quantification schedules.
    parts: PartSet,
    /// Pre-states where some assignment evaluates outside its target's
    /// domain — an error iff the guard enables any of them.
    bad: NodeId,
    /// Compiled assignments, for out-of-range witness diagnostics.
    assigns: Vec<(VarId, CExpr)>,
    params: HashMap<String, i64>,
}

/// A knowledge-based program, translated for symbolic solving.
pub struct SymbolicKbp {
    program: Program,
    space: Arc<BddSpace>,
    init: NodeId,
    views: Vec<(String, VarSet)>,
    statements: Vec<SymStatement>,
    si_cache: Mutex<SiCache>,
}

impl std::fmt::Debug for SymbolicKbp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicKbp")
            .field("program", &self.program.name())
            .field("statements", &self.statements.len())
            .finish()
    }
}

/// Outcome of [`SymbolicKbp::solve_iterative`] — the symbolic counterpart
/// of `kpt_core::IterativeOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicOutcome {
    /// The iteration reached a fixpoint: a verified eq. (25) solution.
    Converged {
        /// The solution.
        solution: SymbolicPredicate,
        /// Iterations used.
        iterations: usize,
    },
    /// The iteration entered a cycle — Figure-1-style ill-posedness
    /// evidence.
    Cycle {
        /// Length of the cycle.
        period: usize,
        /// Iterations before entering the cycle.
        entered_after: usize,
    },
    /// The iteration budget ran out.
    Inconclusive {
        /// Iterations used.
        iterations: usize,
    },
}

impl SymbolicOutcome {
    /// The solution, if the iteration converged.
    pub fn solution(&self) -> Option<&SymbolicPredicate> {
        match self {
            SymbolicOutcome::Converged { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

impl SymbolicKbp {
    /// Translate a program (knowledge-based or standard) for symbolic
    /// solving. Process views become the knowledge views, exactly as in
    /// `kpt_core::Kbp::new`.
    ///
    /// # Errors
    /// [`BddError`] when a statement cannot be translated (unknown
    /// identifiers, unbounded supports over a too-large space, …).
    pub fn from_program(program: &Program) -> Result<Self, BddError> {
        Self::from_program_with(program, BddConfig::default())
    }

    /// [`SymbolicKbp::from_program`] with an explicit engine
    /// configuration — `BddConfig::serial()` for the grow-only
    /// fixed-order engine, or a `SiftOnGrowth` reorder policy to exercise
    /// GC and dynamic reordering; the differential fuzz oracle runs both
    /// against the explicit solver.
    ///
    /// # Errors
    /// As for [`SymbolicKbp::from_program`].
    pub fn from_program_with(program: &Program, config: BddConfig) -> Result<Self, BddError> {
        let space = BddSpace::with_config(program.space(), config);
        let views = program
            .processes()
            .iter()
            .map(|p| (p.name().to_owned(), p.view()))
            .collect();
        let mut statements = Vec::new();
        let init;
        {
            let mut mgr = space.lock();
            for stmt in program.statements() {
                let stmt = translate_statement(&space, &mut mgr, program, stmt)?;
                // Everything a statement holds across fixpoint rounds must
                // survive any GC sweep at a round checkpoint.
                if let GuardSpec::Static(g) = stmt.guard {
                    mgr.add_root(g);
                }
                mgr.add_root(stmt.bad);
                let mut roots = Vec::new();
                stmt.parts.roots(&mut roots);
                for r in roots {
                    mgr.add_root(r);
                }
                statements.push(stmt);
            }
            init = space.encode_explicit_raw(&mut mgr, program.init());
            mgr.add_root(init);
        }
        Ok(SymbolicKbp {
            program: program.clone(),
            space,
            init,
            views,
            statements,
            si_cache: Mutex::new(SiCache::default()),
        })
    }

    /// The translated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shared symbolic space (for building candidate predicates).
    pub fn space(&self) -> &Arc<BddSpace> {
        &self.space
    }

    /// The program's initial condition, symbolically.
    pub fn init(&self) -> SymbolicPredicate {
        SymbolicPredicate::new(&self.space, self.init)
    }

    /// One step of the solution iteration: the strongest invariant of the
    /// program with knowledge guards evaluated at `x`. Memoized per
    /// candidate root.
    ///
    /// # Errors
    /// [`BddError::UpdateOutOfRange`] when a guard enabled at some state
    /// of the reassembled program assigns outside a domain, plus any guard
    /// evaluation failure.
    pub fn iterate(&self, x: &SymbolicPredicate) -> Result<SymbolicPredicate, BddError> {
        let root = self.iterate_root(x.root())?;
        Ok(SymbolicPredicate::new(&self.space, root))
    }

    /// [`SymbolicKbp::iterate`] under a live-node budget: the inner SI
    /// fixpoint fails with [`BddError::NodeBudgetExceeded`] if more than
    /// `max_live_nodes` nodes remain allocated after any round's safe
    /// point — the memory bound long-running services (kpt-server) map to
    /// a typed per-request error instead of letting one candidate eat the
    /// manager. A budget-tripped call leaves the SI memo untouched, so a
    /// later retry with a larger budget starts clean.
    ///
    /// # Errors
    /// [`BddError::NodeBudgetExceeded`] plus everything
    /// [`SymbolicKbp::iterate`] can return.
    pub fn iterate_bounded(
        &self,
        x: &SymbolicPredicate,
        max_live_nodes: usize,
    ) -> Result<SymbolicPredicate, BddError> {
        let root = self.iterate_root_bounded(x.root(), max_live_nodes)?;
        Ok(SymbolicPredicate::new(&self.space, root))
    }

    /// Is `x` a solution of eq. (25)? O(1) comparison after one iteration.
    ///
    /// # Errors
    /// As for [`SymbolicKbp::iterate`].
    pub fn is_solution(&self, x: &SymbolicPredicate) -> Result<bool, BddError> {
        Ok(self.iterate_root(x.root())? == x.root())
    }

    fn iterate_root(&self, x: NodeId) -> Result<NodeId, BddError> {
        self.iterate_root_bounded(x, usize::MAX)
    }

    fn iterate_root_bounded(&self, x: NodeId, max_live_nodes: usize) -> Result<NodeId, BddError> {
        {
            let mut cache = self.si_cache.lock().expect("SI cache poisoned");
            if let Some(&si) = cache.map.get(&x) {
                cache.hits += 1;
                kpt_obs::counter!("bdd.kbp.si_cache.hits").incr();
                return Ok(si);
            }
            cache.misses += 1;
            kpt_obs::counter!("bdd.kbp.si_cache.misses").incr();
        }
        // One shared knowledge operator per candidate, like
        // `Kbp::compile_at`: every guard's `K{i}` subterms go through one
        // memo.
        let knowledge = SymbolicKnowledge::with_si(
            &self.space,
            self.views.clone(),
            &SymbolicPredicate::new(&self.space, x),
        );
        let mut mgr = self.space.lock();
        let mut guards = Vec::with_capacity(self.statements.len());
        for stmt in &self.statements {
            let guard = match &stmt.guard {
                GuardSpec::Static(g) => *g,
                GuardSpec::Knowledge(f) => {
                    let ctx = SymbolicEvalContext::new(&self.space)
                        .with_params(&stmt.params)
                        .with_knowledge(&knowledge);
                    ctx.eval_raw(&mut mgr, f)?
                }
            };
            let enabled_bad = mgr.and(guard, stmt.bad);
            if enabled_bad != FALSE {
                let path = mgr
                    .witness_path(enabled_bad)
                    .expect("non-false BDD has a witness");
                let witness = self.space.decode_cur_path(&path);
                return Err(self.out_of_range_at(stmt, witness));
            }
            guards.push(guard);
        }
        // The monolithic `ite(guard, update, identity)` relation is never
        // built: each statement enters the fixpoint as its guard plus
        // partition (the identity else-branch cannot add states to a
        // reachability closure, so the frontier sequence is unchanged).
        let rels: Vec<ImageRel<'_>> = self
            .statements
            .iter()
            .zip(&guards)
            .map(|(stmt, &guard)| ImageRel::Parts {
                guard,
                set: &stmt.parts,
            })
            .collect();
        let (si, _) = sst_raw_bounded(&self.space, &mut mgr, self.init, &rels, max_live_nodes)?;
        let mut cache = self.si_cache.lock().expect("SI cache poisoned");
        if cache.map.len() >= SI_CACHE_CAP {
            for (&k, &v) in cache.map.iter() {
                mgr.release_root(k);
                mgr.release_root(v);
            }
            cache.map.clear();
            cache.evictions += 1;
            kpt_obs::counter!("bdd.kbp.si_cache.evictions").incr();
        }
        mgr.add_root(x);
        // `si` arrives from `sst_raw_bounded` already carrying one root reference;
        // the cache adopts it rather than adding a second.
        cache.inserts += 1;
        cache.map.insert(x, si);
        Ok(si)
    }

    /// Pinpoint the first in-order offending assignment at `witness` —
    /// the same report `compile_statement` produces explicitly.
    fn out_of_range_at(&self, stmt: &SymStatement, witness: u64) -> BddError {
        let st_space = self.space.space();
        for (var, ce) in &stmt.assigns {
            let v = ce.eval_state(st_space, witness);
            if v < 0 || !st_space.domain(*var).contains(v as u64) {
                return BddError::UpdateOutOfRange {
                    statement: stmt.name.clone(),
                    var: st_space.name(*var).to_owned(),
                    state: st_space.render_state(witness),
                    value: v,
                };
            }
        }
        unreachable!("state in the bad set must have an offending assignment")
    }

    /// The iteration `x_{k+1} = Φ(x_k)` from `x_0 = init`, with cycle
    /// detection — `kpt_core::Kbp::solve_iterative` over BDD roots, where
    /// candidate comparison and cycle lookup are root-id operations.
    ///
    /// # Errors
    /// As for [`SymbolicKbp::iterate`].
    pub fn solve_iterative(&self, max_iterations: usize) -> Result<SymbolicOutcome, BddError> {
        let mut span = kpt_obs::span("bdd.solver.iterative");
        kpt_obs::counter!("bdd.solver.iterative.runs").incr();
        // Candidates are held as RAII handles so GC sweeps inside later
        // iterations can never free (or recycle the ids of) earlier ones —
        // cycle detection is still O(1) root comparison.
        let mut x = self.init();
        let mut seen: Vec<SymbolicPredicate> = vec![x.clone()];
        for k in 0..max_iterations {
            let next_root = self.iterate_root(x.root())?;
            let next = SymbolicPredicate::new(&self.space, next_root);
            if span.is_live() {
                // One progress event per eq. (25) iteration: the candidate
                // sizes stream out while the solve is still running.
                kpt_obs::event(
                    "bdd.solver.progress",
                    &[
                        ("iteration", (k + 1).into()),
                        ("candidate_states", next.count().into()),
                        ("converged", (next == x).into()),
                    ],
                );
            }
            if next == x {
                span.field("outcome", "converged");
                span.field("iterations", (k + 1) as u64);
                span.finish();
                return Ok(SymbolicOutcome::Converged {
                    solution: x,
                    iterations: k + 1,
                });
            }
            if let Some(pos) = seen.iter().position(|p| *p == next) {
                span.field("outcome", "cycle");
                span.field("period", (seen.len() - pos) as u64);
                span.finish();
                return Ok(SymbolicOutcome::Cycle {
                    period: seen.len() - pos,
                    entered_after: pos,
                });
            }
            seen.push(next.clone());
            x = next;
        }
        span.field("outcome", "inconclusive");
        span.field("iterations", max_iterations as u64);
        span.finish();
        Ok(SymbolicOutcome::Inconclusive {
            iterations: max_iterations,
        })
    }

    /// The translated relation of one named statement as a standalone
    /// [`SymbolicTransition`], with knowledge guards (if any) evaluated at
    /// the candidate invariant `x` — conjunctively partitioned exactly as
    /// the solver's fixpoints consume it. Benchmarks use this to compare
    /// the partitioned products against [`SymbolicTransition::monolithic`]
    /// on real registry models.
    ///
    /// # Errors
    /// [`BddError::Eval`] with `UnknownProcess` for an unknown statement
    /// name, plus any guard evaluation failure.
    pub fn statement_transition(
        &self,
        name: &str,
        x: &SymbolicPredicate,
    ) -> Result<SymbolicTransition, BddError> {
        let stmt = self
            .statements
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| {
                BddError::Eval(kpt_logic::EvalError::UnknownIdentifier(name.to_owned()))
            })?;
        // A knowledge operator must be built before the manager lock is
        // taken (its constructor locks too).
        let knowledge = match &stmt.guard {
            GuardSpec::Knowledge(_) => Some(SymbolicKnowledge::with_si(
                &self.space,
                self.views.clone(),
                x,
            )),
            GuardSpec::Static(_) => None,
        };
        let mut mgr = self.space.lock();
        let guard = match &stmt.guard {
            GuardSpec::Static(g) => *g,
            GuardSpec::Knowledge(f) => {
                let ctx = SymbolicEvalContext::new(&self.space)
                    .with_params(&stmt.params)
                    .with_knowledge(knowledge.as_ref().expect("built above"));
                ctx.eval_raw(&mut mgr, f)?
            }
        };
        let set = stmt.parts.clone();
        Ok(SymbolicTransition::from_parts(
            &self.space,
            &mut mgr,
            guard,
            true,
            set,
        ))
    }

    /// SI-cache behaviour (`bdd.kbp.si_cache.*` counters aggregate the
    /// same numbers process-wide).
    pub fn cache_stats(&self) -> kpt_obs::CacheStats {
        let cache = self.si_cache.lock().expect("SI cache poisoned");
        kpt_obs::CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            inserts: cache.inserts,
            entries: cache.map.len(),
        }
    }
}

impl Drop for SymbolicKbp {
    fn drop(&mut self) {
        // `BddSpace::release_root` tolerates a poisoned lock, so this never
        // panics in drop (the roots just leak).
        self.space.release_root(self.init);
        for stmt in &self.statements {
            if let GuardSpec::Static(g) = stmt.guard {
                self.space.release_root(g);
            }
            self.space.release_root(stmt.bad);
            let mut roots = Vec::new();
            stmt.parts.roots(&mut roots);
            for r in roots {
                self.space.release_root(r);
            }
        }
        if let Ok(cache) = self.si_cache.lock() {
            for (&k, &v) in cache.map.iter() {
                self.space.release_root(k);
                self.space.release_root(v);
            }
        }
    }
}

/// Translate one statement's guard and update.
fn translate_statement(
    space: &Arc<BddSpace>,
    mgr: &mut Manager,
    program: &Program,
    stmt: &kpt_unity::Statement,
) -> Result<SymStatement, BddError> {
    let st_space = program.space();
    let guard = match stmt.guard() {
        Guard::Always => GuardSpec::Static(space.domain_ok_cur()),
        Guard::Pred(p) => GuardSpec::Static(space.encode_explicit_raw(mgr, p)),
        Guard::Formula(f) => {
            if f.mentions_knowledge() {
                GuardSpec::Knowledge(f.clone())
            } else {
                let ctx = SymbolicEvalContext::new(space).with_params(stmt.params());
                GuardSpec::Static(ctx.eval_raw(mgr, f)?)
            }
        }
    };

    // Compile assignment right-hand sides exactly like
    // `kpt_unity::compile_statement` (same enum-label fallback against the
    // target's domain).
    let mut assigns: Vec<(VarId, CExpr)> = Vec::with_capacity(stmt.assignments().len());
    for (var_name, expr) in stmt.assignments() {
        let var = st_space.var(var_name)?;
        let ce = compile_assign_expr(space, stmt.params(), expr, var)
            .map_err(|name| BddError::Eval(kpt_logic::EvalError::UnknownIdentifier(name)))?;
        assigns.push((var, ce));
    }

    let needs_explicit = stmt.update_fn().is_some()
        || assigns.iter().any(|(_, ce)| {
            let mut support = VarSet::default();
            ce.support(&mut support);
            support
                .iter()
                .map(|v| st_space.domain(v).size())
                .try_fold(1u64, |acc, s| acc.checked_mul(s))
                .unwrap_or(u64::MAX)
                > SUPPORT_ENUM_MAX
        });

    let (parts, bad) = if needs_explicit {
        translate_update_explicit(space, mgr, stmt, &assigns)?
    } else {
        translate_update_symbolic(space, mgr, &assigns)
    };

    Ok(SymStatement {
        name: stmt.name().to_owned(),
        guard,
        parts,
        bad,
        assigns,
        params: stmt.params().clone(),
    })
}

/// The domain-constraint part both translations start from (skipped when
/// every bit pattern is valid).
fn domain_part(space: &Arc<BddSpace>, mgr: &mut Manager) -> Option<Part> {
    let st_space = space.space();
    let root = {
        let c = space.domain_ok_cur();
        let n = space.domain_ok_nxt();
        mgr.and(c, n)
    };
    if root == TRUE {
        return None;
    }
    let mut cur_supp = Vec::new();
    for v in st_space.vars() {
        let levels = space.var_cur_levels(v);
        let nbits = levels.len() as u32;
        if nbits > 0 && st_space.domain(v).size() != 1u64 << nbits {
            cur_supp.extend(levels);
        }
    }
    cur_supp.sort_unstable();
    let nxt_supp: Vec<u32> = cur_supp.iter().map(|&l| l + 1).collect();
    Some(Part {
        root,
        cur_supp,
        nxt_supp,
    })
}

/// Mirror of `kpt_unity`'s `compile_expr`: a whole-expression bare
/// identifier that is neither parameter nor variable resolves as an enum
/// label of the *target* variable's domain.
fn compile_assign_expr(
    space: &Arc<BddSpace>,
    params: &HashMap<String, i64>,
    expr: &kpt_logic::Expr,
    target: VarId,
) -> Result<CExpr, String> {
    let st_space = space.space();
    if let kpt_logic::Expr::Ident(name) = expr {
        if !params.contains_key(name) && st_space.var(name).is_err() {
            if let Some(code) = st_space.domain(target).label_code(name) {
                return Ok(CExpr::Const(code as i64));
            }
        }
    }
    compile_expr_inner(space, params, expr)
}

fn compile_expr_inner(
    space: &Arc<BddSpace>,
    params: &HashMap<String, i64>,
    expr: &kpt_logic::Expr,
) -> Result<CExpr, String> {
    match expr {
        kpt_logic::Expr::Const(n) => Ok(CExpr::Const(*n)),
        kpt_logic::Expr::Ident(name) => {
            if let Some(&v) = params.get(name) {
                Ok(CExpr::Const(v))
            } else if let Ok(var) = space.space().var(name) {
                Ok(CExpr::Var(var))
            } else {
                Err(name.clone())
            }
        }
        kpt_logic::Expr::Add(a, b) => Ok(CExpr::Add(
            Box::new(compile_expr_inner(space, params, a)?),
            Box::new(compile_expr_inner(space, params, b)?),
        )),
        kpt_logic::Expr::Sub(a, b) => Ok(CExpr::Sub(
            Box::new(compile_expr_inner(space, params, a)?),
            Box::new(compile_expr_inner(space, params, b)?),
        )),
    }
}

/// Symbolic update translation: per assignment, enumerate the support's
/// value combinations (never the full space). Duplicate targets follow
/// UNITY's in-order overwrite — the last assignment wins the relation,
/// every assignment contributes to the `bad` set. The result is a
/// conjunctive partition: domain part, one part per effective assignment,
/// one identity part per untouched variable.
fn translate_update_symbolic(
    space: &Arc<BddSpace>,
    mgr: &mut Manager,
    assigns: &[(VarId, CExpr)],
) -> (PartSet, NodeId) {
    let st_space = space.space();
    let mut bad = FALSE;
    let mut parts: Vec<Part> = Vec::new();
    parts.extend(domain_part(space, mgr));
    let mut assigned = vec![false; st_space.num_vars()];
    for (idx, (target, ce)) in assigns.iter().enumerate() {
        assigned[target.index()] = true;
        let effective = assigns[idx + 1..].iter().all(|(t, _)| t != target);
        let mut support_set = VarSet::default();
        ce.support(&mut support_set);
        let vars: Vec<VarId> = support_set.iter().collect();
        let combos: u64 = vars.iter().map(|v| st_space.domain(*v).size()).product();
        let mut values: HashMap<VarId, u64> = HashMap::new();
        let mut rel_t = FALSE;
        for combo in 0..combos {
            let mut rest = combo;
            for v in &vars {
                let size = st_space.domain(*v).size();
                values.insert(*v, rest % size);
                rest /= size;
            }
            let out = ce.eval(&values);
            let mut cube = TRUE;
            for v in vars.iter().rev() {
                let c = space.value_cube(mgr, *v, values[v], false);
                cube = mgr.and(cube, c);
            }
            if out < 0 || !st_space.domain(*target).contains(out as u64) {
                bad = mgr.or(bad, cube);
            } else if effective {
                let tgt = space.value_cube(mgr, *target, out as u64, true);
                let pair = mgr.and(cube, tgt);
                rel_t = mgr.or(rel_t, pair);
            }
        }
        if effective {
            let mut cur_supp: Vec<u32> =
                vars.iter().flat_map(|v| space.var_cur_levels(*v)).collect();
            cur_supp.sort_unstable();
            cur_supp.dedup();
            let nxt_supp: Vec<u32> = space
                .var_cur_levels(*target)
                .into_iter()
                .map(|l| l + 1)
                .collect();
            parts.push(Part {
                root: rel_t,
                cur_supp,
                nxt_supp,
            });
        }
    }
    for v in st_space.vars() {
        if assigned[v.index()] {
            continue;
        }
        let levels = space.var_cur_levels(v);
        if levels.is_empty() {
            continue;
        }
        let mut same_all = TRUE;
        for &level in levels.iter().rev() {
            let c = mgr.literal(level);
            let n = mgr.literal(level + 1);
            let same = mgr.iff(c, n);
            same_all = mgr.and(same_all, same);
        }
        let nxt_supp: Vec<u32> = levels.iter().map(|&l| l + 1).collect();
        parts.push(Part {
            root: same_all,
            cur_supp: levels,
            nxt_supp,
        });
    }
    (PartSet::new(space, parts), bad)
}

/// Explicit fallback for opaque `update_with` closures (or oversized
/// supports): sweep every state once, building pair cubes. Bounded by
/// [`OPAQUE_ENUM_MAX`]. The result is a single full-support part — there
/// is no structure to partition along.
fn translate_update_explicit(
    space: &Arc<BddSpace>,
    mgr: &mut Manager,
    stmt: &kpt_unity::Statement,
    assigns: &[(VarId, CExpr)],
) -> Result<(PartSet, NodeId), BddError> {
    let st_space = space.space();
    let n = st_space.num_states();
    if n > OPAQUE_ENUM_MAX {
        return Err(BddError::OpaqueUpdateTooLarge {
            statement: stmt.name().to_owned(),
            states: n,
            limit: OPAQUE_ENUM_MAX,
        });
    }
    let mut bad_states = Vec::new();
    let mut pairs = Vec::with_capacity(n as usize);
    's: for s in 0..n {
        let mut next = s;
        for (var, ce) in assigns {
            let v = ce.eval_state(st_space, s);
            if v < 0 || !st_space.domain(*var).contains(v as u64) {
                bad_states.push(s);
                continue 's;
            }
            next = st_space.with_value(next, *var, v as u64);
        }
        if let Some(f) = stmt.update_fn() {
            next = f(st_space, next);
            debug_assert!(next < n, "update function escaped the state space");
        }
        pairs.push(space.pair_cube(mgr, s, next));
    }
    let upd_rel = or_tree(mgr, pairs);
    let bad_cubes = bad_states
        .into_iter()
        .map(|s| space.state_cube(mgr, s, false))
        .collect();
    let bad = or_tree(mgr, bad_cubes);
    let part = Part {
        root: upd_rel,
        cur_supp: space.cur_levels().to_vec(),
        nxt_supp: space.nxt_levels().to_vec(),
    };
    Ok((PartSet::new(space, vec![part]), bad))
}

fn or_tree(mgr: &mut Manager, mut layer: Vec<NodeId>) -> NodeId {
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    mgr.or(c[0], c[1])
                } else {
                    c[0]
                }
            })
            .collect();
    }
    layer.first().copied().unwrap_or(FALSE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpt_core::{IterativeOutcome, Kbp};
    use kpt_state::StateSpace;
    use kpt_unity::{Program, Statement};

    /// A one-process knowledge program small enough to cross-check against
    /// the explicit solver.
    fn knowledge_program() -> Program {
        let space = StateSpace::builder()
            .nat_var("i", 4)
            .unwrap()
            .bool_var("done")
            .unwrap()
            .build()
            .unwrap();
        Program::builder("kbp-small", &space)
            .init_str("i = 0 && !done")
            .unwrap()
            .process("P", ["i"])
            .unwrap()
            .statement(
                Statement::new("inc")
                    .guard_str("i < 3")
                    .unwrap()
                    .assign_str("i", "i + 1")
                    .unwrap(),
            )
            .statement(
                Statement::new("finish")
                    .guard_str("K{P}(i >= 2)")
                    .unwrap()
                    .assign_str("done", "1")
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn bounded_iterate_trips_tiny_budgets_and_retries_clean() {
        let program = knowledge_program();
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let init = symbolic.init();
        // A 1-node budget must trip, typed, without poisoning the memo…
        let err = symbolic.iterate_bounded(&init, 1).unwrap_err();
        assert!(matches!(
            err,
            BddError::NodeBudgetExceeded { budget: 1, .. }
        ));
        // …so the same candidate under a sane budget (and the unbounded
        // path) still agree.
        let bounded = symbolic.iterate_bounded(&init, 1 << 20).unwrap();
        let unbounded = symbolic.iterate(&init).unwrap();
        assert_eq!(bounded, unbounded);
    }

    #[test]
    fn symbolic_iteration_matches_explicit() {
        let program = knowledge_program();
        let explicit = Kbp::new(program.clone());
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let e = explicit.solve_iterative(16).unwrap();
        let s = symbolic.solve_iterative(16).unwrap();
        match (e, s) {
            (
                IterativeOutcome::Converged {
                    solution: es,
                    iterations: ei,
                },
                SymbolicOutcome::Converged {
                    solution: ss,
                    iterations: si,
                },
            ) => {
                assert_eq!(ei, si);
                assert_eq!(ss.to_explicit(), es);
            }
            (e, s) => panic!("outcomes diverge: explicit {e:?}, symbolic {s:?}"),
        }
    }

    #[test]
    fn iterate_is_memoized() {
        let program = knowledge_program();
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let x = symbolic.init();
        let a = symbolic.iterate(&x).unwrap();
        let before = symbolic.cache_stats();
        let b = symbolic.iterate(&x).unwrap();
        let after = symbolic.cache_stats();
        assert_eq!(a, b);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn statement_transitions_match_their_monolithic_form() {
        let program = knowledge_program();
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let x = symbolic.iterate(&symbolic.init()).unwrap();
        for name in ["inc", "finish"] {
            let t = symbolic.statement_transition(name, &x).unwrap();
            assert!(t.num_parts() > 1, "{name} should stay partitioned");
            let mono = t.monolithic();
            for mask in [0b0101u64, 0b0011, 0b1111] {
                let p = SymbolicPredicate::from_explicit(
                    symbolic.space(),
                    &kpt_state::Predicate::from_indices(
                        program.space(),
                        (0..8).filter(|s| mask >> s & 1 == 1),
                    ),
                );
                assert_eq!(t.sp(&p), mono.sp(&p), "{name} sp diverges");
                assert_eq!(t.wp(&p), mono.wp(&p), "{name} wp diverges");
            }
        }
        assert!(symbolic.statement_transition("nope", &x).is_err());
    }

    #[test]
    fn out_of_range_is_reported_like_unity() {
        let space = StateSpace::builder()
            .nat_var("i", 4)
            .unwrap()
            .build()
            .unwrap();
        let program = Program::builder("overflow", &space)
            .statement(Statement::new("inc").assign_str("i", "i + 1").unwrap())
            .build()
            .unwrap();
        let symbolic = SymbolicKbp::from_program(&program).unwrap();
        let err = symbolic.solve_iterative(4).unwrap_err();
        match err {
            BddError::UpdateOutOfRange {
                statement,
                var,
                value,
                ..
            } => {
                assert_eq!(statement, "inc");
                assert_eq!(var, "i");
                assert_eq!(value, 4);
            }
            e => panic!("unexpected error {e}"),
        }
        // The explicit pipeline rejects the same program the same way.
        assert!(program.compile().is_err());
    }
}
