//! A parameterized scenario zoo: the classic epistemic-protocol examples
//! as *textual* `.kpt` programs, loaded through the surface-syntax
//! frontend ([`kpt_unity::parse_program`]) rather than hand-built with
//! the Rust builder API.
//!
//! * [`muddy_children_kpt`] — the n-child muddy-children puzzle (§7's
//!   "cheating husbands" family), generated from a text template for
//!   2 ≤ n ≤ 6 and semantically identical to [`crate::muddy_children_n`]
//!   on the overlapping range;
//! * [`dining_cryptographers_kpt`] — Chaum's three-seat dining
//!   cryptographers with a knowledge-guarded verdict (anonymity);
//! * [`attacking_generals_kpt`] — the coordinated-attack scenario with a
//!   nested `K{G0}(K{G1}(plan))` guard;
//! * [`cache_coherence_kpt`] — a two-cache MSI-style protocol whose
//!   silent flush is a knowledge test;
//! * [`russian_cards_kpt`] — the (3,3,1) Russian-cards deal with Alice's
//!   Fano-plane announcement: Bob's knowledge-guarded step learns the
//!   deal, Cath provably learns nothing.
//!
//! [`zoo`] loads every scenario (muddy children at n = 3) together with
//! the lint verdict baked in for each — the `kpt_lint` registry and the
//! CI check assert exactly those codes.

use std::fmt::Write as _;
use std::sync::Arc;

use kpt_state::StateSpace;
use kpt_unity::{parse_program, UnityError};

use crate::kbp::Kbp;

/// The dining-cryptographers scenario (see the module docs).
pub fn dining_cryptographers_kpt() -> &'static str {
    include_str!("../models/dining_cryptographers.kpt")
}

/// The attacking-generals scenario (see the module docs).
pub fn attacking_generals_kpt() -> &'static str {
    include_str!("../models/attacking_generals.kpt")
}

/// The cache-coherence scenario (see the module docs).
pub fn cache_coherence_kpt() -> &'static str {
    include_str!("../models/cache_coherence.kpt")
}

/// The Russian-cards (3,3,1) scenario: Alice announces the seven Fano
/// lines, Bob's knowledge-guarded step fires exactly when he has deduced
/// the deal, and Cath — who sees only her own card and the public flags —
/// never learns the holder of any card (see the model's header comment).
pub fn russian_cards_kpt() -> &'static str {
    include_str!("../models/russian_cards.kpt")
}

/// The textual n-child muddy-children KBP (2 ≤ n ≤ 6): the same program
/// [`crate::muddy_children_n`] builds in Rust, written in the surface
/// syntax — children announce when they know their own status, the round
/// advances on public silence.
///
/// # Panics
/// Panics if `n` is outside `2..=6`.
pub fn muddy_children_kpt(n: usize) -> String {
    assert!((2..=6).contains(&n), "n out of the supported range 2..=6");
    let knows_own = |i: usize| format!("(K{{C{i}}}(mud{i}) \\/ K{{C{i}}}(~mud{i}))");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// The {n}-child muddy-children puzzle (generated template)."
    );
    let _ = writeln!(s, "program muddy_children_{n}");
    s.push_str("declare\n");
    for i in 0..n {
        let _ = writeln!(s, "  mud{i} : boolean");
    }
    for i in 0..n {
        let _ = writeln!(s, "  said{i} : boolean");
    }
    let _ = writeln!(s, "  round : nat<{}>", n + 1);
    s.push_str("processes\n");
    for i in 0..n {
        // Child i sees every forehead but its own, plus the public state.
        let vars: Vec<String> = (0..n)
            .filter(|&j| j != i)
            .map(|j| format!("mud{j}"))
            .chain((0..n).map(|j| format!("said{j}")))
            .chain(std::iter::once("round".to_owned()))
            .collect();
        let _ = writeln!(s, "  C{i} = {{{}}}", vars.join(", "));
    }
    s.push_str("init\n");
    let muddy: Vec<String> = (0..n).map(|i| format!("mud{i}")).collect();
    let _ = writeln!(s, "  ({})", muddy.join(" \\/ "));
    let silent: Vec<String> = (0..n).map(|i| format!("~said{i}")).collect();
    let _ = writeln!(s, "  /\\ {}", silent.join(" /\\ "));
    s.push_str("  /\\ round = 0\n");
    s.push_str("assign\n");
    for i in 0..n {
        let lead = if i == 0 { "  " } else { "  [] " };
        let _ = writeln!(
            s,
            "{lead}announce{i}: said{i} := 1 if ~said{i} /\\ {}",
            knows_own(i)
        );
    }
    let _ = writeln!(s, "  [] tick: round := round + 1 if round < {n}");
    for i in 0..n {
        let _ = writeln!(s, "       /\\ (said{i} \\/ ~{})", knows_own(i));
    }
    s
}

/// Parse a textual scenario and wrap it as a [`Kbp`].
///
/// # Errors
/// A spanned [`UnityError`] on malformed sources; render against the
/// input with [`UnityError::render`].
pub fn load_kpt(src: &str) -> Result<(Arc<StateSpace>, Kbp), UnityError> {
    let (space, program) = parse_program(src)?;
    Ok((space, Kbp::new(program)))
}

/// One zoo scenario: its registry name, its textual source, the loaded
/// KBP, and the exact lint codes the model is expected to produce.
pub struct ZooEntry {
    /// Registry name (also used by the `kpt_lint` bin and bench bins).
    pub name: &'static str,
    /// The `.kpt` source the entry was parsed from.
    pub source: String,
    /// The loaded knowledge-based protocol.
    pub kbp: Kbp,
    /// The exact diagnostic codes `kpt-lint` reports for this model.
    pub expected_lint: &'static [&'static str],
}

/// Load every zoo scenario (muddy children at n = 3).
///
/// # Errors
/// Propagates parse/elaboration errors (none for the in-tree sources —
/// each is pinned by a golden test).
pub fn zoo() -> Result<Vec<ZooEntry>, UnityError> {
    let entry = |name, source: String, expected_lint| -> Result<ZooEntry, UnityError> {
        let (_, kbp) = load_kpt(&source)?;
        Ok(ZooEntry {
            name,
            source,
            kbp,
            expected_lint,
        })
    };
    Ok(vec![
        entry(
            "zoo-muddy-children-3",
            muddy_children_kpt(3),
            &[] as &[&str],
        )?,
        entry(
            "zoo-dining-cryptographers",
            dining_cryptographers_kpt().to_owned(),
            &[],
        )?,
        entry(
            "zoo-attacking-generals",
            attacking_generals_kpt().to_owned(),
            &[],
        )?,
        // The two writers race for the bus and the knowledge-guarded
        // flush reacts to variables the protocol changes — both warnings
        // are real and deliberate (see the model's header comment). The
        // flush statements also form a genuine read/write dependency
        // cycle, so the syntactic KPT011 pass fires alongside the
        // symbolic KPT009.
        entry(
            "zoo-cache-coherence",
            cache_coherence_kpt().to_owned(),
            &["KPT008", "KPT009", "KPT011"],
        )?,
        entry("zoo-russian-cards", russian_cards_kpt().to_owned(), &[])?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kbp::IterativeOutcome;
    use crate::knowledge::KnowledgeOperator;
    use kpt_logic::parse_formula;
    use kpt_state::Predicate;

    fn solve(kbp: &Kbp) -> Predicate {
        match kbp.solve_iterative(64).unwrap() {
            IterativeOutcome::Converged { solution, .. } => {
                assert!(kbp.is_solution(&solution).unwrap());
                solution
            }
            other => panic!("zoo scenario must have a solution: {other:?}"),
        }
    }

    fn operator(kbp: &Kbp, solution: &Predicate) -> KnowledgeOperator {
        let views = kbp
            .program()
            .processes()
            .iter()
            .map(|p| (p.name().to_owned(), p.view()))
            .collect();
        KnowledgeOperator::with_si(kbp.program().space(), views, solution.clone()).unwrap()
    }

    fn eval(space: &Arc<StateSpace>, f: &str) -> Predicate {
        kpt_logic::EvalContext::new(space)
            .eval(&parse_formula(f).unwrap())
            .unwrap()
    }

    #[test]
    fn every_entry_loads_and_solves() {
        for e in zoo().unwrap() {
            let solution = solve(&e.kbp);
            assert!(!solution.is_false(), "{}", e.name);
        }
    }

    #[test]
    fn textual_muddy_children_matches_the_builder() {
        // The template and `muddy_children_n` are the same program: same
        // variable layout, same eq. (25) solution, state for state.
        for n in 2..=4 {
            let built = crate::muddy_children_n(n).unwrap();
            let (space, parsed) = load_kpt(&muddy_children_kpt(n)).unwrap();
            assert_eq!(space.num_states(), built.program().space().num_states());
            let b = solve(&built);
            let p = solve(&parsed);
            assert_eq!(
                b.iter().collect::<Vec<_>>(),
                p.iter().collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn dining_cryptographers_verdict_is_correct_and_anonymous() {
        let (space, kbp) = load_kpt(dining_cryptographers_kpt()).unwrap();
        let solution = solve(&kbp);
        let compiled = kbp.compile_at(&solution).unwrap();

        // A verdict is always reached…
        let decided = eval(&space, "verdict != open");
        assert!(compiled.leads_to_holds(&Predicate::tt(&space), &decided));
        // …and it is always the truth.
        let nobody = eval(&space, "~paid0 /\\ ~paid1 /\\ ~paid2");
        let nsa = eval(&space, "verdict = nsa");
        let payer = eval(&space, "verdict = payer");
        assert!(solution.and(&nsa).entails(&nobody));
        assert!(solution.and(&payer).entails(&nobody.negate()));

        // Anonymity: when a cryptographer paid and it wasn't C0, C0 knows
        // *that* a cryptographer paid but never *which one*.
        let op = operator(&kbp, &solution);
        let here = solution.and(&payer).and(&eval(&space, "~paid0"));
        assert!(!here.is_false());
        let k_some = op.knows("C0", &eval(&space, "paid1 \\/ paid2")).unwrap();
        assert!(here.entails(&k_some));
        for culprit in ["paid1", "paid2"] {
            let k_who = op.knows("C0", &eval(&space, culprit)).unwrap();
            assert!(here.and(&k_who).is_false(), "C0 must never learn {culprit}");
        }
    }

    #[test]
    fn attacking_generals_needs_the_acknowledgement() {
        let (space, kbp) = load_kpt(attacking_generals_kpt()).unwrap();
        let solution = solve(&kbp);

        // G1 attacks only informed, G0 attacks only acknowledged: the
        // nested knowledge guard is exactly the ack channel.
        assert!(solution
            .and(&eval(&space, "attack1"))
            .entails(&eval(&space, "msg")));
        assert!(solution
            .and(&eval(&space, "attack0"))
            .entails(&eval(&space, "ack")));
        // Both attacks are reachable — depth-2 knowledge is attainable…
        let both = solution.and(&eval(&space, "attack0 /\\ attack1"));
        assert!(!both.is_false());
        // …but a lost messenger strands the plan: no attack, ever.
        let compiled = kbp.compile_at(&solution).unwrap();
        let stranded = solution.and(&eval(&space, "lost /\\ ~attack0 /\\ ~attack1"));
        assert!(!stranded.is_false());
        assert!(compiled.stable(&stranded));
    }

    #[test]
    fn cache_coherence_is_coherent_and_flushes_on_knowledge() {
        let (space, kbp) = load_kpt(cache_coherence_kpt()).unwrap();
        let solution = solve(&kbp);

        // Coherence: never two modified copies; the bus wire is exact.
        assert!(solution
            .and(&eval(&space, "c0 = mod"))
            .entails(&eval(&space, "c1 = inv")));
        assert!(solution
            .and(&eval(&space, "c1 = mod"))
            .entails(&eval(&space, "c0 = inv")));
        let owned = eval(&space, "owned");
        let some_mod = eval(&space, "c0 = mod \\/ c1 = mod");
        assert_eq!(solution.and(&owned), solution.and(&some_mod));

        // The knowledge guard is *live*: the modified cache always knows
        // the peer is invalid, so the silent flush fires everywhere a
        // flush is wanted.
        let op = operator(&kbp, &solution);
        let k = op.knows("C0", &eval(&space, "c1 = inv")).unwrap();
        assert!(solution.and(&eval(&space, "c0 = mod")).entails(&k));
    }

    #[test]
    fn russian_cards_bob_learns_and_cath_learns_nothing() {
        let (space, kbp) = load_kpt(russian_cards_kpt()).unwrap();
        // 35 Alice hands × 4 consistent Cath cards, Bob's hand determined.
        assert_eq!(kbp.program().init().count(), 140);
        let solution = solve(&kbp);
        let compiled = kbp.compile_at(&solution).unwrap();
        let said = eval(&space, "said");
        let bknows = eval(&space, "bknows");

        // Once Alice's announcement is out, Bob eventually knows the deal.
        assert!(compiled.leads_to_holds(&said, &bknows));
        // `learn` fires on knowledge alone: announced but not-yet-learned
        // states exist, and every announced state already carries Bob's
        // knowledge of Alice's exact line.
        let fano: [[usize; 3]; 7] = [
            [0, 1, 2],
            [0, 3, 4],
            [0, 5, 6],
            [1, 3, 5],
            [1, 4, 6],
            [2, 3, 6],
            [2, 4, 5],
        ];
        let op = operator(&kbp, &solution);
        let mut bob_knows_some_line = Predicate::ff(&space);
        for line in fano {
            let f = format!("a{} /\\ a{} /\\ a{}", line[0], line[1], line[2]);
            bob_knows_some_line.or_assign(&op.knows("B", &eval(&space, &f)).unwrap());
        }
        let announced = solution.and(&said);
        assert!(!announced.is_false());
        assert!(announced.entails(&bob_knows_some_line));

        // Cath's ignorance: after the announcement she never learns who
        // holds any card she doesn't hold herself — neither an Alice card
        // nor a Bob card.
        for i in 0..7 {
            let not_cath = announced.and(&eval(&space, &format!("cc != {i}")));
            assert!(!not_cath.is_false());
            let k_alice = op.knows("C", &eval(&space, &format!("a{i}"))).unwrap();
            let k_bob = op.knows("C", &eval(&space, &format!("b{i}"))).unwrap();
            assert!(
                not_cath.and(&k_alice).is_false(),
                "Cath must never learn Alice holds card {i}"
            );
            assert!(
                not_cath.and(&k_bob).is_false(),
                "Cath must never learn Bob holds card {i}"
            );
        }
    }

    #[test]
    fn zoo_sources_round_trip_through_the_surface_parser() {
        // Golden property for each scenario: parse → display → parse is
        // the identity on the AST.
        let mut sources: Vec<String> = zoo().unwrap().into_iter().map(|e| e.source).collect();
        sources.extend((2..=6).map(muddy_children_kpt));
        for src in sources {
            let ast = kpt_logic::parse_program_ast(&src).unwrap();
            let printed = ast.to_string();
            let again = kpt_logic::parse_program_ast(&printed).unwrap();
            // The printed form is the canonical layout: printing again is
            // the identity (spans differ between the two parses, so the
            // comparison is on the canonical text).
            assert_eq!(again.to_string(), printed, "source:\n{src}");
        }
    }
}
