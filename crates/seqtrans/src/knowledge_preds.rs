//! Validation of the proposed knowledge predicates (50)–(51) against the
//! *actual* knowledge operator — §6.3 of the paper, experiments E7 and E8.
//!
//! The paper proposes
//!
//! ```text
//! K_R(x_k = α) : (j = k ∧ z' = (k, α)) ∨ (j > k ∧ w_k = α)     (50)
//! K_S K_R x_k  : (i = k ∧ z = k + 1) ∨ i > k                   (51)
//! ```
//!
//! and proves the supporting invariants (54), (61), (62) and stability
//! properties (55), (56). Because this reproduction computes `SI` and the
//! real `K` exactly, we can check both the paper's obligations and the
//! sharper claims of \[HZar\] Proposition 4.5:
//!
//! * the candidates *imply* the real knowledge (enough for correctness);
//! * with **no a-priori information** the candidates *equal* the real
//!   knowledge on reachable states;
//! * with a-priori information (§6.4 / footnote 3), equality **fails**
//!   while the implication — and the protocol's correctness — survive.

use kpt_core::KnowledgeOperator;
use kpt_state::Predicate;
use kpt_unity::CompiledProgram;

use crate::standard::StandardModel;

/// The real knowledge operator of a compiled standard model, with the
/// Sender/Receiver views.
#[must_use]
pub fn knowledge_operator(model: &StandardModel, compiled: &CompiledProgram) -> KnowledgeOperator {
    model.knowledge_operator(compiled)
}

/// The real `K_R(x_k = α)`.
#[must_use]
pub fn real_kr_x(model: &StandardModel, op: &KnowledgeOperator, k: u64, alpha: u64) -> Predicate {
    op.knows("Receiver", &model.x_elem(k as usize, alpha))
        .expect("Receiver is declared")
}

/// The real `K_R x_k = (∃α :: K_R(x_k = α))`.
#[must_use]
pub fn real_kr_x_any(model: &StandardModel, op: &KnowledgeOperator, k: u64) -> Predicate {
    let mut out = Predicate::ff(model.space());
    for alpha in 0..model.encoding().alphabet() as u64 {
        out = out.or(&real_kr_x(model, op, k, alpha));
    }
    out
}

/// The real `K_S K_R x_k`.
#[must_use]
pub fn real_ks_kr(model: &StandardModel, op: &KnowledgeOperator, k: u64) -> Predicate {
    op.knows("Sender", &real_kr_x_any(model, op, k))
        .expect("Sender is declared")
}

/// One row of the validation report: a numbered obligation and whether it
/// holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Human-readable identifier, e.g. `"(61) k=0 alpha=1"`.
    pub id: String,
    /// Whether the obligation holds on the model.
    pub holds: bool,
}

/// The complete §6.3 validation for a model (see module docs).
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Every checked obligation.
    pub obligations: Vec<Obligation>,
}

impl ValidationReport {
    /// Whether every obligation holds.
    pub fn all_hold(&self) -> bool {
        self.obligations.iter().all(|o| o.holds)
    }

    /// The ids of failing obligations.
    pub fn failures(&self) -> Vec<&str> {
        self.obligations
            .iter()
            .filter(|o| !o.holds)
            .map(|o| o.id.as_str())
            .collect()
    }

    fn push(&mut self, id: String, holds: bool) {
        self.obligations.push(Obligation { id, holds });
    }
}

/// Check the paper's §6.3 obligations — invariants (54), (61), (62),
/// stability (55), (56), and the soundness direction `candidate ⇒ K` for
/// (50) and (51) — on a compiled model.
#[must_use]
pub fn validate_soundness(model: &StandardModel, compiled: &CompiledProgram) -> ValidationReport {
    let l = model.encoding().len() as u64;
    let a = model.encoding().alphabet() as u64;
    let op = knowledge_operator(model, compiled);
    let mut report = ValidationReport {
        obligations: Vec::new(),
    };

    // (54): z ≥ k ⇒ j ≥ k, i.e. any ack in the slot is ≤ j.
    for k in 0..=l {
        let p = model
            .pred(move |s| s.z.is_some_and(|m| m >= k))
            .implies(&model.pred(move |s| s.j >= k));
        report.push(format!("(54) k={k}"), compiled.invariant(&p));
    }

    // (61): candidate (50) is truthful about x_k.
    for k in 0..l {
        for alpha in 0..a {
            let p = model
                .cand_kr_x(k, alpha)
                .implies(&model.x_elem(k as usize, alpha));
            report.push(format!("(61) k={k} alpha={alpha}"), compiled.invariant(&p));
        }
    }

    // (62)'s content: candidate (51) implies j > k (the receiver has
    // already delivered element k).
    for k in 0..l {
        let p = model.cand_ks_kr(k).implies(&model.j_gt(k));
        report.push(format!("(62) k={k}"), compiled.invariant(&p));
    }

    // (55): stable (i = k ∧ z = k+1) ∨ i > k.
    for k in 0..l {
        report.push(format!("(55) k={k}"), compiled.stable(&model.cand_ks_kr(k)));
    }

    // (56): stable z' = (k, α) ∨ (j > k ∧ w_k = α).
    for k in 0..l {
        for alpha in 0..a {
            let enc = model.encoding();
            let p = model.pred(move |s| {
                s.zp == Some((k, alpha))
                    || (s.j > k
                        && enc.w_len(s.w) as u64 > k
                        && enc.w_digit(s.w, k as usize) == alpha)
            });
            report.push(format!("(56) k={k} alpha={alpha}"), compiled.stable(&p));
        }
    }

    // candidate (50) ⇒ real K_R(x_k = α)  — the direction that suffices
    // for correctness (footnote 3: "follows from" suffices).
    for k in 0..l {
        for alpha in 0..a {
            let cand = model.cand_kr_x(k, alpha);
            let real = real_kr_x(model, &op, k, alpha);
            report.push(
                format!("(50)=>K k={k} alpha={alpha}"),
                compiled.invariant(&cand.implies(&real)),
            );
        }
    }

    // candidate (51) ⇒ real K_S K_R x_k.
    for k in 0..l {
        let cand = model.cand_ks_kr(k);
        let real = real_ks_kr(model, &op, k);
        report.push(
            format!("(51)=>K k={k}"),
            compiled.invariant(&cand.implies(&real)),
        );
    }

    // (Kbp-3): stable K_R(x_k = α) — knowledge, once attained, is not
    // forgotten. Checked with the REAL knowledge operator.
    for k in 0..l {
        for alpha in 0..a {
            let real = real_kr_x(model, &op, k, alpha);
            report.push(
                format!("(Kbp-3) k={k} alpha={alpha}"),
                compiled.stable(&compiled.si().and(&real)),
            );
        }
    }

    // (Kbp-4): stable K_S K_R x_k, with the real operator.
    for k in 0..l {
        let real = real_ks_kr(model, &op, k);
        report.push(
            format!("(Kbp-4) k={k}"),
            compiled.stable(&compiled.si().and(&real)),
        );
    }

    report
}

/// Check the *completeness* direction — the \[HZar\] Proposition-4.5
/// analogue: on reachable states the candidates coincide with the real
/// knowledge. This holds exactly when there is no a-priori information
/// about `x` (experiment E8 shows it failing under a-priori knowledge).
#[must_use]
pub fn validate_completeness(
    model: &StandardModel,
    compiled: &CompiledProgram,
) -> ValidationReport {
    let l = model.encoding().len() as u64;
    let a = model.encoding().alphabet() as u64;
    let op = knowledge_operator(model, compiled);
    let si = compiled.si();
    let mut report = ValidationReport {
        obligations: Vec::new(),
    };
    for k in 0..l {
        for alpha in 0..a {
            let cand = model.cand_kr_x(k, alpha);
            let real = real_kr_x(model, &op, k, alpha);
            report.push(
                format!("(50)=K k={k} alpha={alpha}"),
                si.and(&cand) == si.and(&real),
            );
        }
        let cand = model.cand_ks_kr(k);
        let real = real_ks_kr(model, &op, k);
        report.push(format!("(51)=K k={k}"), si.and(&cand) == si.and(&real));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::ModelOptions;

    fn model() -> (StandardModel, CompiledProgram) {
        let m = StandardModel::build(2, 2, ModelOptions::default()).unwrap();
        let c = m.compile().unwrap();
        (m, c)
    }

    #[test]
    fn soundness_obligations_all_hold() {
        // Experiment E7: every §6.3 obligation holds on the bounded model.
        let (m, c) = model();
        let report = validate_soundness(&m, &c);
        assert!(
            report.all_hold(),
            "failing obligations: {:?}",
            report.failures()
        );
        // Sanity: the report is substantial.
        assert!(report.obligations.len() >= 20);
    }

    #[test]
    fn completeness_holds_without_apriori_information() {
        // The Proposition-4.5 analogue: candidates ARE the knowledge.
        let (m, c) = model();
        let report = validate_completeness(&m, &c);
        assert!(
            report.all_hold(),
            "failing equalities: {:?}",
            report.failures()
        );
    }

    #[test]
    fn apriori_information_breaks_completeness_but_not_soundness() {
        // Experiment E8: fix x_0 = 'b' a priori.
        let m = StandardModel::build(
            2,
            2,
            ModelOptions {
                apriori_first: Some(1),
                slot_loss: false,
            },
        )
        .unwrap();
        let c = m.compile().unwrap();
        // Soundness (candidate ⇒ K, invariants, stability) survives:
        let sound = validate_soundness(&m, &c);
        assert!(sound.all_hold(), "{:?}", sound.failures());
        // ...but the candidates no longer capture all knowledge: the
        // receiver knows x_0 = 'b' from the start, candidate (50) doesn't
        // hold yet. The standard protocol is correct but NO LONGER an
        // instantiation of the knowledge-based protocol — §6.4's point.
        let complete = validate_completeness(&m, &c);
        assert!(!complete.all_hold());
        let failures = complete.failures();
        assert!(
            failures.iter().any(|f| f.contains("k=0")),
            "the a-priori element must be among the failures: {failures:?}"
        );
        // Concretely: at the initial state the receiver already knows
        // x_0 = b, while candidate (50) is false.
        let op = knowledge_operator(&m, &c);
        let init_state = c.init().witness().unwrap();
        assert!(real_kr_x(&m, &op, 0, 1).holds(init_state));
        assert!(!m.cand_kr_x(0, 1).holds(init_state));
    }

    #[test]
    fn receiver_never_knows_future_elements() {
        // Without a-priori info, K_R(x_k = α) is false whenever j ≤ k and
        // no message about k has arrived.
        let (m, c) = model();
        let op = knowledge_operator(&m, &c);
        let k1 = real_kr_x_any(&m, &op, 1);
        // At the initial states the receiver knows nothing about x_1.
        for st in c.init().iter() {
            assert!(!k1.holds(st));
        }
    }

    #[test]
    fn sender_learns_through_acks_only() {
        // K_S K_R x_k requires the ack k+1 (or having moved past k):
        // equivalently candidate (51). Spot-check: in any reachable state
        // with i = k and z ≠ ack(k+1), the sender does not know.
        let (m, c) = model();
        let op = knowledge_operator(&m, &c);
        for k in 0..2u64 {
            let real = real_ks_kr(&m, &op, k);
            let no_ack = m.pred(move |s| s.i == k && s.z != Some(k + 1));
            assert!(c.si().and(&no_ack).and(&real).is_false());
        }
    }
}
