//! Errors for UNITY program construction, compilation and proof.

use std::error::Error;
use std::fmt;

use kpt_logic::{EvalError, ParseError};
use kpt_state::SpaceError;

/// Errors arising while building or compiling a UNITY program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnityError {
    /// A state-space level problem (unknown variable, bad value, ...).
    Space(SpaceError),
    /// A concrete-syntax problem in a guard or assignment.
    Parse(ParseError),
    /// A semantic problem evaluating a guard or expression.
    Eval(EvalError),
    /// A program must have at least one statement (UNITY requires a
    /// non-empty statement set).
    NoStatements,
    /// A guard mentions a knowledge modality but the program was compiled
    /// as a *standard* program; use the knowledge-aware compilation path
    /// (this is exactly the paper's distinction between standard protocols
    /// and knowledge-based protocols, §4).
    KnowledgeGuard {
        /// Name of the offending statement.
        statement: String,
    },
    /// An assignment produced a value outside the target variable's domain
    /// in some guard-enabled state. The paper requires statements to be
    /// total; on bounded instances guards must keep updates in range.
    UpdateOutOfRange {
        /// Name of the offending statement.
        statement: String,
        /// Target variable.
        var: String,
        /// A state (rendered) where the update escapes the domain.
        state: String,
        /// The offending computed value.
        value: i64,
    },
    /// A process name was declared twice.
    DuplicateProcess(String),
    /// A process name was looked up but not declared.
    UnknownProcess(String),
    /// A statement name was declared twice.
    DuplicateStatement(String),
    /// An error anchored to a byte span of a textual program source —
    /// produced by [`crate::parse_program`] so elaboration failures point
    /// at the offending declaration, process, init formula, or statement.
    At {
        /// Byte offset of the offending construct in the source.
        offset: usize,
        /// Span length in bytes.
        len: usize,
        /// The underlying error.
        source: Box<UnityError>,
    },
}

impl UnityError {
    /// Anchor `e` to the byte span `offset..offset + len` of a program
    /// source (idempotent: an already-anchored error keeps its span).
    #[must_use]
    pub fn at(offset: usize, len: usize, e: impl Into<UnityError>) -> Self {
        match e.into() {
            spanned @ UnityError::At { .. } => spanned,
            inner => UnityError::At {
                offset,
                len,
                source: Box::new(inner),
            },
        }
    }

    /// Render the error against the program source it arose from: spanned
    /// errors ([`UnityError::At`], [`UnityError::Parse`]) get the caret
    /// layout of [`kpt_logic::render_span`]; everything else is the plain
    /// [`fmt::Display`] text.
    #[must_use]
    pub fn render(&self, src: &str) -> String {
        match self {
            UnityError::At {
                offset,
                len,
                source,
            } => kpt_logic::render_span(src, *offset, *len, &source.to_string()),
            UnityError::Parse(e) => e.render(src),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for UnityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnityError::Space(e) => write!(f, "{e}"),
            UnityError::Parse(e) => write!(f, "{e}"),
            UnityError::Eval(e) => write!(f, "{e}"),
            UnityError::NoStatements => {
                write!(f, "a unity program requires at least one statement")
            }
            UnityError::KnowledgeGuard { statement } => write!(
                f,
                "statement `{statement}` has a knowledge guard; compile with knowledge semantics"
            ),
            UnityError::UpdateOutOfRange {
                statement,
                var,
                state,
                value,
            } => write!(
                f,
                "statement `{statement}` assigns {value} to `{var}` in state {{{state}}}, outside its domain"
            ),
            UnityError::DuplicateProcess(name) => {
                write!(f, "process `{name}` declared twice")
            }
            UnityError::UnknownProcess(name) => write!(f, "unknown process `{name}`"),
            UnityError::DuplicateStatement(name) => {
                write!(f, "statement `{name}` declared twice")
            }
            UnityError::At {
                offset, source, ..
            } => write!(f, "{source} (at byte {offset})"),
        }
    }
}

impl Error for UnityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UnityError::Space(e) => Some(e),
            UnityError::Parse(e) => Some(e),
            UnityError::Eval(e) => Some(e),
            UnityError::At { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<SpaceError> for UnityError {
    fn from(e: SpaceError) -> Self {
        UnityError::Space(e)
    }
}

impl From<ParseError> for UnityError {
    fn from(e: ParseError) -> Self {
        UnityError::Parse(e)
    }
}

impl From<EvalError> for UnityError {
    fn from(e: EvalError) -> Self {
        UnityError::Eval(e)
    }
}

/// Errors from the certificate-producing proof kernel: a rule was applied
/// whose side conditions do not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProofError {
    /// A semantic side condition (an `[..]` judgement) failed.
    SideCondition {
        /// The rule being applied.
        rule: &'static str,
        /// Which condition failed.
        condition: String,
    },
    /// A premise theorem has the wrong shape for the rule.
    PremiseShape {
        /// The rule being applied.
        rule: &'static str,
        /// What was expected.
        expected: String,
    },
    /// A primitive proof obligation (checked against the program text)
    /// failed.
    Obligation {
        /// The rule being applied.
        rule: &'static str,
        /// Description of the failing obligation, with a witness state.
        detail: String,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::SideCondition { rule, condition } => {
                write!(f, "rule {rule}: side condition failed: {condition}")
            }
            ProofError::PremiseShape { rule, expected } => {
                write!(
                    f,
                    "rule {rule}: premise has wrong shape, expected {expected}"
                )
            }
            ProofError::Obligation { rule, detail } => {
                write!(f, "rule {rule}: obligation failed: {detail}")
            }
        }
    }
}

impl Error for ProofError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = UnityError::KnowledgeGuard {
            statement: "s0".into(),
        };
        assert!(e.to_string().contains("s0"));
        let e: UnityError = SpaceError::SpaceMismatch.into();
        assert!(Error::source(&e).is_some());
        let p = ProofError::SideCondition {
            rule: "psp",
            condition: "[q => r]".into(),
        };
        assert!(p.to_string().contains("psp"));
    }
}
