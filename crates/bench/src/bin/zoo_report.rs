//! Scenario-zoo report: wall-time of the textual frontend (parse +
//! elaborate) and of eq. (25) solving over every zoo scenario, with the
//! muddy-children template instantiated at n = 3..6. Writes
//! `BENCH_zoo.json` plus a per-scenario one-shot table on stdout.
//!
//! Usage: `cargo run --release -p kpt-bench --bin zoo_report`
//! (`KPT_BENCH_JSON` overrides the output path, `KPT_BENCH_FAST=1` runs a
//! shorter smoke configuration).

use std::time::Instant;

use kpt_bdd::{SymbolicKbp, SymbolicOutcome};
use kpt_core::{load_kpt, muddy_children_kpt, zoo, IterativeOutcome, Kbp};
use kpt_testkit::Criterion;

const MAX_ITERS: usize = 64;

/// Every benched scenario: the fixed zoo members plus the muddy-children
/// template at n = 3..6.
fn scenarios() -> Vec<(String, String)> {
    let mut cases: Vec<(String, String)> = zoo()
        .expect("zoo sources parse")
        .into_iter()
        .filter(|e| !e.name.contains("muddy"))
        .map(|e| {
            (
                e.name.trim_start_matches("zoo-").replace('-', "_"),
                e.source,
            )
        })
        .collect();
    for n in 3..=6 {
        cases.push((format!("muddy{n}"), muddy_children_kpt(n)));
    }
    cases
}

fn outcome_label(kbp: &Kbp) -> (String, u64) {
    match kbp.solve_iterative(MAX_ITERS).expect("explicit solve") {
        IterativeOutcome::Converged {
            solution,
            iterations,
        } => (format!("converged@{iterations}"), solution.count()),
        IterativeOutcome::Cycle {
            period,
            entered_after,
        } => (format!("cycle[{period}]@{entered_after}"), 0),
        IterativeOutcome::Inconclusive { .. } => ("inconclusive".to_owned(), 0),
    }
}

fn symbolic_solve(kbp: &Kbp) -> SymbolicOutcome {
    SymbolicKbp::from_program(kbp.program())
        .expect("symbolic translation")
        .solve_iterative(MAX_ITERS)
        .expect("symbolic solve")
}

fn main() {
    let (config, _fast) = kpt_bench::report_config("BENCH_zoo.json", 3, 10);
    let config_samples = config.sample_size;
    let mut c = Criterion::with_config(config);

    let cases = scenarios();
    let loaded: Vec<(String, String, Kbp)> = cases
        .into_iter()
        .map(|(label, src)| {
            let (_, kbp) = load_kpt(&src).expect("zoo scenario loads");
            (label, src, kbp)
        })
        .collect();

    {
        // The textual frontend alone: tokenize, parse, elaborate into a
        // checked `Program` + `Kbp` over a fresh state space.
        let mut group = c.benchmark_group("zoo_frontend");
        for (label, src, _) in &loaded {
            group.bench_function(format!("parse_{label}"), |b| {
                b.iter(|| load_kpt(src).expect("parse"))
            });
        }
    }
    {
        // Symbolic eq. (25) solving from the textual source's program.
        // The larger muddy instances pay seconds per run; trim samples.
        let mut group = c.benchmark_group("zoo_solve");
        for (label, _, kbp) in &loaded {
            group.sample_size(if matches!(label.as_str(), "muddy5" | "muddy6") {
                2
            } else {
                config_samples
            });
            group.bench_function(format!("solve_{label}"), |b| b.iter(|| symbolic_solve(kbp)));
        }
    }

    println!("\n== scenario zoo one-shot wall time (release) ==");
    println!(
        "{:<22} {:>9} {:>6} {:>6} {:>16} {:>9} {:>10} {:>10}",
        "scenario", "states", "stmts", "procs", "outcome", "|soln|", "parse ms", "solve ms"
    );
    for (label, src, kbp) in &loaded {
        let t0 = Instant::now();
        let _ = load_kpt(src).expect("parse");
        let parse_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let _ = symbolic_solve(kbp);
        let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (outcome, soln) = outcome_label(kbp);
        let program = kbp.program();
        println!(
            "{label:<22} {:>9} {:>6} {:>6} {outcome:>16} {soln:>9} {parse_ms:>10.3} {solve_ms:>10.3}",
            program.space().num_states(),
            program.statements().len(),
            program.processes().len(),
        );
    }

    c.final_summary();
}
