//! Kernel speedup summary: runs the optimized-vs-naive comparison cases
//! (word-parallel quantifiers, frontier `sst`, memoized knowledge) and
//! writes `BENCH_kernels.json` with median ns per case plus a speedup
//! table on stdout.
//!
//! Usage: `cargo run --release -p kpt-bench --bin kernels_summary`
//! (`KPT_BENCH_JSON` overrides the output path, `KPT_BENCH_FAST=1` runs a
//! shorter smoke configuration).

use kpt_state::{
    forall_set, forall_set_naive, forall_var, forall_var_naive, Predicate, StateSpace,
};
use kpt_testkit::Criterion;
use kpt_transformers::{
    sp_union, sst_frontier_with_stats, sst_with_stats, DetTransition, FnTransformer,
};

fn space_with_vars(nvars: usize, dom: u64) -> std::sync::Arc<StateSpace> {
    let mut b = StateSpace::builder();
    for i in 0..nvars {
        b = b.nat_var(&format!("v{i}"), dom).unwrap();
    }
    b.build().unwrap()
}

fn quantifier_cases(c: &mut Criterion) {
    let space = space_with_vars(8, 4); // 65536 states
    let p = Predicate::from_fn(&space, |s| s % 5 != 0);
    let mut group = c.benchmark_group("wcyl_quantify");
    for (label, vi) in [("stride1", 0usize), ("stride64", 3), ("stride4096", 6)] {
        let v = space.var(&format!("v{vi}")).unwrap();
        group.bench_function(format!("kernel_forall_var/{label}"), |b| {
            b.iter(|| forall_var(&p, v))
        });
        group.bench_function(format!("naive_forall_var/{label}"), |b| {
            b.iter(|| forall_var_naive(&p, v))
        });
    }
    let all = space.all_vars();
    group.bench_function("kernel_forall_set/65536states_allvars", |b| {
        b.iter(|| forall_set(&p, all))
    });
    group.bench_function("naive_forall_set/65536states_allvars", |b| {
        b.iter(|| forall_set_naive(&p, all))
    });
    group.finish();
}

fn fixpoint_cases(c: &mut Criterion) {
    let mut group = c.benchmark_group("si_fixpoint");
    group.sample_size(10);
    // Long chain i := i + 1: n Kleene rounds of O(n) work vs a frontier of
    // one state per round.
    let n = 1u64 << 12;
    let space = StateSpace::builder()
        .nat_var("i", n)
        .unwrap()
        .build()
        .unwrap();
    let t = DetTransition::from_fn(&space, move |i| if i + 1 < n { i + 1 } else { i });
    let init = Predicate::from_indices(&space, [0]);
    group.bench_function("frontier_long_chain/4096", |b| {
        b.iter(|| sst_frontier_with_stats(std::slice::from_ref(&t), &init))
    });
    let t2 = DetTransition::from_fn(&space, move |i| if i + 1 < n { i + 1 } else { i });
    let kleene = FnTransformer::new(&space, "SP", move |p: &Predicate| {
        sp_union(std::slice::from_ref(&t2), p)
    });
    group.bench_function("kleene_long_chain/4096", |b| {
        b.iter(|| sst_with_stats(&kleene, &init))
    });
    // Wide program: 8 bit-setting statements over 2^16 states.
    let mut sb = StateSpace::builder();
    for i in 0..16 {
        sb = sb.bool_var(&format!("b{i}")).unwrap();
    }
    let wide = sb.build().unwrap();
    let stmts: Vec<DetTransition> = (0..8u64)
        .map(|k| {
            let v = wide.var(&format!("b{k}")).unwrap();
            let sp2 = std::sync::Arc::clone(&wide);
            DetTransition::from_fn(&wide, move |s| sp2.with_value(s, v, 1))
        })
        .collect();
    let winit = Predicate::from_indices(&wide, [0]);
    group.bench_function("frontier_wide/65536states", |b| {
        b.iter(|| sst_frontier_with_stats(&stmts, &winit))
    });
    let stmts2: Vec<DetTransition> = (0..8u64)
        .map(|k| {
            let v = wide.var(&format!("b{k}")).unwrap();
            let sp2 = std::sync::Arc::clone(&wide);
            DetTransition::from_fn(&wide, move |s| sp2.with_value(s, v, 1))
        })
        .collect();
    let wkleene = FnTransformer::new(&wide, "SP", move |p: &Predicate| sp_union(&stmts2, p));
    group.bench_function("kleene_wide/65536states", |b| {
        b.iter(|| sst_with_stats(&wkleene, &winit))
    });
    group.finish();
}

fn knowledge_cases(c: &mut Criterion) {
    use kpt_core::KnowledgeOperator;
    use kpt_state::VarSet;
    let space = space_with_vars(8, 4);
    let views = vec![
        ("P0".to_owned(), VarSet::from_vars(space.vars().take(3))),
        (
            "P1".to_owned(),
            VarSet::from_vars(space.vars().skip(3).take(3)),
        ),
    ];
    let si = Predicate::from_fn(&space, |s| s % 7 != 0);
    let p = Predicate::from_fn(&space, |s| s % 3 == 1);
    let op = KnowledgeOperator::with_si(&space, views.clone(), si.clone()).unwrap();
    let mut group = c.benchmark_group("knowledge");
    group.bench_function("knows_cold/65536states", |b| {
        b.iter(|| {
            // A fresh context every iteration: the unmemoized path.
            let cold = KnowledgeOperator::with_si(&space, views.clone(), si.clone()).unwrap();
            cold.knows("P1", &p).unwrap()
        })
    });
    let _ = op.knows("P1", &p).unwrap();
    group.bench_function("knows_warm/65536states", |b| {
        b.iter(|| op.knows("P1", &p).unwrap())
    });
    group.finish();
}

fn parallel_cases(c: &mut Criterion) {
    use kpt_core::{Kbp, KnowledgeContext};
    use kpt_state::VarSet;
    use kpt_unity::{Program, Statement};

    let mut group = c.benchmark_group("parallel_pool");
    group.sample_size(10);

    // KBP exhaustive search: 2^8 candidate invariants, each needing a
    // knowledge-guard compilation plus an SI fixpoint. A fresh `Kbp` per
    // iteration defeats the candidate ↦ SI memo, so the pool fan-out (not
    // the cache) is what's measured.
    let space = StateSpace::builder()
        .nat_var("i", 9)
        .unwrap()
        .build()
        .unwrap();
    let make_kbp = || {
        Kbp::new(
            Program::builder("bench-kbp", &space)
                .init_str("i = 0")
                .unwrap()
                .process("P", [] as [&str; 0])
                .unwrap()
                .statement(
                    Statement::new("step")
                        .guard_str("i < 8 /\\ ~K{P}(i > 6)")
                        .unwrap()
                        .assign_str("i", "i + 1")
                        .unwrap(),
                )
                .build()
                .unwrap(),
        )
    };
    // Note: at 256 candidates `solve_exhaustive` now applies its
    // auto-serial cutoff (the fan-out overhead exceeded the win — measured
    // flat, par ≈ serial, before the cutoff), so this pair documents the
    // cutoff rather than pool scaling.
    group.bench_function("solve_exhaustive_par/256candidates", |b| {
        b.iter(|| make_kbp().solve_exhaustive(16).unwrap())
    });
    group.bench_function("solve_exhaustive_serial/256candidates", |b| {
        b.iter(|| make_kbp().solve_exhaustive_serial(16).unwrap())
    });

    // Scaling case above the cutoff: 2^12 = 4096 candidates, large enough
    // for the pool fan-out to amortise thread spawn on multicore hosts.
    let big_space = StateSpace::builder()
        .nat_var("i", 13)
        .unwrap()
        .build()
        .unwrap();
    let make_big_kbp = || {
        Kbp::new(
            Program::builder("bench-kbp-big", &big_space)
                .init_str("i = 0")
                .unwrap()
                .process("P", [] as [&str; 0])
                .unwrap()
                .statement(
                    Statement::new("step")
                        .guard_str("i < 12 /\\ ~K{P}(i > 10)")
                        .unwrap()
                        .assign_str("i", "i + 1")
                        .unwrap(),
                )
                .build()
                .unwrap(),
        )
    };
    group.bench_function("solve_exhaustive_par/4096candidates", |b| {
        b.iter(|| make_big_kbp().solve_exhaustive(16).unwrap())
    });
    group.bench_function("solve_exhaustive_serial/4096candidates", |b| {
        b.iter(|| make_big_kbp().solve_exhaustive_serial(16).unwrap())
    });

    // Batch knowledge: eight distinct views over 65536 states, fresh memo
    // per iteration so every `K_i p` sweep is actually computed.
    let kspace = space_with_vars(8, 4);
    let views: Vec<(String, VarSet)> = (0..8)
        .map(|i| {
            (
                format!("P{i}"),
                VarSet::from_vars(kspace.vars().skip(i).take(3)),
            )
        })
        .collect();
    let si = Predicate::from_fn(&kspace, |s| s % 7 != 0);
    let p = Predicate::from_fn(&kspace, |s| s % 3 == 1);
    group.bench_function("knows_all_par/8views_65536states", |b| {
        b.iter(|| {
            KnowledgeContext::new(&kspace, views.clone(), si.clone())
                .unwrap()
                .knows_all(&p)
        })
    });
    group.bench_function("knows_all_serial/8views_65536states", |b| {
        b.iter(|| {
            let ctx = KnowledgeContext::new(&kspace, views.clone(), si.clone()).unwrap();
            views
                .iter()
                .map(|(_, v)| ctx.knows_view(*v, &p))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn main() {
    let (config, _fast) = kpt_bench::report_config("BENCH_kernels.json", 10, 20);
    let mut c = Criterion::with_config(config);
    quantifier_cases(&mut c);
    fixpoint_cases(&mut c);
    knowledge_cases(&mut c);
    parallel_cases(&mut c);

    // Speedup table: pair `kernel_*`/`naive_*`, `frontier_*`/`kleene_*`,
    // `*_warm`/`*_cold` cases within each group.
    println!("\n== speedups (naive median / optimized median) ==");
    let results = c.results().to_vec();
    let find = |name: &str| {
        results
            .iter()
            .find(|r| format!("{}/{}", r.group, r.case).contains(name))
            .map(|r| r.median_ns)
    };
    let pairs = [
        ("kernel_forall_var/stride1", "naive_forall_var/stride1"),
        ("kernel_forall_var/stride64", "naive_forall_var/stride64"),
        (
            "kernel_forall_var/stride4096",
            "naive_forall_var/stride4096",
        ),
        ("kernel_forall_set", "naive_forall_set"),
        ("frontier_long_chain", "kleene_long_chain"),
        ("frontier_wide", "kleene_wide"),
        ("knows_warm", "knows_cold"),
        (
            "solve_exhaustive_par/256candidates",
            "solve_exhaustive_serial/256candidates",
        ),
        (
            "solve_exhaustive_par/4096candidates",
            "solve_exhaustive_serial/4096candidates",
        ),
        ("knows_all_par", "knows_all_serial"),
    ];
    for (opt, naive) in pairs {
        if let (Some(o), Some(n)) = (find(opt), find(naive)) {
            println!("{:<44} {:>8.1}x", format!("{naive} vs {opt}"), n / o);
        }
    }
    c.final_summary();
}
