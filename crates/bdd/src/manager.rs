//! The ROBDD node manager: hash-consed unique table with mark-and-sweep
//! garbage collection, memoized `ite`, an `and_exists` relational-product
//! kernel, dynamic variable reordering by sifting, quantification, level
//! renaming, and satisfying-assignment counting.
//!
//! Nodes are reduced, ordered BDD nodes over abstract *levels* (`u32`);
//! [`crate::BddSpace`] decides what a level means (which bit of which
//! program variable, current or next state). Terminals are the constants
//! `FALSE` (node 0) and `TRUE` (node 1). There are no complement edges:
//! negation is an ordinary `ite` traversal, which keeps every node
//! canonical under one representation and the code auditable.
//!
//! # Levels versus positions
//!
//! A level is a variable *identity*; where that level sits in the branching
//! order is its *position* (`pos_of` / `level_at`). With a fixed order the
//! two coincide; dynamic reordering by sifting permutes positions while
//! levels — and therefore every `NodeId` already handed out — keep their
//! meaning. Reordering never changes which boolean function a node denotes,
//! so external memos keyed by `NodeId` survive a sift untouched.
//!
//! # Garbage collection and root handles
//!
//! Nodes are reference-counted: every parent→child edge holds one count,
//! and external owners (predicates, relations, the space's own domain and
//! identity BDDs) hold *root* counts via [`Manager::add_root`] /
//! [`Manager::release_root`] — RAII handles at the `SymbolicPredicate` /
//! `SymbolicTransition` layer. A mark-and-sweep pass frees every node with
//! no count, returning its slot to a free list for reuse. Live `NodeId`s
//! are deliberately *stable* across a sweep (slots are recycled, never
//! renumbered): root-id equality stays canonical for the lifetime of the
//! space — two live predicates over the same space are semantically equal
//! iff their root ids are equal — which is what gives fixpoint convergence
//! checks and KBP cycle detection their O(1) comparisons.
//!
//! Sweeps and sifts run only at explicit *safe points*
//! ([`Manager::checkpoint`]), with in-flight intermediate results passed as
//! temporary roots; no recursion is ever live across a collection.
//!
//! The `ite` memo is invalidated GC-aware: a sweep purges exactly the
//! entries that mention a freed node (the survivors are still canonical),
//! and bumps an epoch counter so external memos holding unrooted ids
//! (the knowledge memo, the KBP SI cache) can drop stale entries lazily.
//! The workspace's clear-on-full convention (see `KnowledgeContext` in
//! `kpt-core`) is kept only as a capacity backstop, and the churn stays
//! observable through the `bdd.ite.cache.*` counters.

use std::collections::HashMap;

/// Index of a node in the manager's node table.
pub(crate) type NodeId = u32;

/// The constant-false terminal.
pub(crate) const FALSE: NodeId = 0;

/// The constant-true terminal.
pub(crate) const TRUE: NodeId = 1;

/// Level assigned to terminals: below every real level.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// Level marking a freed slot awaiting reuse.
const FREE_LEVEL: u32 = u32::MAX - 1;

/// Reference count pinning a node forever (the terminals).
const PINNED: u32 = u32::MAX;

/// Upper bound on memoized `ite` triples before a clear-on-full eviction
/// (a memory backstop; the primary invalidation is the GC purge).
const ITE_CACHE_CAP: usize = 1 << 20;

/// One internal BDD node: branch on `level`, `lo` when the level's bit is
/// 0, `hi` when it is 1. Children always sit at strictly greater
/// *positions* in the current order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    level: u32,
    lo: NodeId,
    hi: NodeId,
}

/// When and how the manager garbage-collects dead nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Never collect: the node table only grows (the pre-GC engine).
    Disabled,
    /// Sweep at safe points once the table holds at least `min_nodes`
    /// internal nodes and at least `dead_percent`% of them are dead.
    OnGrowth {
        /// Minimum allocated internal nodes before any sweep runs.
        min_nodes: usize,
        /// Minimum dead fraction, in percent, that triggers a sweep.
        dead_percent: u8,
    },
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy::OnGrowth {
            min_nodes: 1 << 16,
            dead_percent: 25,
        }
    }
}

/// When the manager dynamically reorders variables. Sifting is
/// deterministic for a given policy and operation sequence: triggers fire
/// on exact live-node counts and the pass scans groups in a fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderPolicy {
    /// Keep the declaration order (the pre-reordering engine).
    #[default]
    Disabled,
    /// Run a sifting pass at the next safe point after the live node count
    /// reaches `trigger_nodes`; re-arm at twice the post-sift size. A
    /// group's sweep aborts early once the table grows past
    /// `max_growth_percent`% over the best size seen for that group.
    SiftOnGrowth {
        /// Live-node count that arms the next sifting pass.
        trigger_nodes: usize,
        /// Per-group growth tolerance while sifting, in percent.
        max_growth_percent: u32,
    },
}

/// Knobs for a [`crate::BddSpace`]'s manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddConfig {
    /// Garbage-collection policy.
    pub gc: GcPolicy,
    /// Dynamic variable-reordering policy.
    pub reorder: ReorderPolicy,
}

impl BddConfig {
    /// The PR-4 era engine: grow-only table, fixed order. Differential
    /// suites pin the optimised configurations against this one.
    #[must_use]
    pub fn serial() -> Self {
        BddConfig {
            gc: GcPolicy::Disabled,
            reorder: ReorderPolicy::Disabled,
        }
    }
}

/// Garbage-collection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Completed sweep passes.
    pub runs: u64,
    /// Nodes freed across all sweeps.
    pub freed: u64,
    /// Incremented by every sweep that freed at least one node; external
    /// memos holding unrooted ids compare epochs to drop stale entries.
    pub epoch: u64,
}

/// Dynamic-reordering counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Completed sifting passes.
    pub runs: u64,
    /// Adjacent level swaps performed across all passes.
    pub swaps: u64,
}

/// The hash-consing ROBDD manager.
#[derive(Debug)]
pub(crate) struct Manager {
    nodes: Vec<Node>,
    /// Parallel to `nodes`: parent-edge + external-root reference counts.
    rc: Vec<u32>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    /// Freed slots awaiting reuse.
    free: Vec<NodeId>,
    /// Allocated internal nodes with `rc == 0` (sweepable garbage).
    dead: usize,
    /// Position of each level in the branching order (indexed by level).
    pos_of: Vec<u32>,
    /// Level at each position (inverse of `pos_of`).
    level_at: Vec<u32>,
    /// Per-level node lists, maintained lazily and only during a sifting
    /// pass (`in_sift`); rebuilt from the table at the start of each pass.
    level_nodes: Vec<Vec<NodeId>>,
    in_sift: bool,
    gc: GcPolicy,
    reorder: ReorderPolicy,
    next_reorder_at: usize,
    gc_runs: u64,
    gc_freed: u64,
    gc_epoch: u64,
    reorder_runs: u64,
    reorder_swaps: u64,
    /// High-water mark of allocated internal nodes (live + dead).
    peak_nodes: usize,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
    ite_hits: u64,
    ite_misses: u64,
    ite_evictions: u64,
    ite_inserts: u64,
}

impl Manager {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_config(BddConfig::default())
    }

    pub(crate) fn with_config(config: BddConfig) -> Self {
        let next_reorder_at = match config.reorder {
            ReorderPolicy::Disabled => usize::MAX,
            ReorderPolicy::SiftOnGrowth { trigger_nodes, .. } => trigger_nodes,
        };
        Manager {
            // Terminal sentinels; their level sorts below every real node.
            nodes: vec![
                Node {
                    level: TERMINAL_LEVEL,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    level: TERMINAL_LEVEL,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            rc: vec![PINNED, PINNED],
            unique: HashMap::new(),
            free: Vec::new(),
            dead: 0,
            pos_of: Vec::new(),
            level_at: Vec::new(),
            level_nodes: Vec::new(),
            in_sift: false,
            gc: config.gc,
            reorder: config.reorder,
            next_reorder_at,
            gc_runs: 0,
            gc_freed: 0,
            gc_epoch: 0,
            reorder_runs: 0,
            reorder_swaps: 0,
            peak_nodes: 0,
            ite_cache: HashMap::new(),
            ite_hits: 0,
            ite_misses: 0,
            ite_evictions: 0,
            ite_inserts: 0,
        }
    }

    /// Nodes currently allocated (terminals included, freed slots not).
    pub(crate) fn num_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Allocated internal nodes: live + dead, terminals and freed slots
    /// excluded. This is the memory-relevant table occupancy that node
    /// budgets and the peak counter are measured in.
    pub(crate) fn internal_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    /// Internal nodes reachable from some root (excludes sweepable dead).
    pub(crate) fn live_nodes(&self) -> usize {
        self.internal_nodes() - self.dead
    }

    /// High-water mark of [`Manager::internal_nodes`].
    pub(crate) fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    pub(crate) fn gc_stats(&self) -> GcStats {
        GcStats {
            runs: self.gc_runs,
            freed: self.gc_freed,
            epoch: self.gc_epoch,
        }
    }

    pub(crate) fn reorder_stats(&self) -> ReorderStats {
        ReorderStats {
            runs: self.reorder_runs,
            swaps: self.reorder_swaps,
        }
    }

    /// Current GC epoch; bumped by every sweep that freed a node.
    pub(crate) fn epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// `(hits, misses, evictions, inserts, entries)` of the `ite` memo.
    /// `inserts` counts lifetime insertions, so hit-rate reporting stays
    /// meaningful after clear-on-full or GC purges shrink `entries`.
    pub(crate) fn ite_cache_stats(&self) -> (u64, u64, u64, u64, usize) {
        (
            self.ite_hits,
            self.ite_misses,
            self.ite_evictions,
            self.ite_inserts,
            self.ite_cache.len(),
        )
    }

    /// Make the first `n` levels known to the order (identity positions).
    pub(crate) fn register_levels(&mut self, n: usize) {
        self.ensure_level(n.saturating_sub(1) as u32);
    }

    fn ensure_level(&mut self, level: u32) {
        let want = level as usize + 1;
        while self.pos_of.len() < want {
            let next = u32::try_from(self.pos_of.len()).expect("level count overflow");
            self.pos_of.push(next);
            self.level_at.push(next);
            self.level_nodes.push(Vec::new());
        }
    }

    #[inline]
    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n as usize].level
    }

    /// Position of a level in the branching order. Levels never registered
    /// sit past every registered one, in identity order (registered
    /// positions all lie below `pos_of.len()`, so this cannot collide).
    #[inline]
    fn pos(&self, level: u32) -> u32 {
        self.pos_of.get(level as usize).copied().unwrap_or(level)
    }

    /// Position of a node's level; terminals sort below everything.
    #[inline]
    fn top_pos(&self, n: NodeId) -> u32 {
        if n <= TRUE {
            u32::MAX
        } else {
            self.pos(self.level(n))
        }
    }

    #[inline]
    fn node(&self, n: NodeId) -> Node {
        self.nodes[n as usize]
    }

    /// Increment `n`'s reference count. Counts are *exact*: only live
    /// parents and external roots hold references, so a `0 → 1` transition
    /// (resurrection) cascades — the node re-takes the child references a
    /// live node holds, reviving its whole subgraph.
    fn inc_rc(&mut self, n: NodeId) {
        if n <= TRUE || self.rc[n as usize] == PINNED {
            return;
        }
        self.rc[n as usize] += 1;
        if self.rc[n as usize] != 1 {
            return;
        }
        self.dead -= 1;
        let node = self.nodes[n as usize];
        let mut stack = vec![node.lo, node.hi];
        while let Some(c) = stack.pop() {
            if c <= TRUE || self.rc[c as usize] == PINNED {
                continue;
            }
            self.rc[c as usize] += 1;
            if self.rc[c as usize] == 1 {
                self.dead -= 1;
                let cn = self.nodes[c as usize];
                stack.push(cn.lo);
                stack.push(cn.hi);
            }
        }
    }

    /// Decrement `n`'s reference count; a `1 → 0` transition (death)
    /// cascades, releasing the child references the node held while live.
    /// Dead nodes stay allocated and hash-consed until a sweep, so they
    /// can be resurrected for free in the meantime.
    fn dec_rc(&mut self, n: NodeId) {
        if n <= TRUE || self.rc[n as usize] == PINNED {
            return;
        }
        debug_assert!(self.rc[n as usize] > 0, "refcount underflow");
        self.rc[n as usize] -= 1;
        if self.rc[n as usize] != 0 {
            return;
        }
        self.dead += 1;
        let node = self.nodes[n as usize];
        let mut stack = vec![node.lo, node.hi];
        while let Some(c) = stack.pop() {
            if c <= TRUE || self.rc[c as usize] == PINNED {
                continue;
            }
            debug_assert!(self.rc[c as usize] > 0, "refcount underflow");
            self.rc[c as usize] -= 1;
            if self.rc[c as usize] == 0 {
                self.dead += 1;
                let cn = self.nodes[c as usize];
                stack.push(cn.lo);
                stack.push(cn.hi);
            }
        }
    }

    /// Take an external root reference on `n` (RAII handles call this).
    pub(crate) fn add_root(&mut self, n: NodeId) {
        self.inc_rc(n);
    }

    /// Release an external root reference on `n`.
    pub(crate) fn release_root(&mut self, n: NodeId) {
        self.dec_rc(n);
    }

    /// Hash-consed node constructor; applies the ROBDD reduction rules.
    pub(crate) fn make_node(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        self.ensure_level(level);
        debug_assert!(
            self.pos(level) < self.top_pos(lo) && self.pos(level) < self.top_pos(hi),
            "order"
        );
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { level, lo, hi };
                self.rc[slot as usize] = 0;
                slot
            }
            None => {
                let id = u32::try_from(self.nodes.len()).expect("node table overflow");
                self.nodes.push(Node { level, lo, hi });
                self.rc.push(0);
                id
            }
        };
        // A fresh node is dead (and holds no child references — see
        // `inc_rc`) until a live parent or root claims it.
        self.dead += 1;
        self.unique.insert((level, lo, hi), id);
        if self.in_sift {
            self.level_nodes[level as usize].push(id);
        }
        let occupancy = self.internal_nodes();
        if occupancy > self.peak_nodes {
            self.peak_nodes = occupancy;
        }
        kpt_obs::counter!("bdd.nodes.allocated").incr();
        id
    }

    /// The positive literal of `level` (true iff the level's bit is 1).
    pub(crate) fn literal(&mut self, level: u32) -> NodeId {
        self.make_node(level, FALSE, TRUE)
    }

    /// Cofactor `n` with respect to `level` (whose position must be ≤ the
    /// position of `n`'s level).
    #[inline]
    fn cofactors(&self, n: NodeId, level: u32) -> (NodeId, NodeId) {
        let node = self.node(n);
        if node.level == level {
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    /// Memoized if-then-else: the single apply operator every boolean
    /// connective reduces to.
    pub(crate) fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal and absorption cases.
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        // ite(f, f, h) = f ∨ h and ite(f, g, f) = f ∧ g: normalize so the
        // cache sees one key per function.
        let g = if g == f { TRUE } else { g };
        let h = if h == f { FALSE } else { h };
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.ite_hits += 1;
            kpt_obs::counter!("bdd.ite.cache.hits").incr();
            return r;
        }
        self.ite_misses += 1;
        kpt_obs::counter!("bdd.ite.cache.misses").incr();
        let p = self.top_pos(f).min(self.top_pos(g)).min(self.top_pos(h));
        let level = self.level_at[p as usize];
        let (f0, f1) = self.cofactors(f, level);
        let (g0, g1) = self.cofactors(g, level);
        let (h0, h1) = self.cofactors(h, level);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.make_node(level, lo, hi);
        if self.ite_cache.len() >= ITE_CACHE_CAP {
            self.ite_cache.clear();
            self.ite_evictions += 1;
            kpt_obs::counter!("bdd.ite.cache.evictions").incr();
        }
        self.ite_inserts += 1;
        self.ite_cache.insert((f, g, h), r);
        r
    }

    pub(crate) fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, b, FALSE)
    }

    pub(crate) fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, TRUE, b)
    }

    pub(crate) fn not(&mut self, a: NodeId) -> NodeId {
        self.ite(a, FALSE, TRUE)
    }

    pub(crate) fn implies(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, b, TRUE)
    }

    pub(crate) fn iff(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.not(b);
        self.ite(a, b, nb)
    }

    /// Existential quantification of every level in `levels` (sorted
    /// ascending by level id). Memoized per call: the level set is fixed
    /// for the whole recursion, so the memo key is just the node.
    pub(crate) fn exists(&mut self, n: NodeId, levels: &[u32]) -> NodeId {
        if levels.is_empty() {
            return n;
        }
        debug_assert!(levels.windows(2).all(|w| w[0] < w[1]), "sorted levels");
        for &l in levels {
            self.ensure_level(l);
        }
        let max_pos = levels.iter().map(|&l| self.pos(l)).max().expect("nonempty");
        let mut memo = HashMap::new();
        self.exists_rec(n, levels, max_pos, &mut memo)
    }

    fn exists_rec(
        &mut self,
        n: NodeId,
        levels: &[u32],
        max_pos: u32,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if self.top_pos(n) > max_pos {
            // All quantified levels sit above this subgraph in the order.
            return n;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let node = self.node(n);
        let lo = self.exists_rec(node.lo, levels, max_pos, memo);
        let hi = self.exists_rec(node.hi, levels, max_pos, memo);
        let r = if levels.binary_search(&node.level).is_ok() {
            self.or(lo, hi)
        } else {
            self.make_node(node.level, lo, hi)
        };
        memo.insert(n, r);
        r
    }

    /// Universal quantification: `∀L. n = ¬∃L. ¬n`.
    pub(crate) fn forall(&mut self, n: NodeId, levels: &[u32]) -> NodeId {
        let neg = self.not(n);
        let ex = self.exists(neg, levels);
        self.not(ex)
    }

    /// The relational-product kernel: `∃levels. f ∧ g` in one traversal,
    /// without materialising the conjunction. Quantified branches exit
    /// early on `TRUE`, which is what makes early-quantified partitioned
    /// image computation cheaper than `and` followed by `exists`.
    pub(crate) fn and_exists(&mut self, f: NodeId, g: NodeId, levels: &[u32]) -> NodeId {
        if levels.is_empty() {
            return self.and(f, g);
        }
        debug_assert!(levels.windows(2).all(|w| w[0] < w[1]), "sorted levels");
        for &l in levels {
            self.ensure_level(l);
        }
        kpt_obs::counter!("bdd.and_exists.calls").incr();
        let max_pos = levels.iter().map(|&l| self.pos(l)).max().expect("nonempty");
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, levels, max_pos, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: NodeId,
        g: NodeId,
        levels: &[u32],
        max_pos: u32,
        memo: &mut HashMap<(NodeId, NodeId), NodeId>,
    ) -> NodeId {
        if f == FALSE || g == FALSE {
            return FALSE;
        }
        if f == TRUE && g == TRUE {
            return TRUE;
        }
        if f == TRUE || f == g {
            return self.exists(g, levels);
        }
        if g == TRUE {
            return self.exists(f, levels);
        }
        let pf = self.top_pos(f);
        let pg = self.top_pos(g);
        if pf > max_pos && pg > max_pos {
            // No quantified level can appear in either subgraph.
            return self.and(f, g);
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let level = self.level_at[pf.min(pg) as usize];
        let (f0, f1) = self.cofactors(f, level);
        let (g0, g1) = self.cofactors(g, level);
        let r = if levels.binary_search(&level).is_ok() {
            let lo = self.and_exists_rec(f0, g0, levels, max_pos, memo);
            if lo == TRUE {
                kpt_obs::counter!("bdd.and_exists.early_exits").incr();
                TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, levels, max_pos, memo);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, levels, max_pos, memo);
            let hi = self.and_exists_rec(f1, g1, levels, max_pos, memo);
            self.make_node(level, lo, hi)
        };
        memo.insert(key, r);
        r
    }

    /// Rename every level through `map`, which must be strictly monotone
    /// *in position* on the levels reachable from `n` (so the result is
    /// still ordered — the substitution the interleaved current/next
    /// encoding needs never reorders levels, and group sifting keeps
    /// current/next pairs adjacent so the shift maps stay monotone).
    pub(crate) fn map_levels(&mut self, n: NodeId, map: impl Fn(u32) -> u32) -> NodeId {
        let mut memo = HashMap::new();
        self.map_levels_rec(n, &map, &mut memo)
    }

    fn map_levels_rec(
        &mut self,
        n: NodeId,
        map: &impl Fn(u32) -> u32,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if n == FALSE || n == TRUE {
            return n;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let node = self.node(n);
        let lo = self.map_levels_rec(node.lo, map, memo);
        let hi = self.map_levels_rec(node.hi, map, memo);
        let r = self.make_node(map(node.level), lo, hi);
        memo.insert(n, r);
        r
    }

    /// Evaluate `n` under a bit assignment.
    pub(crate) fn eval(&self, n: NodeId, bit: impl Fn(u32) -> bool) -> bool {
        let mut cur = n;
        loop {
            match cur {
                FALSE => return false,
                TRUE => return true,
                _ => {
                    let node = self.node(cur);
                    cur = if bit(node.level) { node.hi } else { node.lo };
                }
            }
        }
    }

    /// Exact number of satisfying assignments of `n` over exactly the
    /// levels in `levels` (sorted ascending by id; every level reachable
    /// from `n` must be a member). Counting weights skipped levels by
    /// their rank in the *current order*, so the result is order-independent.
    pub(crate) fn satcount(&self, n: NodeId, levels: &[u32]) -> u128 {
        let mut poss: Vec<u32> = levels.iter().map(|&l| self.pos(l)).collect();
        poss.sort_unstable();
        let rank = |level: u32| -> usize {
            if level == TERMINAL_LEVEL {
                poss.len()
            } else {
                poss.binary_search(&self.pos(level))
                    .expect("node level outside the satcount level set")
            }
        };
        let mut memo: HashMap<NodeId, u128> = HashMap::new();
        let c = self.satcount_rec(n, &rank, &mut memo);
        c << rank(self.level(n))
    }

    fn satcount_rec(
        &self,
        n: NodeId,
        rank: &impl Fn(u32) -> usize,
        memo: &mut HashMap<NodeId, u128>,
    ) -> u128 {
        if n == FALSE {
            return 0;
        }
        if n == TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&n) {
            return c;
        }
        let node = self.node(n);
        let here = rank(node.level);
        let lo = self.satcount_rec(node.lo, rank, memo);
        let hi = self.satcount_rec(node.hi, rank, memo);
        let c = (lo << (rank(self.level(node.lo)) - here - 1))
            + (hi << (rank(self.level(node.hi)) - here - 1));
        memo.insert(n, c);
        c
    }

    /// One satisfying path: `(level, bit)` decisions along a route to
    /// `TRUE`, or `None` for the constant-false function. Levels untouched
    /// by the path are don't-care.
    pub(crate) fn witness_path(&self, n: NodeId) -> Option<Vec<(u32, bool)>> {
        if n == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = n;
        while cur != TRUE {
            let node = self.node(cur);
            // Every non-false ROBDD node has at least one non-false child.
            if node.lo != FALSE {
                path.push((node.level, false));
                cur = node.lo;
            } else {
                path.push((node.level, true));
                cur = node.hi;
            }
        }
        Some(path)
    }

    /// Number of distinct nodes reachable from `n` (terminals excluded) —
    /// the "BDD size" the scaling experiments report.
    pub(crate) fn reachable_nodes(&self, n: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if m == FALSE || m == TRUE || !seen.insert(m) {
                continue;
            }
            let node = self.node(m);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    /// Conjunction of literals, built bottom-up in *position* order so the
    /// chain is valid under any current variable order.
    pub(crate) fn cube(&mut self, lits: &mut [(u32, bool)]) -> NodeId {
        for &(level, _) in lits.iter() {
            self.ensure_level(level);
        }
        lits.sort_unstable_by_key(|&(level, _)| std::cmp::Reverse(self.pos(level)));
        let mut acc = TRUE;
        for &(level, bit) in lits.iter() {
            acc = if bit {
                self.make_node(level, FALSE, acc)
            } else {
                self.make_node(level, acc, FALSE)
            };
        }
        acc
    }

    // ------------------------------------------------------------------
    // Safe points: garbage collection and dynamic reordering
    // ------------------------------------------------------------------

    /// A safe point: no operation recursion is in flight, and everything
    /// the caller still needs that is not root-referenced is listed in
    /// `temp_roots`. Runs a sifting pass or a GC sweep if their policies
    /// trigger; otherwise a no-op. Every checkpoint samples the resource
    /// gauges, so a traced run sees the engine's memory between rounds,
    /// not just at the end.
    pub(crate) fn checkpoint(&mut self, temp_roots: &[NodeId]) {
        match self.reorder {
            ReorderPolicy::SiftOnGrowth { .. } if self.live_nodes() >= self.next_reorder_at => {
                self.sift(temp_roots);
            }
            _ => self.maybe_gc(temp_roots),
        }
        self.sample_gauges("checkpoint");
    }

    /// Refresh the `bdd.*` resource gauges and, when traced, emit one
    /// `bdd.gauge` sample event tagged with the safe-point phase
    /// (`"checkpoint"`, `"gc.pre"`, `"gc.post"`, `"sift.post"`). The
    /// gauge stores are three relaxed atomics; the event costs only when
    /// a trace sink is live.
    fn sample_gauges(&self, phase: &str) {
        let live = self.live_nodes() as u64;
        let rows = self.unique.len() as u64;
        let memo = self.ite_cache.len() as u64;
        kpt_obs::gauge!("bdd.nodes.live").set(live);
        kpt_obs::gauge!("bdd.unique.rows").set(rows);
        kpt_obs::gauge!("bdd.ite.memo.entries").set(memo);
        if kpt_obs::trace_enabled() {
            kpt_obs::event(
                "bdd.gauge",
                &[
                    ("phase", phase.into()),
                    ("live_nodes", live.into()),
                    ("unique_rows", rows.into()),
                    ("memo_entries", memo.into()),
                ],
            );
        }
    }

    /// Sweep now if the GC policy's growth and dead-fraction thresholds
    /// are both met.
    fn maybe_gc(&mut self, temp_roots: &[NodeId]) {
        if let GcPolicy::OnGrowth {
            min_nodes,
            dead_percent,
        } = self.gc
        {
            let occupancy = self.internal_nodes();
            if occupancy >= min_nodes && self.dead * 100 >= occupancy * dead_percent as usize {
                self.gc(temp_roots);
            }
        }
    }

    /// Unconditional sweep with the given temporary roots.
    pub(crate) fn gc(&mut self, temp_roots: &[NodeId]) {
        let _span = kpt_obs::span("bdd.gc");
        self.sample_gauges("gc.pre");
        for &r in temp_roots {
            self.inc_rc(r);
        }
        self.sweep();
        for &r in temp_roots {
            self.dec_rc(r);
        }
        self.sample_gauges("gc.post");
    }

    /// Free every dead node and purge memo entries that mention one.
    /// Reference counts are exact (dead nodes hold no child references),
    /// so an unreachable subgraph is entirely `rc == 0` already and a
    /// single linear scan frees it — no cascade needed.
    fn sweep(&mut self) {
        let mut freed = 0u64;
        for n in 2..self.nodes.len() as u32 {
            let node = self.nodes[n as usize];
            if node.level < FREE_LEVEL && self.rc[n as usize] == 0 {
                self.unique.remove(&(node.level, node.lo, node.hi));
                self.nodes[n as usize].level = FREE_LEVEL;
                self.free.push(n);
                self.dead -= 1;
                freed += 1;
            }
        }
        if freed > 0 {
            // GC-aware memo invalidation: drop exactly the entries naming a
            // freed node; survivors are still canonical.
            let nodes = &self.nodes;
            let alive = |id: NodeId| id <= TRUE || nodes[id as usize].level < FREE_LEVEL;
            self.ite_cache
                .retain(|&(f, g, h), &mut r| alive(f) && alive(g) && alive(h) && alive(r));
            self.gc_epoch += 1;
        }
        self.gc_runs += 1;
        self.gc_freed += freed;
        kpt_obs::counter!("bdd.gc.runs").incr();
        kpt_obs::counter!("bdd.gc.freed").add(freed);
    }

    /// A sifting pass over all current/next level groups, largest first.
    /// Each group is moved through every order position and parked where
    /// the live node count was smallest; groups stay intact (current level
    /// immediately above its next-state partner) so the shift renamings
    /// stay monotone.
    pub(crate) fn sift(&mut self, temp_roots: &[NodeId]) {
        let _span = kpt_obs::span("bdd.reorder");
        for &r in temp_roots {
            self.inc_rc(r);
        }
        // Sweep first: sifting dead nodes is wasted motion, and the live
        // count is the metric being minimised.
        self.sweep();
        let ngroups = self.level_at.len() / 2;
        if ngroups >= 2 {
            self.rebuild_level_nodes();
            self.in_sift = true;
            let max_growth = match self.reorder {
                ReorderPolicy::SiftOnGrowth {
                    max_growth_percent, ..
                } => max_growth_percent,
                ReorderPolicy::Disabled => 20,
            };
            // Largest groups first; ties by group id for determinism.
            let mut sizes = vec![0usize; ngroups];
            for n in 2..self.nodes.len() {
                let level = self.nodes[n].level;
                if level < FREE_LEVEL && self.rc[n] > 0 && (level as usize) / 2 < ngroups {
                    sizes[level as usize / 2] += 1;
                }
            }
            let mut order: Vec<usize> = (0..ngroups).collect();
            order.sort_by_key(|&g| (std::cmp::Reverse(sizes[g]), g));
            for g in order {
                self.sift_group(g as u32, ngroups as u32, max_growth);
            }
            self.in_sift = false;
            for list in &mut self.level_nodes {
                list.clear();
                list.shrink_to_fit();
            }
            // Sifting rewrote nodes in place; sweep the leftovers. The ite
            // memo goes entirely: slots freed mid-pass may already have
            // been recycled for different functions, which the sweep's
            // alive-check purge cannot see.
            self.sweep();
            self.ite_cache.clear();
            self.ite_evictions += 1;
            self.gc_epoch += 1;
        }
        self.reorder_runs += 1;
        kpt_obs::counter!("bdd.reorder.runs").incr();
        if let ReorderPolicy::SiftOnGrowth { trigger_nodes, .. } = self.reorder {
            self.next_reorder_at = trigger_nodes.max(self.live_nodes().saturating_mul(2));
        }
        for &r in temp_roots {
            self.dec_rc(r);
        }
        self.sample_gauges("sift.post");
    }

    fn rebuild_level_nodes(&mut self) {
        for list in &mut self.level_nodes {
            list.clear();
        }
        for n in 2..self.nodes.len() {
            let level = self.nodes[n].level;
            if level < FREE_LEVEL {
                self.level_nodes[level as usize].push(n as u32);
            }
        }
    }

    /// Sift one group to its best position: walk it down to the bottom,
    /// back up to the top, then park it where the live count was minimal.
    fn sift_group(&mut self, group: u32, ngroups: u32, max_growth_percent: u32) {
        let cur_level = group * 2;
        debug_assert_eq!(self.pos(cur_level) % 2, 0, "group alignment");
        debug_assert_eq!(
            self.pos(cur_level) + 1,
            self.pos(cur_level + 1),
            "current/next pairing"
        );
        let start = self.pos(cur_level) / 2;
        let mut k = start;
        let mut best_size = self.live_nodes();
        let mut best_k = start;
        let cap = |best: usize| best + best * max_growth_percent as usize / 100;
        while k + 1 < ngroups {
            self.swap_groups(k);
            k += 1;
            let s = self.live_nodes();
            if s < best_size {
                best_size = s;
                best_k = k;
            } else if s > cap(best_size) {
                break;
            }
        }
        while k > 0 {
            self.swap_groups(k - 1);
            k -= 1;
            let s = self.live_nodes();
            if s < best_size {
                best_size = s;
                best_k = k;
            } else if s > cap(best_size) && k < start {
                // Past the original position and still growing: stop.
                break;
            }
        }
        while k < best_k {
            self.swap_groups(k);
            k += 1;
        }
        while k > best_k {
            self.swap_groups(k - 1);
            k -= 1;
        }
    }

    /// Swap the adjacent groups at group positions `k` and `k + 1`
    /// (four adjacent level swaps, preserving in-group order).
    fn swap_groups(&mut self, k: u32) {
        let p = 2 * k;
        self.swap_positions(p + 1);
        self.swap_positions(p);
        self.swap_positions(p + 2);
        self.swap_positions(p + 1);
    }

    /// The reordering primitive: exchange the levels at positions `p` and
    /// `p + 1`, rewriting every node of the upper level in place. Node ids
    /// keep their functions, so nothing outside the manager notices.
    fn swap_positions(&mut self, p: u32) {
        let x = self.level_at[p as usize];
        let y = self.level_at[p as usize + 1];
        self.level_at[p as usize] = y;
        self.level_at[p as usize + 1] = x;
        self.pos_of[x as usize] = p + 1;
        self.pos_of[y as usize] = p;
        self.reorder_swaps += 1;
        kpt_obs::counter!("bdd.reorder.swaps").incr();
        let list = std::mem::take(&mut self.level_nodes[x as usize]);
        let mut keep = Vec::new();
        for n in list {
            if self.nodes[n as usize].level != x {
                continue; // freed or already rewritten
            }
            let Node { lo, hi, .. } = self.nodes[n as usize];
            if self.rc[n as usize] == 0 {
                // Dead: it holds no child references, so rewriting it
                // would only resurrect garbage — free the slot instead
                // (the pass-final sweep purges the memo).
                self.unique.remove(&(x, lo, hi));
                self.nodes[n as usize].level = FREE_LEVEL;
                self.free.push(n);
                self.dead -= 1;
                continue;
            }
            let lo_y = lo > TRUE && self.nodes[lo as usize].level == y;
            let hi_y = hi > TRUE && self.nodes[hi as usize].level == y;
            if !lo_y && !hi_y {
                // No `y` below: the node is unaffected by the exchange.
                keep.push(n);
                continue;
            }
            // f = x ? (y ? f11 : f10) : (y ? f01 : f00)  rewrites to
            // f = y ? (x ? f11 : f01) : (x ? f10 : f00).
            let (f00, f01) = if lo_y {
                let ln = self.nodes[lo as usize];
                (ln.lo, ln.hi)
            } else {
                (lo, lo)
            };
            let (f10, f11) = if hi_y {
                let hn = self.nodes[hi as usize];
                (hn.lo, hn.hi)
            } else {
                (hi, hi)
            };
            self.unique.remove(&(x, lo, hi));
            let a = self.make_node(x, f00, f10);
            let b = self.make_node(x, f01, f11);
            // At least one cofactor pair differs (the node depended on y),
            // so the rewritten node never collapses.
            debug_assert_ne!(a, b, "swap produced a redundant node");
            self.inc_rc(a);
            self.inc_rc(b);
            self.dec_rc(lo);
            self.dec_rc(hi);
            self.nodes[n as usize] = Node {
                level: y,
                lo: a,
                hi: b,
            };
            let prev = self.unique.insert((y, a, b), n);
            debug_assert!(prev.is_none(), "swap collided in the unique table");
            self.level_nodes[y as usize].push(n);
        }
        self.level_nodes[x as usize].extend(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        assert_ne!(x, y);
        // Hash-consing: the same literal is the same node.
        assert_eq!(x, m.literal(0));
        assert_eq!(m.num_nodes(), 4);
    }

    #[test]
    fn ite_boolean_algebra() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        let and = m.and(x, y);
        let or = m.or(x, y);
        let nx = m.not(x);
        // De Morgan: ¬(x ∧ y) = ¬x ∨ ¬y.
        let ny = m.not(y);
        let lhs = m.not(and);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
        // Absorption: x ∨ (x ∧ y) = x.
        assert_eq!(m.or(x, and), x);
        // Implication / iff agree with truth tables.
        let imp = m.implies(x, y);
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            let bit = |l: u32| if l == 0 { vx } else { vy };
            assert_eq!(m.eval(and, bit), vx && vy);
            assert_eq!(m.eval(or, bit), vx || vy);
            assert_eq!(m.eval(imp, bit), !vx || vy);
        }
        let iff = m.iff(x, y);
        let xor = m.not(iff);
        assert!(m.eval(xor, |l| l == 0));
        assert!(!m.eval(xor, |_| true));
    }

    #[test]
    fn quantification() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        let and = m.and(x, y);
        // ∃y. x ∧ y = x; ∀y. x ∧ y = false; ∃x∃y. x ∧ y = true.
        assert_eq!(m.exists(and, &[2]), x);
        assert_eq!(m.forall(and, &[2]), FALSE);
        assert_eq!(m.exists(and, &[0, 2]), TRUE);
        // ∀y. x ∨ y = x.
        let or = m.or(x, y);
        assert_eq!(m.forall(or, &[2]), x);
    }

    #[test]
    fn rename_shifts_levels() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        let and = m.and(x, y);
        let shifted = m.map_levels(and, |l| l + 1);
        let x1 = m.literal(1);
        let y1 = m.literal(3);
        assert_eq!(shifted, m.and(x1, y1));
    }

    #[test]
    fn satcount_over_level_sets() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        let or = m.or(x, y);
        assert_eq!(m.satcount(or, &[0, 2]), 3);
        assert_eq!(m.satcount(or, &[0, 2, 4]), 6); // extra free level doubles
        assert_eq!(m.satcount(TRUE, &[0, 2]), 4);
        assert_eq!(m.satcount(FALSE, &[0, 2]), 0);
        assert_eq!(m.satcount(TRUE, &[]), 1);
    }

    #[test]
    fn witness_paths() {
        let mut m = Manager::new();
        assert!(m.witness_path(FALSE).is_none());
        assert_eq!(m.witness_path(TRUE), Some(vec![]));
        let x = m.literal(0);
        let y = m.literal(2);
        let and = m.and(x, y);
        let path = m.witness_path(and).unwrap();
        assert_eq!(path, vec![(0, true), (2, true)]);
    }

    #[test]
    fn cache_counters_move() {
        let mut m = Manager::new();
        let x = m.literal(0);
        let y = m.literal(2);
        m.and(x, y);
        let (h0, miss0, _, ins0, _) = m.ite_cache_stats();
        m.and(x, y); // same triple again: a hit
        let (h1, miss1, _, ins1, _) = m.ite_cache_stats();
        assert_eq!(h1, h0 + 1);
        assert_eq!(miss1, miss0);
        assert_eq!(ins1, ins0); // a hit inserts nothing
        assert!(ins0 > 0);
    }

    #[test]
    fn reachable_node_counts() {
        let mut m = Manager::new();
        let x = m.literal(0);
        assert_eq!(m.reachable_nodes(x), 1);
        assert_eq!(m.reachable_nodes(TRUE), 0);
        let y = m.literal(2);
        let or = m.or(x, y);
        assert_eq!(m.reachable_nodes(or), 2);
    }

    /// Build the pair-matching function ⋁ᵢ xᵢ ∧ yᵢ over `n` pairs, with
    /// the x block at levels `0..n` and the y block at `n..2n` — the
    /// classic order-sensitive family (linear interleaved, exponential
    /// separated).
    fn separated_pairs(m: &mut Manager, n: u32) -> NodeId {
        let mut acc = FALSE;
        for i in 0..n {
            let x = m.literal(i);
            let y = m.literal(n + i);
            let p = m.and(x, y);
            acc = m.or(acc, p);
        }
        acc
    }

    #[test]
    fn gc_reclaims_unrooted_nodes_and_keeps_roots_stable() {
        let mut m = Manager::with_config(BddConfig {
            gc: GcPolicy::OnGrowth {
                min_nodes: 1,
                dead_percent: 1,
            },
            reorder: ReorderPolicy::Disabled,
        });
        let keep = separated_pairs(&mut m, 4);
        m.add_root(keep);
        // Garbage: a large conjunction chain nobody roots.
        let mut junk = TRUE;
        for i in 0..8 {
            let l = m.literal(16 + i);
            junk = m.and(junk, l);
        }
        let before = m.num_nodes();
        m.checkpoint(&[]);
        let stats = m.gc_stats();
        assert!(stats.runs >= 1);
        assert!(stats.freed >= 8, "junk chain should be swept");
        assert!(stats.epoch >= 1);
        assert!(m.num_nodes() < before);
        // The rooted function survives, same id, same semantics.
        assert!(m.eval(keep, |l| l == 0 || l == 4));
        assert!(!m.eval(keep, |l| l == 0));
        // Rebuilding it lands on the very same (still canonical) id.
        assert_eq!(separated_pairs(&mut m, 4), keep);
        // Temp roots protect otherwise-dead results across a sweep.
        let tmp = separated_pairs(&mut m, 3);
        m.gc(&[tmp]);
        assert!(m.eval(tmp, |l| l == 0 || l == 3));
        m.release_root(keep);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut m = Manager::new();
        let mut junk = TRUE;
        for i in 0..6 {
            let l = m.literal(2 * i);
            junk = m.and(junk, l);
        }
        let _ = junk;
        let before = m.num_nodes();
        m.gc(&[]);
        // New allocations refill the freed slots before growing the table.
        let mut other = TRUE;
        for i in 0..5 {
            let l = m.literal(2 * i + 1);
            other = m.and(other, l);
        }
        let _ = other;
        assert!(m.num_nodes() <= before);
    }

    #[test]
    fn and_exists_matches_and_then_exists() {
        let mut m = Manager::new();
        let a = m.literal(0);
        let b = m.literal(1);
        let c = m.literal(2);
        let d = m.literal(3);
        let ab = m.or(a, b);
        let cd = m.iff(c, d);
        let f = m.and(ab, cd);
        let nc = m.not(c);
        let g = m.or(b, nc);
        for levels in [vec![0u32], vec![1, 2], vec![0, 1, 2, 3], vec![3]] {
            let conj = m.and(f, g);
            let expect = m.exists(conj, &levels);
            assert_eq!(m.and_exists(f, g, &levels), expect);
        }
        // Degenerate operands.
        assert_eq!(m.and_exists(TRUE, f, &[0, 1]), m.exists(f, &[0, 1]));
        assert_eq!(m.and_exists(f, FALSE, &[0, 1]), FALSE);
        assert_eq!(m.and_exists(f, f, &[2]), m.exists(f, &[2]));
    }

    /// Every assignment of the first `nlevels` levels, as a bit closure.
    fn assignments(nlevels: u32) -> impl Iterator<Item = impl Fn(u32) -> bool> {
        (0u64..(1 << nlevels)).map(move |mask| move |l: u32| mask >> l & 1 == 1)
    }

    #[test]
    fn swaps_preserve_semantics() {
        let mut m = Manager::new();
        m.register_levels(6);
        let f = separated_pairs(&mut m, 3);
        m.add_root(f);
        let g = {
            let a = m.literal(1);
            let b = m.literal(4);
            let i = m.iff(a, b);
            let c = m.literal(2);
            m.or(i, c)
        };
        m.add_root(g);
        m.rebuild_level_nodes();
        m.in_sift = true;
        for p in [0, 2, 4, 1, 3, 0, 2] {
            m.swap_positions(p);
            for bits in assignments(6) {
                let fm = (0..6).filter(|&l| bits(l)).fold(FALSE, |_, _| TRUE);
                let _ = fm;
            }
        }
        m.in_sift = false;
        // Functions are unchanged under any interleaving of swaps.
        for bits in assignments(6) {
            let expect_f = (0..3).any(|i| bits(i) && bits(3 + i));
            let expect_g = (bits(1) == bits(4)) || bits(2);
            assert_eq!(m.eval(f, &bits), expect_f);
            assert_eq!(m.eval(g, &bits), expect_g);
        }
        m.release_root(f);
        m.release_root(g);
    }

    #[test]
    fn sifting_shrinks_the_separated_pairs_family() {
        let n = 8u32;
        let mut m = Manager::new();
        // Levels 0..2n as n "groups" of two: group i holds (2i, 2i+1).
        // Build the bad-order pair function over group *leaders* so the
        // group invariant (pairs move together) is exercised.
        m.register_levels(4 * n as usize);
        let mut acc = FALSE;
        for i in 0..n {
            let x = m.literal(2 * i); // leader of group i
            let y = m.literal(2 * (n + i)); // leader of group n+i
            let p = m.and(x, y);
            acc = m.or(acc, p);
        }
        m.add_root(acc);
        let before = m.reachable_nodes(acc);
        assert!(
            before >= (1 << (n - 1)),
            "separated pairs must start exponential, got {before}"
        );
        m.sift(&[]);
        let after = m.reachable_nodes(acc);
        assert!(
            after <= 4 * n as usize,
            "sifting should reach a near-linear order, got {after}"
        );
        assert!(m.reorder_stats().runs == 1);
        assert!(m.reorder_stats().swaps > 0);
        // Semantics intact.
        for i in 0..n {
            assert!(m.eval(acc, |l| l == 2 * i || l == 2 * (n + i)));
        }
        assert!(!m.eval(acc, |_| false));
        // Group pairing survives: every current level sits immediately
        // above its next-state partner.
        for g in 0..2 * n {
            assert_eq!(m.pos(2 * g) + 1, m.pos(2 * g + 1));
            assert_eq!(m.pos(2 * g) % 2, 0);
        }
        m.release_root(acc);
    }

    #[test]
    fn checkpoint_triggers_sift_on_growth() {
        let mut m = Manager::with_config(BddConfig {
            gc: GcPolicy::default(),
            reorder: ReorderPolicy::SiftOnGrowth {
                trigger_nodes: 16,
                max_growth_percent: 20,
            },
        });
        m.register_levels(24);
        let mut acc = FALSE;
        for i in 0..6u32 {
            let x = m.literal(2 * i);
            let y = m.literal(2 * (6 + i));
            let p = m.and(x, y);
            acc = m.or(acc, p);
        }
        m.add_root(acc);
        assert_eq!(m.reorder_stats().runs, 0);
        m.checkpoint(&[]);
        assert_eq!(m.reorder_stats().runs, 1);
        assert!(m.reachable_nodes(acc) <= 24);
        // Re-armed: an immediate second checkpoint does not sift again.
        m.checkpoint(&[]);
        assert_eq!(m.reorder_stats().runs, 1);
        m.release_root(acc);
    }

    #[test]
    fn peak_nodes_tracks_high_water() {
        let mut m = Manager::new();
        let f = separated_pairs(&mut m, 5);
        let peak = m.peak_nodes();
        assert!(peak >= m.reachable_nodes(f));
        m.gc(&[]);
        // The peak does not drop when the table shrinks.
        assert_eq!(m.peak_nodes(), peak);
    }

    #[test]
    fn cube_builds_position_ordered_chains() {
        let mut m = Manager::new();
        m.register_levels(6);
        let direct = {
            let a = m.literal(0);
            let b = m.literal(3);
            let nb = m.not(b);
            let c = m.literal(5);
            let ab = m.and(a, nb);
            m.and(ab, c)
        };
        let mut lits = vec![(5u32, true), (0u32, true), (3u32, false)];
        assert_eq!(m.cube(&mut lits), direct);
    }
}
