//! `kpt-bdd` — an in-tree ROBDD engine and symbolic predicate backend for
//! the knowledge-pt workspace.
//!
//! Everything in Sanders' predicate-transformer account of knowledge is a
//! predicate: the strongest invariant `SI` (eqs. 1/3/5), the transformers
//! `sp`/`wp`, view-based knowledge `K_i` (eq. 13), and the knowledge-based
//! program fixpoint (eq. 25). The explicit backend represents predicates
//! as bitsets over an enumerated state space; this crate represents them
//! as reduced ordered binary decision diagrams so the same pipeline runs
//! on spaces no bitset can hold, and so KBP instances that
//! `kpt_core::Kbp::solve_exhaustive` rejects with `SearchTooLarge` remain
//! solvable via [`SymbolicKbp::solve_iterative`].
//!
//! # Layers
//!
//! * a hash-consed ROBDD manager (memoized `ite`, quantification, level
//!   renaming, model counting) — private, per [`BddSpace`];
//! * [`BddSpace`] — the bit-blasted mixed-radix encoding of a
//!   [`kpt_state::StateSpace`] (see the module docs of `space` for the
//!   documented variable order: declaration order, LSB-first, current and
//!   next copies interleaved on adjacent levels);
//! * [`SymbolicPredicate`] — the backend behind the [`PredicateOps`] trait
//!   it shares with the explicit `Predicate`;
//! * [`SymbolicTransition`] — transition relations with `sp`/`wp` as
//!   relational products, plus frontier-style SI fixpoints
//!   ([`symbolic_strongest_invariant`]);
//! * [`SymbolicKnowledge`] — `K_i` by existential/universal quantification
//!   of the levels outside a process view;
//! * [`SymbolicKbp`] — the eq. (25) iteration over BDD roots.
//!
//! Node counts, `ite`-cache behaviour, fixpoint rounds, and solver
//! outcomes are observable through `kpt-obs` under `bdd.*` metric names
//! and event kinds (see the README metric glossary).

#![warn(missing_docs)]

mod error;
mod fixpoint;
mod formula;
mod kbp;
mod knowledge;
mod manager;
mod predicate;
mod space;
mod traits;
mod transition;

pub use error::BddError;
pub use fixpoint::{
    symbolic_sst, symbolic_sst_bounded, symbolic_sst_with_stats, symbolic_strongest_invariant,
    SymbolicFixpointStats,
};
pub use formula::SymbolicEvalContext;
pub use kbp::{SymbolicKbp, SymbolicOutcome};
pub use knowledge::SymbolicKnowledge;
pub use manager::{BddConfig, GcPolicy, GcStats, ReorderPolicy, ReorderStats};
pub use predicate::SymbolicPredicate;
pub use space::BddSpace;
pub use traits::PredicateOps;
pub use transition::{SymbolicTransition, SymbolicTransitionBuilder};
