//! Experiment E8 — §6.4: a-priori knowledge makes the standard protocol
//! *stop being an instantiation* of the knowledge-based protocol, even
//! though it still satisfies the specification; and the KBP-faithful
//! variant saves messages.
//!
//! Run with: `cargo run --release --example apriori_knowledge`

use knowledge_pt::seqtrans::knowledge_preds::{
    knowledge_operator, real_kr_x, validate_completeness, validate_soundness,
};
use knowledge_pt::seqtrans::sim::{run_standard, SimConfig};
use knowledge_pt::seqtrans::{figure3_kbp, ModelOptions, StandardModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------- bounded model: the instantiation claim ----------
    let apriori = StandardModel::build(
        2,
        2,
        ModelOptions {
            apriori_first: Some(1), // both parties know x_0 = 'b' a priori
            slot_loss: false,
        },
    )?;
    let compiled = apriori.compile()?;
    println!("bounded model with x_0 = 'b' known a priori:");
    println!(
        "  spec (34) safety : {}",
        compiled.invariant(&apriori.w_prefix_of_x())
    );
    println!(
        "  spec (35) k=0    : {}",
        compiled.leads_to_holds(&apriori.j_eq(0), &apriori.j_gt(0))
    );
    let sound = validate_soundness(&apriori, &compiled);
    println!(
        "  soundness of (50)/(51) (candidate ⇒ K etc.): {}",
        sound.all_hold()
    );
    let complete = validate_completeness(&apriori, &compiled);
    println!(
        "  completeness (candidate = K on SI)         : {}   <- breaks!",
        complete.all_hold()
    );
    println!("    failing equalities: {:?}", complete.failures());

    // The knowledge is already there at the initial state…
    let op = knowledge_operator(&apriori, &compiled);
    let init = compiled.init().witness().unwrap();
    println!(
        "  at init: real K_R(x_0 = b) = {}, candidate (50) = {}",
        real_kr_x(&apriori, &op, 0, 1).holds(init),
        apriori.cand_kr_x(0, 1).holds(init)
    );

    // …so the standard protocol no longer solves the KBP's eq. (25):
    let kbp = figure3_kbp(&apriori)?;
    println!(
        "  standard SI solves the Figure-3 KBP: {}   <- the §6.4 claim",
        kbp.is_solution(compiled.si())?
    );
    assert!(!kbp.is_solution(compiled.si())?);

    // Contrast: without a-priori info the instantiation holds.
    let plain = StandardModel::build(2, 2, ModelOptions::default())?;
    let plain_c = plain.compile()?;
    println!(
        "  (without a-priori info it does: {})",
        figure3_kbp(&plain)?.is_solution(plain_c.si())?
    );

    // ---------- simulation: the message saving ----------
    println!("\nsimulated message counts (sequence of 40 elements):");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "variant", "data msgs", "ack msgs", "total"
    );
    for rate in [0.0, 0.2, 0.4] {
        for (label, prefix) in [("standard", 0usize), ("KBP-faithful (x_0 known)", 1)] {
            let mut totals = (0u64, 0u64);
            let runs = 10;
            for seed in 0..runs {
                let mut cfg = if rate == 0.0 {
                    SimConfig::reliable((0..40).map(|i| (i % 2) as u8).collect())
                } else {
                    SimConfig::faulty((0..40).map(|i| (i % 2) as u8).collect(), rate, seed)
                };
                cfg.apriori_prefix = prefix;
                let r = run_standard(&cfg);
                assert!(r.completed);
                totals.0 += r.data_sent;
                totals.1 += r.acks_sent;
            }
            println!(
                "{:<28} {:>10.1} {:>10.1} {:>10.1}   (fault rate {rate})",
                label,
                totals.0 as f64 / runs as f64,
                totals.1 as f64 / runs as f64,
                (totals.0 + totals.1) as f64 / runs as f64
            );
        }
    }
    println!(
        "\n=> The KBP-faithful variant never transmits the known element — the paper's\n   \
         \"saving one message\" — while the plain standard protocol still sends and\n   \
         acknowledges it. Correctness is unaffected either way."
    );
    Ok(())
}
