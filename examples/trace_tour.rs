//! A guided tour of the observability layer (`kpt-obs`): run the paper's
//! Figure 1 and Figure 2 protocols and a bounded §6 sequence-transmission
//! verification with tracing enabled, then show what the trace, the
//! metrics registry, and the explainable verdicts say about the run.
//!
//! Run with: `cargo run --release --example trace_tour`
//!
//! The trace is written to `trace_tour.jsonl` in the working directory
//! (pretty-print it afterwards with
//! `cargo run --release -p kpt-bench --bin obs_report trace_tour.jsonl`).
//! Setting `KPT_TRACE=<path>` achieves the same without code — this
//! example installs the sink programmatically so it works out of the box.

use knowledge_pt::prelude::*;
use knowledge_pt::seqtrans::proof_replay::replay_safety;
use knowledge_pt::seqtrans::{ModelOptions, StandardModel};
use kpt_obs::MetricValue;
use kpt_unity::explain_property;

const TRACE_PATH: &str = "trace_tour.jsonl";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _ = std::fs::remove_file(TRACE_PATH);
    kpt_obs::trace_to_file(TRACE_PATH)?;
    println!("tracing to {TRACE_PATH} (equivalent to KPT_TRACE={TRACE_PATH})\n");

    // -- Figure 1: the no-solution KBP, explained -------------------------
    println!("== Figure 1: exhaustive KBP search ==");
    let fig1 = figure1()?;
    let sols = fig1.solve_exhaustive(16)?;
    let verdict = fig1.explain_solutions("figure1", &sols);
    print!("{verdict}");

    // -- Figure 2: non-monotone solution set ------------------------------
    println!("\n== Figure 2: init = ~y vs init = ~y /\\ x ==");
    for init in ["~y", "~y /\\ x"] {
        let fig2 = figure2(init)?;
        let sols = fig2.solve_exhaustive(16)?;
        let verdict = fig2.explain_solutions(&format!("figure2[{init}]"), &sols);
        print!("{verdict}");
    }

    // -- A deliberately failing obligation: witnesses in action -----------
    println!("\n== a failing invariant, with witnesses ==");
    let space = StateSpace::builder().bool_var("x")?.build()?;
    let toggle = Program::builder("toggle", &space)
        .init_str("~x")?
        .statement(
            Statement::new("set")
                .guard_str("~x")?
                .assign_str("x", "1")?,
        )
        .build()?
        .compile()?;
    let not_x = Predicate::from_fn(&space, |s| s == 0);
    print!(
        "{}",
        explain_property(&toggle, "~x", &Property::Invariant(not_x))
    );

    // -- Batch knowledge on the pool (forced to 2 workers so the trace
    // shows a pool.map span even on a single-core machine) ----------------
    println!("\n== batch knowledge K_i p, fanned over the pool ==");
    let kspace = StateSpace::builder()
        .nat_var("a", 4)?
        .nat_var("b", 4)?
        .nat_var("c", 4)?
        .build()?;
    let views: Vec<(String, VarSet)> = (0..3)
        .map(|i| {
            (
                format!("P{i}"),
                VarSet::from_vars(kspace.vars().skip(i).take(1)),
            )
        })
        .collect();
    let ctx = knowledge_pt::core::KnowledgeContext::new(
        &kspace,
        views,
        Predicate::from_fn(&kspace, |s| s % 5 != 0),
    )
    .unwrap();
    let p = Predicate::from_fn(&kspace, |s| s % 3 == 0);
    let view_sets: Vec<VarSet> = ctx.views().iter().map(|(_, v)| *v).collect();
    let batch = ctx.knows_batch_with(2, &view_sets, &p);
    for ((name, _), k) in ctx.views().iter().zip(&batch) {
        println!(
            "  K{{{name}}} p holds in {} of {} states",
            k.count(),
            kspace.num_states()
        );
    }
    drop(ctx); // emits the cache.knowledge summary event

    // -- §6: sequence transmission, safety derivation replayed ------------
    println!("\n== §6 sequence transmission (|A|=2, |x|=2): safety replay ==");
    let model = StandardModel::build(2, 2, ModelOptions::default())?;
    let compiled = model.compile()?;
    let replay = replay_safety(&model, &compiled)?;
    println!(
        "replayed {} proof steps; assumptions discharged: {}",
        replay.steps.len(),
        replay.fully_discharged()
    );

    // -- What the observability layer saw ---------------------------------
    kpt_obs::disable_trace();
    println!("\n== metrics registry (non-zero counters) ==");
    for m in kpt_obs::metrics_snapshot() {
        if let MetricValue::Counter(n) = m.value {
            if n > 0 {
                println!("  {:<32} {n}", m.name);
            }
        }
    }
    let lines = std::fs::read_to_string(TRACE_PATH)?.lines().count();
    println!("\ntrace written: {lines} events in {TRACE_PATH}");
    println!("summarize with: cargo run --release -p kpt-bench --bin obs_report {TRACE_PATH}");
    Ok(())
}
