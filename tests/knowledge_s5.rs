//! Property tests for the knowledge operator on *random programs*:
//! the S5 axioms (14)–(18), the junctivity/invariant theory (19)–(24),
//! group knowledge, and the run-semantics equivalence (experiments E2,
//! E3, E10).

mod common;

use common::{pred_from_mask, program_spec};
use knowledge_pt::prelude::*;
use kpt_testkit::check;

#[test]
fn s5_axioms_on_random_programs() {
    check("s5_axioms_on_random_programs", 48, |rng| {
        let spec = program_spec(rng);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let program = spec.compile();
        let space = program.space().clone();
        let k = KnowledgeOperator::for_program(&program);
        let p = pred_from_mask(&space, a);
        let q = pred_from_mask(&space, b);
        for proc in program.processes().iter().map(|p| p.name().to_owned()) {
            let kp = k.knows(&proc, &p).unwrap();
            let kq = k.knows(&proc, &q).unwrap();
            // (14) truthfulness.
            assert!(kp.entails(&p));
            // (15) distribution.
            let kimp = k.knows(&proc, &p.implies(&q)).unwrap();
            assert!(kp.and(&kimp).entails(&kq));
            // (16) positive introspection.
            assert_eq!(&k.knows(&proc, &kp).unwrap(), &kp);
            // (17) negative introspection.
            let nkp = kp.negate();
            assert_eq!(k.knows(&proc, &nkp).unwrap(), nkp);
            // (18) necessitation.
            if p.everywhere() {
                assert!(kp.everywhere());
            }
            // (19) monotonicity.
            let kpq = k.knows(&proc, &p.or(&q)).unwrap();
            assert!(kp.entails(&kpq));
            // (21) conjunctivity (binary).
            assert_eq!(k.knows(&proc, &p.and(&q)).unwrap(), kp.and(&kq));
        }
    });
}

#[test]
fn eq23_eq24_invariant_characterisation() {
    check("eq23_eq24_invariant_characterisation", 48, |rng| {
        let spec = program_spec(rng);
        let a = rng.next_u64();
        let program = spec.compile();
        let space = program.space().clone();
        let k = KnowledgeOperator::for_program(&program);
        let p = pred_from_mask(&space, a);
        for proc in program.processes().iter().map(|p| p.name().to_owned()) {
            let kp = k.knows(&proc, &p).unwrap();
            // (23) invariant p ≡ invariant K_i p.
            assert_eq!(program.invariant(&p), program.invariant(&kp));
            // (24) for view-local q: invariant (q ⇒ p) ≡ invariant (q ⇒ K_i p).
            let view = k.view(&proc).unwrap();
            let q = wcyl(&view, &pred_from_mask(&space, a.rotate_left(13)));
            assert!(q.depends_only_on(view));
            assert_eq!(
                program.invariant(&q.implies(&p)),
                program.invariant(&q.implies(&kp))
            );
        }
    });
}

#[test]
fn group_knowledge_hierarchy() {
    check("group_knowledge_hierarchy", 48, |rng| {
        let spec = program_spec(rng);
        let a = rng.next_u64();
        let program = spec.compile();
        let space = program.space().clone();
        let k = KnowledgeOperator::for_program(&program);
        let p = pred_from_mask(&space, a);
        let names: Vec<String> = program
            .processes()
            .iter()
            .map(|p| p.name().to_owned())
            .collect();
        let group: Vec<&str> = names.iter().map(String::as_str).collect();
        if group.is_empty() {
            return;
        }
        let c = k.common(&group, &p).unwrap();
        let e = k.everyone(&group, &p).unwrap();
        let d = k.distributed(&group, &p).unwrap();
        assert!(c.entails(&e));
        for proc in &group {
            let kp = k.knows(proc, &p).unwrap();
            assert!(e.entails(&kp));
            assert!(kp.entails(&d));
        }
        assert!(d.entails(&p));
        // C is a fixpoint of X ↦ E(p ∧ X).
        assert_eq!(&k.everyone(&group, &p.and(&c)).unwrap(), &c);
    });
}

#[test]
fn run_semantics_equivalence() {
    check("run_semantics_equivalence", 48, |rng| {
        // Experiment E10: reachability = SI and view-knowledge = K on SI.
        let spec = program_spec(rng);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let program = spec.compile();
        let space = program.space().clone();
        let samples = [pred_from_mask(&space, a), pred_from_mask(&space, b)];
        assert_eq!(semantics_agree(&program, &samples), Ok(()));
    });
}

#[test]
fn knowledge_is_view_measurable_on_si() {
    check("knowledge_is_view_measurable_on_si", 48, |rng| {
        // On reachable states, K_i p cannot distinguish view-equal states.
        let spec = program_spec(rng);
        let a = rng.next_u64();
        let program = spec.compile();
        let space = program.space().clone();
        let k = KnowledgeOperator::for_program(&program);
        let p = pred_from_mask(&space, a);
        let si = program.si();
        for proc in program.processes().iter().map(|p| p.name().to_owned()) {
            let view = k.view(&proc).unwrap();
            let kp = k.knows(&proc, &p).unwrap();
            for s1 in si.iter() {
                for s2 in si.iter() {
                    let same_view = view
                        .iter()
                        .all(|v| space.value(s1, v) == space.value(s2, v));
                    if same_view {
                        assert_eq!(kp.holds(s1), kp.holds(s2));
                    }
                }
            }
        }
    });
}

/// Deterministic: common knowledge can be strictly weaker than everyone-
/// knows (the classic hierarchy is strict somewhere).
#[test]
fn common_knowledge_strictness_witness() {
    // P0 sees a, P1 sees b; a and b are set together; after the update,
    // everyone knows "a ∨ b" but it is not common knowledge at the start.
    let space = StateSpace::builder()
        .bool_var("a")
        .unwrap()
        .bool_var("b")
        .unwrap()
        .build()
        .unwrap();
    let program = Program::builder("ck", &space)
        .init_str("~a /\\ ~b")
        .unwrap()
        .process("P0", ["a"])
        .unwrap()
        .process("P1", ["b"])
        .unwrap()
        .statement(
            Statement::new("both")
                .guard_str("~a")
                .unwrap()
                .assign_str("a", "1")
                .unwrap()
                .assign_str("b", "1")
                .unwrap(),
        )
        .statement(
            Statement::new("b_alone")
                .guard_str("~b")
                .unwrap()
                .assign_str("b", "1")
                .unwrap(),
        )
        .build()
        .unwrap()
        .compile()
        .unwrap();
    let k = KnowledgeOperator::for_program(&program);
    let a = Predicate::var_is_true(&space, space.var("a").unwrap());
    let b = Predicate::var_is_true(&space, space.var("b").unwrap());
    let fact = a.implies(&b); // invariant: a is only ever set along with b
    assert!(program.invariant(&fact));
    // Invariant facts are common knowledge everywhere on SI (eq. 23 lifted).
    let ck = k.common(&["P0", "P1"], &fact).unwrap();
    assert!(program.si().entails(&ck));
    // But knowledge of a non-invariant fact is NOT shared: P1 knows b where
    // it holds; P0 only knows a.
    let k1b = k.knows("P1", &b).unwrap();
    let e = k.everyone(&["P0", "P1"], &b).unwrap();
    assert!(program.si().and(&b).entails(&k1b));
    assert!(!program.si().and(&b).entails(&e));
}
